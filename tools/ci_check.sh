#!/usr/bin/env sh
# CI gate: UBSan-instrumented tier-1 suite, then the project linter.
#
#   tools/ci_check.sh [build-dir]
#
# Configures with BF_SANITIZE=undefined (fatal on any UB), builds
# everything, runs the tier-1 ctest label under UBSan, then runs the
# bf::sa analyzer (bf_lint) over the whole tree with the committed
# baseline. Exits non-zero on the first failure.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build-ubsan"}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== configure (BF_SANITIZE=undefined) =="
cmake -B "$BUILD" -S "$ROOT" -DBF_SANITIZE=undefined

echo "== build =="
cmake --build "$BUILD" -j "$JOBS"

echo "== tier-1 tests under UBSan =="
ctest --test-dir "$BUILD" -L tier1 --output-on-failure -j "$JOBS"

echo "== static analysis (bf::sa) =="
"$BUILD/tools/bf_lint" --repo-root "$ROOT" \
  --baseline "$ROOT/bf_lint.baseline" \
  --exclude "$ROOT/tests/sa_fixtures" \
  "$ROOT/src" "$ROOT/tools" "$ROOT/examples" "$ROOT/tests" "$ROOT/bench"

echo "ci_check: all gates passed"
