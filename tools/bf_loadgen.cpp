// bf_loadgen — a load-generation harness for bf_serve's socket modes.
//
// Opens N concurrent connections to a running server (Unix or TCP),
// replays a request trace (or synthesizes one with log-uniform sizes),
// paces it to a target QPS, and measures what actually happened:
//
//   bf_loadgen --socket /tmp/bf.sock --model reduce1
//              --requests 400 --conns 8 --qps 200
//              --slow 1 --disconnect 1 --out BENCH_serve.json
//
// The report (BENCH_serve.json) carries achieved QPS, p50/p95/p99/max
// latency, the shed fraction and the chaos-client outcomes — the repo's
// serving-throughput trajectory artifact. Beyond the well-behaved
// clients, --slow adds clients that dribble a request byte-by-byte
// (they must not stall anyone else) and --disconnect adds clients that
// hang up mid-request (they must not kill the server); both run
// concurrently with the measured traffic and are excluded from the
// latency percentiles.
//
// Exit status: 0 when at least one request got an ok reply.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "serve/net.hpp"

namespace {

using namespace bf;
using Clock = std::chrono::steady_clock;

void usage() {
  std::printf(
      "usage: bf_loadgen (--socket PATH | --tcp HOST:PORT) [options]\n"
      "  --model NAME      model for synthesized requests (default reduce1)\n"
      "  --models A,B,...  round-robin synthesized requests over several\n"
      "                    models (cache-thrash traffic; overrides --model)\n"
      "  --requests N      total measured requests (default 200)\n"
      "  --conns N         concurrent connections (default 4)\n"
      "  --qps Q           target requests/second, 0 = unpaced (default 0)\n"
      "  --size-min N      smallest synthesized size (default 16384)\n"
      "  --size-max N      largest synthesized size (default 4194304)\n"
      "  --trace FILE      replay request lines from FILE instead of\n"
      "                    synthesizing (round-robin across connections)\n"
      "  --slow N          additional deliberately slow clients that\n"
      "                    dribble one request byte-by-byte (default 0)\n"
      "  --disconnect N    additional clients that hang up mid-request\n"
      "                    (default 0)\n"
      "  --timeout-ms N    per-reply client timeout (default 10000)\n"
      "  --seed N          RNG seed for sizes (default 1)\n"
      "  --oneshot LINE    send one request line, print the reply, exit\n"
      "                    (exit 0 iff the reply says \"ok\":true);\n"
      "                    admin-verb helper for reload e2e harnesses\n"
      "  --reload-churn N  rewrite the --churn-file bundle every N ms\n"
      "                    while the measured load runs (hot-reload churn;\n"
      "                    0 = off)\n"
      "  --churn-file P    bundle path the churn thread rewrites\n"
      "  --churn-src A,B   alternate source bundles cycled into\n"
      "                    --churn-file (default: rewrite its own bytes)\n"
      "  --out FILE        report path (default BENCH_serve.json)\n"
      "  --stats-out FILE  after the run, fetch {\"cmd\":\"stats\"} over a\n"
      "                    fresh connection and write the reply to FILE\n"
      "  --version         print the build identity and exit\n");
}

struct Args {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = -1;
  std::string model = "reduce1";
  std::vector<std::string> models;
  std::size_t requests = 200;
  std::size_t conns = 4;
  double qps = 0.0;
  double size_min = 16384.0;
  double size_max = 4194304.0;
  std::string trace_path;
  std::size_t slow = 0;
  std::size_t disconnect = 0;
  int timeout_ms = 10000;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_serve.json";
  std::string stats_out_path;
  std::string oneshot;
  std::size_t reload_churn_ms = 0;
  std::string churn_file;
  std::vector<std::string> churn_src;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      BF_CHECK_MSG(i + 1 < argc, "missing value for " << a);
      return argv[++i];
    };
    if (a == "--socket") {
      args.socket_path = next();
    } else if (a == "--tcp") {
      const std::string spec = next();
      const std::size_t colon = spec.rfind(':');
      BF_CHECK_MSG(colon != std::string::npos, "--tcp needs HOST:PORT");
      args.tcp_host = spec.substr(0, colon);
      args.tcp_port = static_cast<int>(parse_int(spec.substr(colon + 1)));
    } else if (a == "--model") {
      args.model = next();
    } else if (a == "--models") {
      args.models = split(next(), ',');
      BF_CHECK_MSG(!args.models.empty(), "--models needs at least one name");
    } else if (a == "--requests") {
      args.requests = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--conns") {
      args.conns = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--qps") {
      args.qps = parse_double(next());
    } else if (a == "--size-min") {
      args.size_min = parse_double(next());
    } else if (a == "--size-max") {
      args.size_max = parse_double(next());
    } else if (a == "--trace") {
      args.trace_path = next();
    } else if (a == "--slow") {
      args.slow = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--disconnect") {
      args.disconnect = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--timeout-ms") {
      args.timeout_ms = static_cast<int>(parse_int(next()));
    } else if (a == "--seed") {
      args.seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (a == "--out") {
      args.out_path = next();
    } else if (a == "--stats-out") {
      args.stats_out_path = next();
    } else if (a == "--oneshot") {
      args.oneshot = next();
    } else if (a == "--reload-churn") {
      args.reload_churn_ms = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--churn-file") {
      args.churn_file = next();
    } else if (a == "--churn-src") {
      args.churn_src = split(next(), ',');
    } else if (a == "--version") {
      std::printf("%s\n", bf::version_string().c_str());
      std::exit(0);
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      BF_FAIL("unknown option: " << a);
    }
  }
  BF_CHECK_MSG(!args.socket_path.empty() || args.tcp_port >= 0,
               "need --socket PATH or --tcp HOST:PORT");
  BF_CHECK_MSG(args.conns > 0, "--conns must be positive");
  return args;
}

int connect_target(const Args& args) {
  if (!args.socket_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    BF_CHECK_MSG(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    BF_CHECK_MSG(args.socket_path.size() < sizeof(addr.sun_path),
                 "socket path too long: " << args.socket_path);
    args.socket_path.copy(addr.sun_path, args.socket_path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      BF_FAIL("cannot connect to " << args.socket_path << ": " << why);
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BF_CHECK_MSG(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(args.tcp_port));
  if (::inet_pton(AF_INET, args.tcp_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    BF_FAIL("not a numeric IPv4 address: " << args.tcp_host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    BF_FAIL("cannot connect to " << args.tcp_host << ":" << args.tcp_port
                                 << ": " << why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Blocking NDJSON client: send whole lines, read one reply line with a
/// deadline. Measured clients run one in-flight request at a time, so a
/// simple read-until-newline buffer suffices.
class Client {
 public:
  explicit Client(int fd) : fd_(fd) {}
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }

  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const int w = serve::send_some(fd_, data.data() + off,
                                     data.size() - off);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w == serve::kIoWouldBlock) continue;  // blocking fd: cannot happen
      return false;
    }
    return true;
  }

  /// Read one '\n'-terminated line (stripped), waiting up to timeout_ms.
  bool read_line(std::string& line, int timeout_ms) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;
      char chunk[4096];
      const int r = serve::read_some(fd_, chunk, sizeof(chunk));
      if (r > 0) {
        buf_.append(chunk, static_cast<std::size_t>(r));
        continue;
      }
      if (r == serve::kIoWouldBlock) continue;
      return false;  // EOF or peer gone without a complete line
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  std::string buf_;
};

struct Outcome {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> no_reply{0};
};

void classify(const std::string& reply, Outcome& outcome) {
  if (reply.find("\"ok\":true") != std::string::npos) {
    outcome.ok.fetch_add(1, std::memory_order_relaxed);
  } else if (reply.find("\"code\":\"shed\"") != std::string::npos) {
    outcome.shed.fetch_add(1, std::memory_order_relaxed);
  } else {
    outcome.errors.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string percentile_block(std::vector<double>& sorted_ms) {
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto rank = [&](double p) -> double {
    if (sorted_ms.empty()) return 0.0;
    const double idx = p * static_cast<double>(sorted_ms.size());
    std::size_t i = static_cast<std::size_t>(idx);
    if (i >= sorted_ms.size()) i = sorted_ms.size() - 1;
    return sorted_ms[i];
  };
  double sum = 0.0;
  for (const double v : sorted_ms) sum += v;
  const double mean =
      sorted_ms.empty() ? 0.0 : sum / static_cast<double>(sorted_ms.size());
  std::ostringstream os;
  os << "{\"p50\":" << rank(0.50) << ",\"p95\":" << rank(0.95)
     << ",\"p99\":" << rank(0.99)
     << ",\"max\":" << (sorted_ms.empty() ? 0.0 : sorted_ms.back())
     << ",\"mean\":" << mean << '}';
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);

    // One-shot mode: a single request/reply round-trip over a fresh
    // connection — the e2e harness's admin-verb and spot-check client.
    if (!args.oneshot.empty()) {
      Client client(connect_target(args));
      BF_CHECK_MSG(client.send_all(args.oneshot + "\n"),
                   "oneshot send failed");
      std::string reply;
      BF_CHECK_MSG(client.read_line(reply, args.timeout_ms),
                   "oneshot reply timed out");
      std::printf("%s\n", reply.c_str());
      return reply.find("\"ok\":true") != std::string::npos ? 0 : 1;
    }

    // Build the request trace up front so pacing measures the server,
    // not request synthesis.
    std::vector<std::string> trace;
    if (!args.trace_path.empty()) {
      const auto text = bf::read_file(args.trace_path);
      BF_CHECK_MSG(text.has_value(), "cannot read " << args.trace_path);
      trace = serve::split_requests(*text);
      BF_CHECK_MSG(!trace.empty(), args.trace_path << " holds no requests");
    } else {
      Rng rng(args.seed);
      const double lo = std::log(args.size_min);
      const double hi = std::log(std::max(args.size_max, args.size_min));
      const std::vector<std::string> models =
          args.models.empty() ? std::vector<std::string>{args.model}
                              : args.models;
      trace.reserve(args.requests);
      for (std::size_t k = 0; k < args.requests; ++k) {
        const double size = std::floor(std::exp(rng.uniform(lo, hi)));
        std::ostringstream os;
        os << "{\"cmd\":\"predict\",\"model\":\"" << models[k % models.size()]
           << "\",\"size\":" << size << ",\"id\":" << k << '}';
        trace.push_back(os.str());
      }
    }
    const std::size_t total = args.requests;

    Outcome outcome;
    std::mutex latencies_mu;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(total);
    std::atomic<std::uint64_t> slow_ok{0};
    std::atomic<std::uint64_t> disconnects_done{0};

    // Reload churn: rewrite the target bundle on a timer while the
    // measured load runs, driving the server's staleness watcher. With
    // --churn-src the rewrites alternate real exports (checksum changes
    // -> promotions); without it the file's own bytes are rewritten
    // (mtime changes, checksum does not -> cheap unchanged polls).
    std::atomic<bool> churn_stop{false};
    std::atomic<std::uint64_t> churns{0};
    std::thread churn_thread;
    if (args.reload_churn_ms > 0) {
      BF_CHECK_MSG(!args.churn_file.empty(),
                   "--reload-churn needs --churn-file PATH");
      std::vector<std::string> variants;
      for (const auto& src : args.churn_src) {
        const auto text = bf::read_file(src);
        BF_CHECK_MSG(text.has_value(), "cannot read churn source " << src);
        variants.push_back(*text);
      }
      if (variants.empty()) {
        const auto text = bf::read_file(args.churn_file);
        BF_CHECK_MSG(text.has_value(),
                     "cannot read churn file " << args.churn_file);
        variants.push_back(*text);
      }
      // Joined before every capture dies (see below), hence the audit.
      churn_thread = std::thread([&, variants] {  // bf-lint: allow(capture-escape)
        std::size_t i = 0;
        while (!churn_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(args.reload_churn_ms));
          try {
            bf::atomic_write_file(args.churn_file,
                                  variants[i++ % variants.size()]);
            churns.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "bf_loadgen: churn: %s\n", e.what());
          }
        }
      });
    }

    const auto t_start = Clock::now();
    const auto send_time = [&](std::size_t k) {
      if (args.qps <= 0.0) return t_start;
      const double offset_s = static_cast<double>(k) / args.qps;
      return t_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(offset_s));
    };

    std::vector<std::thread> threads;
    threads.reserve(args.conns + args.slow + args.disconnect);
    for (std::size_t c = 0; c < args.conns; ++c) {
      // bf-lint: allow(capture-escape) — joined before every capture dies
      threads.emplace_back([&, c] {
        try {
          Client client(connect_target(args));
          for (std::size_t k = c; k < total; k += args.conns) {
            std::this_thread::sleep_until(send_time(k));
            const std::string line = trace[k % trace.size()] + "\n";
            const auto t0 = Clock::now();
            if (!client.send_all(line)) {
              outcome.no_reply.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            std::string reply;
            if (!client.read_line(reply, args.timeout_ms)) {
              outcome.no_reply.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            const double ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - t0)
                                  .count();
            classify(reply, outcome);
            std::lock_guard<std::mutex> lock(latencies_mu);
            latencies_ms.push_back(ms);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bf_loadgen: conn %zu: %s\n", c, e.what());
          outcome.no_reply.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // Deliberately slow clients: dribble one request a byte at a time.
    // The server must keep answering everyone else while these crawl.
    for (std::size_t s = 0; s < args.slow; ++s) {
      // bf-lint: allow(capture-escape) — joined before every capture dies
      threads.emplace_back([&, s] {
        try {
          Client client(connect_target(args));
          const std::string line = trace[s % trace.size()] + "\n";
          for (const char ch : line) {
            if (!client.send_all(std::string(1, ch))) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
          std::string reply;
          if (client.read_line(reply, args.timeout_ms)) {
            slow_ok.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bf_loadgen: slow client: %s\n", e.what());
        }
      });
    }

    // Mid-request disconnectors: half a JSON object, then hang up.
    for (std::size_t d = 0; d < args.disconnect; ++d) {
      // bf-lint: allow(capture-escape) — joined before every capture dies
      threads.emplace_back([&, d] {
        try {
          Client client(connect_target(args));
          const std::string& line = trace[d % trace.size()];
          client.send_all(line.substr(0, line.size() / 2));
          client.close();
          disconnects_done.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bf_loadgen: disconnect client: %s\n",
                       e.what());
        }
      });
    }

    for (auto& t : threads) t.join();
    churn_stop.store(true, std::memory_order_relaxed);
    if (churn_thread.joinable()) churn_thread.join();
    const double duration_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t_start)
            .count();

    const std::uint64_t ok = outcome.ok.load();
    const std::uint64_t shed = outcome.shed.load();
    const std::uint64_t errors = outcome.errors.load();
    const std::uint64_t no_reply = outcome.no_reply.load();
    const std::uint64_t answered = ok + shed + errors;
    const double qps_achieved =
        duration_ms > 0.0 ? 1000.0 * static_cast<double>(answered) / duration_ms
                          : 0.0;
    const double shed_fraction =
        answered > 0 ? static_cast<double>(shed) / static_cast<double>(answered)
                     : 0.0;
    const double error_fraction =
        answered > 0
            ? static_cast<double>(errors) / static_cast<double>(answered)
            : 0.0;

    std::ostringstream os;
    os << "{\"bench\":\"serve\",\"schema_version\":1,\"target\":\""
       << (!args.socket_path.empty()
               ? args.socket_path
               : args.tcp_host + ":" + std::to_string(args.tcp_port))
       << "\",\"conns\":" << args.conns << ",\"qps_target\":" << args.qps
       << ",\"requests\":" << total << ",\"ok\":" << ok
       << ",\"shed\":" << shed << ",\"errors\":" << errors
       << ",\"no_reply\":" << no_reply
       << ",\"shed_fraction\":" << shed_fraction
       << ",\"error_fraction\":" << error_fraction
       << ",\"duration_ms\":" << duration_ms
       << ",\"qps_achieved\":" << qps_achieved << ",\"latency_ms\":"
       << percentile_block(latencies_ms) << ",\"chaos\":{\"slow_clients\":"
       << args.slow << ",\"slow_ok\":" << slow_ok.load()
       << ",\"disconnect_clients\":" << args.disconnect
       << ",\"disconnects_done\":" << disconnects_done.load()
       << "},\"churn\":{\"period_ms\":" << args.reload_churn_ms
       << ",\"churns\":" << churns.load() << "}}\n";
    bf::atomic_write_file(args.out_path, os.str());
    std::printf("%s", os.str().c_str());

    // Post-run server introspection: the cache/connection counters that
    // e2e harnesses assert on (single-flight loads, evictions, sheds).
    if (!args.stats_out_path.empty()) {
      Client client(connect_target(args));
      std::string reply;
      BF_CHECK_MSG(client.send_all("{\"cmd\":\"stats\"}\n") &&
                       client.read_line(reply, args.timeout_ms),
                   "stats fetch failed");
      bf::atomic_write_file(args.stats_out_path, reply + "\n");
    }

    return ok > 0 ? 0 : 1;
  } catch (const bf::Error& e) {
    std::fprintf(stderr, "bf_loadgen: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bf_loadgen: unexpected error: %s\n", e.what());
    return 1;
  }
}
