// bf_lint — a fast project linter for the BlackForest tree, run as a
// ctest so violations fail the build.
//
//   bf_lint DIR [DIR...]
//
// Scans every .hpp/.cpp under the given roots for banned patterns:
//
//   pragma-once     .hpp files must contain #pragma once
//   raw-new         raw `new` outside RAII (use std::make_unique & co.)
//   raw-delete      raw `delete` (deleted members `= delete` are fine)
//   no-rand         rand()/srand() instead of the seeded bf::Rng
//   float-literal   float literals (1.0f) in double-precision stat code
//   unchecked-parse atof/atoi/stod/... which swallow trailing garbage;
//                   use bf::parse_double / bf::parse_int / CsvTable
//   atomic-write    direct std::ofstream use inside the profiling /
//                   repository layer, which can leave torn entries on
//                   crash; persist through bf::atomic_write_file
//   guarded-predict direct per-row forest / counter-model queries
//                   (predict_row, forest().predict) inside src/core/ or
//                   tools/, bypassing the guard layer's supervised entry
//                   points (ProblemScalingPredictor::predict_guarded,
//                   CounterModels::predict_kind)
//   artifact-version a serialized-struct reader (a load(std::istream&)
//                   definition) that parses fields without first
//                   checking the format version; readers must call
//                   bf::read_format_version (or bind format_version)
//                   before touching the payload, so old binaries reject
//                   newer formats instead of misreading them
//
// Comments and string/char literals are stripped before matching, so
// prose and format strings never trip a rule. A finding on a line
// containing `bf-lint: allow(<rule>)` is suppressed.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Blank out comments and string/char literals, preserving offsets and
/// newlines so line numbers stay valid.
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

struct Token {
  std::string text;
  int line = 0;
  bool is_number = false;
};

std::vector<Token> tokenize(const std::string& stripped) {
  std::vector<Token> tokens;
  int line = 1;
  for (std::size_t i = 0; i < stripped.size();) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 &&
        (i == 0 || !is_ident_char(stripped[i - 1]))) {
      // Numeric literal: digits, hex, '.', exponents, suffixes.
      std::size_t j = i;
      while (j < stripped.size() &&
             (is_ident_char(stripped[j]) || stripped[j] == '.' ||
              ((stripped[j] == '+' || stripped[j] == '-') && j > i &&
               (stripped[j - 1] == 'e' || stripped[j - 1] == 'E' ||
                stripped[j - 1] == 'p' || stripped[j - 1] == 'P')))) {
        ++j;
      }
      tokens.push_back({stripped.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < stripped.size() && is_ident_char(stripped[j])) ++j;
      tokens.push_back({stripped.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      tokens.push_back({std::string(1, c), line, false});
    }
    ++i;
  }
  return tokens;
}

/// True for a decimal floating literal with an f/F suffix (1.0f, 3.f,
/// 1e-3f). Hex literals (0xFF) and integers are not flagged.
bool is_float_literal(const std::string& t) {
  if (t.size() < 2) return false;
  if (t.back() != 'f' && t.back() != 'F') return false;
  if (t.size() > 2 && (t[1] == 'x' || t[1] == 'X')) return false;  // hex
  for (const char c : t) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return false;
}

const std::set<std::string> kRandTokens = {"rand", "srand", "drand48",
                                           "random_shuffle"};
const std::set<std::string> kParseTokens = {"atof",   "atoi",  "atol",
                                            "strtod", "strtof", "stod",
                                            "stof",   "stoi",   "stol"};

void scan_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream is(path);
  if (!is.good()) {
    findings.push_back({path.string(), 0, "io", "cannot read file"});
    return;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string src = buf.str();
  const std::string stripped = strip_comments_and_strings(src);

  // Raw lines, for suppression comments.
  std::vector<std::string> lines;
  {
    std::istringstream ls(src);
    std::string line;
    while (std::getline(ls, line)) lines.push_back(line);
  }
  const auto suppressed = [&lines](int line, const std::string& rule) {
    if (line < 1 || line > static_cast<int>(lines.size())) return false;
    const std::string& l = lines[static_cast<std::size_t>(line - 1)];
    return l.find("bf-lint: allow(" + rule + ")") != std::string::npos;
  };
  const auto report = [&](int line, const std::string& rule,
                          const std::string& message) {
    if (suppressed(line, rule)) return;
    findings.push_back({path.string(), line, rule, message});
  };

  if (path.extension() == ".hpp" &&
      stripped.find("#pragma once") == std::string::npos) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  // The run repository must never be written through a bare ofstream: a
  // crash mid-write leaves a torn entry behind. Everything under the
  // profiling layer goes through bf::atomic_write_file instead.
  const bool repository_layer =
      path.generic_string().find("/profiling/") != std::string::npos ||
      path.filename().string().find("repository") != std::string::npos;

  // Prediction consumers (the core pipeline and the CLI tools) must go
  // through the guard layer's supervised entry points; the few audited
  // raw-query exits carry explicit allow() suppressions.
  const bool guard_scope =
      path.generic_string().find("/core/") != std::string::npos ||
      path.generic_string().find("/tools/") != std::string::npos;

  const std::vector<Token> tokens = tokenize(stripped);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.is_number) {
      if (is_float_literal(t.text)) {
        report(t.line, "float-literal",
               "float literal '" + t.text +
                   "' in double-precision code (drop the f suffix)");
      }
      continue;
    }
    if (t.text == "new") {
      report(t.line, "raw-new",
             "raw new (use std::make_unique / containers)");
    } else if (t.text == "delete") {
      const bool deleted_member = i > 0 && tokens[i - 1].text == "=";
      if (!deleted_member) {
        report(t.line, "raw-delete",
               "raw delete (owning types must use RAII)");
      }
    } else if (kRandTokens.count(t.text) != 0) {
      report(t.line, "no-rand",
             "'" + t.text + "' is unseeded/non-reproducible (use bf::Rng)");
    } else if (kParseTokens.count(t.text) != 0) {
      report(t.line, "unchecked-parse",
             "'" + t.text +
                 "' swallows trailing garbage (use bf::parse_double / "
                 "bf::parse_int / CsvTable)");
    } else if (repository_layer && t.text == "ofstream") {
      report(t.line, "atomic-write",
             "direct ofstream write in the repository layer can tear "
             "entries on crash (use bf::atomic_write_file)");
    } else if (guard_scope && t.text == "predict_row") {
      report(t.line, "guarded-predict",
             "direct per-row model query bypasses the guard layer (use "
             "ProblemScalingPredictor::predict_guarded / "
             "CounterModels::predict_kind)");
    } else if (path.extension() == ".cpp" && t.text == "load" &&
               i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      // A reader definition: `load(` with an istream parameter close by
      // (declarations live in headers, call sites pass a value, so only
      // .cpp definitions match). The function must consult the format
      // version before parsing any field.
      bool is_reader = false;
      for (std::size_t j = i + 2; j < tokens.size() && j <= i + 6; ++j) {
        if (tokens[j].text == "istream") {
          is_reader = true;
          break;
        }
      }
      if (is_reader) {
        bool versioned = false;
        for (std::size_t j = i; j < tokens.size() && j <= i + 200; ++j) {
          if (tokens[j].text == "read_format_version" ||
              tokens[j].text == "format_version") {
            versioned = true;
            break;
          }
        }
        if (!versioned) {
          report(t.line, "artifact-version",
                 "serialized-struct reader does not check the format "
                 "version before parsing (call bf::read_format_version "
                 "first)");
        }
      }
    } else if (guard_scope && t.text == "predict" && i >= 2 &&
               tokens[i - 1].text == "." &&
               (tokens[i - 2].text == "forest_" ||
                (i >= 4 && tokens[i - 2].text == ")" &&
                 tokens[i - 3].text == "(" &&
                 tokens[i - 4].text == "forest"))) {
      report(t.line, "guarded-predict",
             "direct forest prediction bypasses the guard layer (use "
             "ProblemScalingPredictor::predict_guarded)");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bf_lint DIR [DIR...]\n");
    return 2;
  }
  std::vector<Finding> findings;
  std::size_t files = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "bf_lint: no such path: %s\n", argv[a]);
      return 2;
    }
    std::vector<fs::path> paths;
    if (fs::is_regular_file(root)) {
      paths.push_back(root);
    } else {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext == ".hpp" || ext == ".cpp") paths.push_back(entry.path());
      }
    }
    for (const auto& p : paths) {
      ++files;
      scan_file(p, findings);
    }
  }
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("bf_lint: %zu violation(s) in %zu file(s) scanned\n",
                findings.size(), files);
    return 1;
  }
  std::printf("bf_lint: clean (%zu files scanned)\n", files);
  return 0;
}
