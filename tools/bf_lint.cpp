// bf_lint — the BlackForest static-analysis driver, run as a ctest so
// violations fail the build.
//
//   bf_lint [options] DIR|FILE [DIR|FILE...]
//
//   --baseline FILE   committed grandfathered findings (stable keys with
//                     justifications; stale entries are findings)
//   --json FILE       write the findings as a JSON document ('-' for
//                     stdout); text output still goes to stdout
//   --exclude PATH    skip a file or directory subtree (repeatable)
//   --repo-root DIR   root for repo-relative paths (default: deepest
//                     common ancestor of the scan roots)
//   --list-rules      print the rule registry and exit
//
// The analysis itself lives in src/sa/ (bf::sa): a shared
// comment/string/raw-string-aware lexer feeding three pass families —
// per-file token rules (the classic banned-pattern nine), the
// include-graph pass (layer DAG, cycles, duplicate includes) and the
// concurrency passes (capture-escape, mutable-global, lock-order).
// See docs/static_analysis.md for the full rule list and policies.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/string_util.hpp"
#include "sa/analyzer.hpp"
#include "sa/rules.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bf_lint [--baseline FILE] [--json FILE|-] "
               "[--exclude PATH]... [--repo-root DIR] [--list-rules] "
               "DIR|FILE [DIR|FILE...]\n");
  return 2;
}

int list_rules() {
  for (const auto& r : bf::sa::rule_registry()) {
    std::printf("%-18s %-7s %s\n", r.id, bf::sa::severity_name(r.severity),
                r.summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bf::sa::AnalyzerOptions options;
  std::string json_out;
  bool want_json = false;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    const auto value = [&]() -> const char* {
      if (a + 1 >= argc) return nullptr;
      return argv[++a];
    };
    if (std::strcmp(arg, "--list-rules") == 0) return list_rules();
    if (std::strcmp(arg, "--baseline") == 0) {
      const char* v = value();
      if (v == nullptr) return usage();
      options.baseline_path = v;
    } else if (std::strcmp(arg, "--json") == 0) {
      const char* v = value();
      if (v == nullptr) return usage();
      json_out = v;
      want_json = true;
    } else if (std::strcmp(arg, "--exclude") == 0) {
      const char* v = value();
      if (v == nullptr) return usage();
      options.excludes.push_back(v);
    } else if (std::strcmp(arg, "--repo-root") == 0) {
      const char* v = value();
      if (v == nullptr) return usage();
      options.repo_root = v;
    } else if (bf::starts_with(arg, "--")) {
      std::fprintf(stderr, "bf_lint: unknown option: %s\n", arg);
      return usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) return usage();

  bf::sa::AnalysisReport report;
  try {
    report = bf::sa::analyze(options);
  } catch (const bf::Error& e) {
    std::fprintf(stderr, "bf_lint: %s\n", e.what());
    return 2;
  }

  const std::string text =
      bf::sa::render_text(report.findings, report.stats);
  std::fputs(text.c_str(), stdout);

  if (want_json) {
    const std::string json =
        bf::sa::render_json(report.findings, report.stats);
    if (json_out == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      try {
        bf::atomic_write_file(json_out, json);
      } catch (const bf::Error& e) {
        std::fprintf(stderr, "bf_lint: %s\n", e.what());
        return 2;
      }
    }
  }
  return report.findings.empty() ? 0 : 1;
}
