// bf_serve — the BlackForest prediction server.
//
// Answers newline-delimited JSON prediction requests from trained
// .bfmodel bundles (written by `bf_analyze --export-model`). Bundles
// are cached in an LRU registry with single-flight loading; batches are
// grouped per model and fanned across a thread pool.
//
//   bf_analyze --workload reduce1 --runs 12 --export-model m/reduce1.bfmodel
//   printf '%s\n' '{"model":"reduce1","size":65536,"id":1}' |
//     bf_serve --model-dir m
//
//   bf_serve --model-dir m --socket /tmp/bf.sock     # accept loop
//
// Request/response schema: docs/serving.md.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "serve/server.hpp"

namespace {

using namespace bf;

void usage() {
  std::printf(
      "usage: bf_serve [options]\n"
      "  --model-dir DIR   directory of <name>.bfmodel bundles (default .)\n"
      "  --cache N         max resident bundles, LRU beyond (default 8)\n"
      "  --threads N       worker threads (default: shared global pool)\n"
      "  --socket PATH     listen on a Unix socket instead of stdin;\n"
      "                    each connection sends NDJSON requests and\n"
      "                    half-closes, replies come back in order\n"
      "  --once            exit after the first socket connection\n"
      "  --batch           read all of stdin before answering, grouping\n"
      "                    requests per model and fanning across the\n"
      "                    thread pool (default: one reply per line,\n"
      "                    streamed as requests arrive)\n"
      "  --faults SPEC     arm fault injection (also BF_FAULTS in env)\n"
      "  --fault-seed N    deterministic fault stream seed\n"
      "  --version         print the build identity and exit\n"
      "\n"
      "stdin mode reads requests (one JSON object per line) until EOF\n"
      "and writes one reply line per request, in input order.\n");
}

struct Args {
  serve::ServerOptions server;
  std::string socket_path;
  bool once = false;
  bool batch = false;
  std::string faults;
  std::uint64_t fault_seed = bf::fault::kDefaultSeed;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      BF_CHECK_MSG(i + 1 < argc, "missing value for " << a);
      return argv[++i];
    };
    if (a == "--model-dir") {
      args.server.model_dir = next();
    } else if (a == "--cache") {
      args.server.cache_capacity = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--threads") {
      args.server.threads = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--socket") {
      args.socket_path = next();
    } else if (a == "--once") {
      args.once = true;
    } else if (a == "--batch") {
      args.batch = true;
    } else if (a == "--faults") {
      args.faults = next();
    } else if (a == "--fault-seed") {
      args.fault_seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (a == "--version") {
      std::printf("%s\n", bf::version_string().c_str());
      std::exit(0);
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      BF_FAIL("unknown option: " << a);
    }
  }
  return args;
}

/// Split a request stream into lines, dropping blank ones (a trailing
/// newline before EOF is not an empty request).
std::vector<std::string> split_requests(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(std::move(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

int run_stdin(serve::Server& server, bool batch) {
  if (batch) {
    // Throughput mode: collect everything, group per model, fan out.
    std::string input;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
      input.append(buf, n);
    }
    const auto replies = server.handle_batch(split_requests(input));
    for (const auto& reply : replies) std::printf("%s\n", reply.c_str());
    return 0;
  }
  // Streaming mode: one reply per request line, flushed immediately so
  // an interactive client (or a pipe) sees answers as it asks.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::printf("%s\n", server.handle_line(line).c_str());
    std::fflush(stdout);
  }
  return 0;
}

#ifndef _WIN32
int run_socket(serve::Server& server, const std::string& path, bool once) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BF_CHECK_MSG(listener >= 0, "cannot create Unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BF_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "socket path too long: " << path);
  path.copy(addr.sun_path, path.size());
  ::unlink(path.c_str());
  BF_CHECK_MSG(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "cannot bind " << path);
  BF_CHECK_MSG(::listen(listener, 16) == 0, "cannot listen on " << path);
  std::fprintf(stderr, "bf_serve: listening on %s\n", path.c_str());

  while (true) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    std::string input;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::read(conn, buf, sizeof(buf))) > 0) {
      input.append(buf, static_cast<std::size_t>(n));
    }
    const auto replies = server.handle_batch(split_requests(input));
    std::string out;
    for (const auto& reply : replies) {
      out += reply;
      out += '\n';
    }
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t w = ::write(conn, out.data() + off, out.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(conn);
    if (once) break;
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (!args.faults.empty()) {
      bf::fault::reseed(args.fault_seed);
      bf::fault::configure(args.faults);
    } else {
      bf::fault::configure_from_env();
    }
    serve::Server server(args.server);
    if (!args.socket_path.empty()) {
#ifndef _WIN32
      return run_socket(server, args.socket_path, args.once);
#else
      BF_FAIL("--socket is not supported on this platform");
#endif
    }
    return run_stdin(server, args.batch);
  } catch (const bf::Error& e) {
    std::fprintf(stderr, "bf_serve: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bf_serve: unexpected error: %s\n", e.what());
    return 1;
  }
}
