// bf_serve — the BlackForest prediction server.
//
// Answers newline-delimited JSON prediction requests from trained
// .bfmodel bundles (written by `bf_analyze --export-model`). Bundles
// are cached in an LRU registry with single-flight loading; batches are
// grouped per model, deduplicated, and fanned across a thread pool.
//
//   bf_analyze --workload reduce1 --runs 12 --export-model m/reduce1.bfmodel
//   printf '%s\n' '{"model":"reduce1","size":65536,"id":1}' |
//     bf_serve --model-dir m
//
//   bf_serve --model-dir m --socket /tmp/bf.sock          # Unix listener
//   bf_serve --model-dir m --tcp 7070                     # TCP listener
//
// Socket modes run the fleet-shaped connection layer (serve/conn.hpp):
// concurrent connections, pipelined line-by-line replies, admission
// control with explicit load shedding, per-connection timeouts, and a
// graceful drain on SIGTERM/SIGINT. Request/response schema and
// operational behaviour: docs/serving.md.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <atomic>
#include <csignal>
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#ifndef _WIN32
#include "serve/conn.hpp"
#endif
#include "serve/net.hpp"
#include "serve/server.hpp"

namespace {

using namespace bf;

void usage() {
  std::printf(
      "usage: bf_serve [options]\n"
      "  --model-dir DIR   directory of <name>.bfmodel bundles (default .)\n"
      "  --cache N         max resident bundles, LRU beyond (default 8)\n"
      "  --threads N       worker threads (default: shared global pool)\n"
      "  --socket PATH     listen on a Unix socket; pipelined NDJSON\n"
      "                    requests are answered line-by-line, in order\n"
      "  --tcp [HOST:]PORT listen on TCP too (or instead); port 0 binds\n"
      "                    an ephemeral port and prints it on stderr\n"
      "  --backlog N       listen(2) backlog (default 64)\n"
      "  --max-conns N     open-connection cap; beyond it a connection\n"
      "                    gets one \"shed\" reply and is closed\n"
      "                    (default 256)\n"
      "  --max-queue N     admitted-but-unanswered request cap; beyond\n"
      "                    it requests are shed with an explicit error\n"
      "                    (default 1024)\n"
      "  --timeout-ms N    per-connection inactivity timeout\n"
      "                    (default 30000)\n"
      "  --drain-ms N      grace budget for in-flight requests after\n"
      "                    SIGTERM/SIGINT (default 5000)\n"
      "  --net-workers N   threads running request batches for the\n"
      "                    socket listeners (default 2)\n"
      "  --reload-watch-ms N  poll resident bundles for on-disk changes\n"
      "                    every N ms and hot-reload them (canary-\n"
      "                    validated, atomic promotion; default 1000,\n"
      "                    0 disables the watcher)\n"
      "  --no-reload       disable hot reload entirely: no watcher and\n"
      "                    the reload/pin/unpin admin verbs are refused\n"
      "  --once            exit after the first socket connection closes\n"
      "  --batch           read all of stdin before answering, grouping\n"
      "                    requests per model and fanning across the\n"
      "                    thread pool (default: one reply per line,\n"
      "                    streamed as requests arrive)\n"
      "  --faults SPEC     arm fault injection (also BF_FAULTS in env)\n"
      "  --fault-seed N    deterministic fault stream seed\n"
      "  --version         print the build identity and exit\n"
      "\n"
      "stdin mode reads requests (one JSON object per line) until EOF\n"
      "and writes one reply line per request, in input order. On SIGTERM\n"
      "or SIGINT the socket modes stop accepting, finish or time out\n"
      "in-flight requests, flush, and exit 0.\n");
}

struct Args {
  serve::ServerOptions server;
  serve::NetServerOptions net;
  bool use_net = false;
  bool batch = false;
  std::string faults;
  std::uint64_t fault_seed = bf::fault::kDefaultSeed;
};

Args parse(int argc, char** argv) {
  Args args;
  // CLI default: watch for bundle changes once a second. ServerOptions
  // itself defaults to 0 (off) so embedded/test servers opt in.
  args.server.reload_watch_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      BF_CHECK_MSG(i + 1 < argc, "missing value for " << a);
      return argv[++i];
    };
    if (a == "--model-dir") {
      args.server.model_dir = next();
    } else if (a == "--cache") {
      args.server.cache_capacity = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--threads") {
      args.server.threads = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--socket") {
      args.net.unix_path = next();
      args.use_net = true;
    } else if (a == "--tcp") {
      const std::string spec = next();
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        args.net.tcp_port = static_cast<int>(parse_int(spec));
      } else {
        args.net.tcp_host = spec.substr(0, colon);
        args.net.tcp_port = static_cast<int>(parse_int(spec.substr(colon + 1)));
      }
      BF_CHECK_MSG(args.net.tcp_port >= 0 && args.net.tcp_port <= 65535,
                   "--tcp port out of range: " << spec);
      args.use_net = true;
    } else if (a == "--backlog") {
      args.net.backlog = static_cast<int>(parse_int(next()));
    } else if (a == "--max-conns") {
      args.net.max_conns = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--max-queue") {
      args.net.max_queue = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--timeout-ms") {
      args.net.timeout_ms = static_cast<int>(parse_int(next()));
    } else if (a == "--drain-ms") {
      args.net.drain_ms = static_cast<int>(parse_int(next()));
    } else if (a == "--net-workers") {
      args.net.workers = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--reload-watch-ms") {
      args.server.reload_watch_ms =
          static_cast<std::uint64_t>(parse_int(next()));
    } else if (a == "--no-reload") {
      args.server.allow_reload = false;
    } else if (a == "--once") {
      args.net.once = true;
    } else if (a == "--batch") {
      args.batch = true;
    } else if (a == "--faults") {
      args.faults = next();
    } else if (a == "--fault-seed") {
      args.fault_seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (a == "--version") {
      std::printf("%s\n", bf::version_string().c_str());
      std::exit(0);
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      BF_FAIL("unknown option: " << a);
    }
  }
  return args;
}

int run_stdin(serve::Server& server, bool batch) {
  if (batch) {
    // Throughput mode: collect everything, group per model, fan out.
    std::string input;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
      input.append(buf, n);
    }
    const auto replies = server.handle_batch(serve::split_requests(input));
    for (const auto& reply : replies) std::printf("%s\n", reply.c_str());
    return 0;
  }
  // Streaming mode: one reply per request line, flushed immediately so
  // an interactive client (or a pipe) sees answers as it asks.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::printf("%s\n", server.handle_line(line).c_str());
    std::fflush(stdout);
  }
  return 0;
}

#ifndef _WIN32

/// write(2) from a signal handler needs the stop fd without touching
/// any non-trivial object; an atomic int is async-signal-safe to read.
std::atomic<int> g_stop_fd{-1};

extern "C" void handle_stop_signal(int) {
  const int fd = g_stop_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  const char byte = 's';
  // The return value is meaningless mid-signal; a full pipe already
  // guarantees a pending wake-up.
  (void)!::write(fd, &byte, 1);
}

int run_net(serve::Server& server, const Args& args) {
  serve::NetServer net(server, args.net);
  server.attach_net(&net.counters());
  g_stop_fd.store(net.stop_fd(), std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll must wake to notice the stop
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  if (!args.net.unix_path.empty()) {
    std::fprintf(stderr, "bf_serve: listening on %s\n",
                 args.net.unix_path.c_str());
  }
  if (args.net.tcp_port >= 0) {
    std::fprintf(stderr, "bf_serve: listening on %s:%u\n",
                 args.net.tcp_host.c_str(),
                 static_cast<unsigned>(net.tcp_port()));
  }
  const int rc = net.run();
  g_stop_fd.store(-1, std::memory_order_relaxed);
  return rc;
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (!args.faults.empty()) {
      bf::fault::reseed(args.fault_seed);
      bf::fault::configure(args.faults);
    } else {
      bf::fault::configure_from_env();
    }
    serve::Server server(args.server);
    if (args.use_net) {
#ifndef _WIN32
      return run_net(server, args);
#else
      BF_FAIL("--socket/--tcp are not supported on this platform");
#endif
    }
    return run_stdin(server, args.batch);
  } catch (const bf::Error& e) {
    std::fprintf(stderr, "bf_serve: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bf_serve: unexpected error: %s\n", e.what());
    return 1;
  }
}
