// bf_bench — single-thread prediction microbenchmark for the forest
// inference engines.
//
// Trains a paper-config forest (85 trees by default) on a profiled
// sweep, freezes it into both flat layouts, then measures single-row
// and batched prediction throughput for the pointer-tree baseline and
// the flat engine:
//
//   bf_bench --workload reduce1 --trees 85 --out BENCH_predict.json
//
// Every engine's outputs are compared against the pointer baseline with
// exact equality before any timing is reported — a fast-but-wrong
// engine aborts the run. The report (BENCH_predict.json) carries
// rows/sec, p50/p99 per-prediction latency and the speedup vs the
// pointer baseline per engine, so every later PR has a measurable
// trajectory artifact (the serving counterpart is BENCH_serve.json).
// With --compare PREV it re-reads a previous report and warns — warns,
// never fails, machines differ — when any engine's rows/sec regressed
// by more than 20%. With --min-speedup X the process exits non-zero
// unless the best flat layout reaches X× the pointer single-row
// baseline (the CI smoke gate uses a conservative value).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/csv.hpp"
#include "common/io.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "core/model.hpp"
#include "gpusim/arch.hpp"
#include "ml/flat_forest.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

namespace {

using namespace bf;
using Clock = std::chrono::steady_clock;

void usage() {
  std::printf(
      "usage: bf_bench [options]\n"
      "  --workload NAME   profiled workload to train on (default reduce1)\n"
      "  --arch NAME       architecture profiled (default gtx580)\n"
      "  --trees N         forest size (default 85, the paper config)\n"
      "  --sizes N         training sweep grid points (default 192)\n"
      "  --passes N        profiling passes over the grid; each uses a\n"
      "                    fresh profiler seed (run-to-run noise) and the\n"
      "                    rows concatenate into the training set\n"
      "                    (default 4)\n"
      "  --min N           smallest training size (default 4096)\n"
      "  --max N           largest training size (default 16777216)\n"
      "  --train-csv FILE  train on a previously dumped sweep instead of\n"
      "                    profiling one (reproducible reruns)\n"
      "  --dump-csv FILE   dump the profiled training sweep to FILE\n"
      "  --rows N          probe rows per measured pass (default 4096)\n"
      "  --reps N          measured passes per engine (default 20)\n"
      "  --min-speedup X   fail unless best flat layout reaches X x the\n"
      "                    pointer single-row baseline (default 0 = off)\n"
      "  --out FILE        report path (default BENCH_predict.json)\n"
      "  --compare FILE    previous report; warn on >20%% rows/sec drops\n"
      "  --version         print the build identity and exit\n");
}

struct Args {
  std::string workload = "reduce1";
  std::string arch = "gtx580";
  std::size_t trees = 85;
  int sizes = 192;
  std::size_t passes = 4;
  double min_size = 4096;
  double max_size = 16777216;
  std::size_t rows = 4096;
  std::size_t reps = 20;
  double min_speedup = 0.0;
  std::string out_path = "BENCH_predict.json";
  std::string compare_path;
  std::string train_csv;
  std::string dump_csv;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      BF_CHECK_MSG(i + 1 < argc, "missing value after " + a);
      return argv[++i];
    };
    if (a == "--workload") {
      args.workload = next();
    } else if (a == "--arch") {
      args.arch = next();
    } else if (a == "--trees") {
      args.trees = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--sizes") {
      args.sizes = static_cast<int>(parse_int(next()));
    } else if (a == "--passes") {
      args.passes = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--min") {
      args.min_size = parse_double(next());
    } else if (a == "--max") {
      args.max_size = parse_double(next());
    } else if (a == "--rows") {
      args.rows = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--reps") {
      args.reps = static_cast<std::size_t>(parse_int(next()));
    } else if (a == "--min-speedup") {
      args.min_speedup = parse_double(next());
    } else if (a == "--train-csv") {
      args.train_csv = next();
    } else if (a == "--dump-csv") {
      args.dump_csv = next();
    } else if (a == "--out") {
      args.out_path = next();
    } else if (a == "--compare") {
      args.compare_path = next();
    } else if (a == "--version") {
      std::printf("%s\n", bf::version_string().c_str());
      std::exit(0);
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      usage();
      throw Error("unknown argument: " + a);
    }
  }
  BF_CHECK_MSG(args.trees >= 1 && args.rows >= 1 && args.reps >= 1 &&
                   args.passes >= 1,
               "--trees/--rows/--reps/--passes must be positive");
  return args;
}

/// One engine's measurement: total throughput plus the distribution of
/// per-prediction latencies (single-row engines sample every call;
/// batched engines sample per pass divided by the pass's row count).
struct EngineResult {
  std::string name;
  double rows_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
  double speedup = 0.0;  ///< vs the pointer single-row baseline
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t i =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  if (i >= sorted.size()) i = sorted.size() - 1;
  return sorted[i];
}

/// Measure `rows_per_pass * reps` predictions through `pass`, which
/// appends one latency sample (ns per prediction) per invocation batch.
template <typename Pass>
EngineResult measure(const std::string& name, std::size_t rows_per_pass,
                     std::size_t reps, Pass&& pass) {
  EngineResult r;
  r.name = name;
  std::vector<double> samples_ns;
  pass(samples_ns);  // warm-up: page in nodes, size scratch buffers
  samples_ns.clear();
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) pass(samples_ns);
  const double total_s = std::chrono::duration<double>(Clock::now() - t0)
                             .count();
  const double total_rows =
      static_cast<double>(rows_per_pass) * static_cast<double>(reps);
  r.rows_per_sec = total_s > 0.0 ? total_rows / total_s : 0.0;
  std::sort(samples_ns.begin(), samples_ns.end());
  r.p50_ns = percentile(samples_ns, 0.50);
  r.p99_ns = percentile(samples_ns, 0.99);
  double sum = 0.0;
  for (const double v : samples_ns) sum += v;
  r.mean_ns = samples_ns.empty()
                  ? 0.0
                  : sum / static_cast<double>(samples_ns.size());
  return r;
}

void check_identical(const std::vector<double>& want,
                     const std::vector<double>& got,
                     const std::string& engine) {
  BF_CHECK_MSG(want.size() == got.size(), engine + ": output size mismatch");
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Exact equality, not a tolerance: the flat engine is a re-layout of
    // the same arithmetic, so any difference is a bug.
    BF_CHECK_MSG(want[i] == got[i],
                 engine + ": prediction differs from pointer baseline at row " +
                     std::to_string(i));
  }
}

/// Pull "rows_per_sec" for `engine` out of a previous report. Returns 0
/// when the engine (or the file) is absent — the comparison is advisory.
double previous_rows_per_sec(const std::string& report,
                             const std::string& engine) {
  const std::string tag = "\"name\":\"" + engine + "\"";
  const auto at = report.find(tag);
  if (at == std::string::npos) return 0.0;
  const std::string key = "\"rows_per_sec\":";
  const auto kat = report.find(key, at);
  if (kat == std::string::npos) return 0.0;
  const std::size_t from = kat + key.size();
  const std::size_t end = report.find_first_not_of("0123456789.eE+-", from);
  return parse_double(report.substr(from, end - from));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);

    // ---- train the paper-config forest on a real profiled sweep ----
    const gpusim::Device device(gpusim::arch_by_name(args.arch));
    const auto sizes = profiling::log2_sizes(args.min_size, args.max_size,
                                             args.sizes, 256);
    const auto workload = profiling::workload_by_name(args.workload);
    // Each pass re-profiles the whole grid under a fresh profiler seed,
    // i.e. fresh run-to-run noise — the multi-run collection a real
    // profiling campaign produces. The concatenated rows grow the forest
    // to its deployed size (deep unpruned trees), which is the regime
    // the inference engines are benchmarked in.
    ml::Dataset ds;
    if (!args.train_csv.empty()) {
      ds = ml::Dataset::from_csv(CsvTable::load(args.train_csv));
    } else {
      for (std::size_t pass = 0; pass < args.passes; ++pass) {
        profiling::SweepOptions so;
        so.profiler.seed = 1234 + 7919 * pass;
        const ml::Dataset part = profiling::sweep(workload, device, sizes, so);
        if (ds.empty()) {
          ds = part;
          continue;
        }
        BF_CHECK_MSG(part.column_names() == ds.column_names(),
                     "sweep passes disagree on the counter schema");
        std::vector<double> row(part.num_cols());
        for (std::size_t r = 0; r < part.num_rows(); ++r) {
          for (std::size_t c = 0; c < part.num_cols(); ++c) {
            row[c] = part.column(c)[r];
          }
          ds.add_row(row);
        }
      }
      if (!args.dump_csv.empty()) ds.to_csv().save(args.dump_csv);
    }
    core::ModelOptions opt;
    opt.forest.n_trees = args.trees;
    opt.forest.importance = false;  // training cost, not inference cost
    const auto model = core::BlackForestModel::fit(ds, opt);
    const ml::RandomForest& pointer = model.forest();
    const auto flat_df =
        ml::FlatForest::freeze(pointer, ml::TreeLayout::kDepthFirst);
    const auto flat_bf =
        ml::FlatForest::freeze(pointer, ml::TreeLayout::kBreadthFirst);

    // ---- probe matrix: training predictor rows cycled to --rows ----
    const ml::Dataset predictors_ds =
        ds.select_columns(model.predictors());
    const std::size_t p = predictors_ds.num_cols();
    const std::size_t src_rows = predictors_ds.num_rows();
    linalg::Matrix probes(args.rows, p);
    for (std::size_t i = 0; i < args.rows; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        probes(i, j) = predictors_ds.column(j)[i % src_rows];
      }
    }
    std::printf(
        "bf_bench: %zu trees, %zu flat nodes (%s sweep: %zu rows, %zu "
        "predictors), %zu probe rows x %zu reps\n",
        pointer.n_trees(), flat_df.node_count(), args.workload.c_str(),
        src_rows, p, args.rows, args.reps);

    // ---- bit-identity gate before any timing ----
    // The pointer walk is training-side code; calling it here is the
    // whole point of a baseline.
    std::vector<double> want(args.rows);
    for (std::size_t i = 0; i < args.rows; ++i) {
      want[i] = pointer.predict_row(probes.row_ptr(i));  // bf-lint: allow(guarded-predict)
    }
    check_identical(want, flat_df.predict(probes), "flat_df");
    check_identical(want, flat_bf.predict(probes), "flat_bf");
    {
      ml::ForestScratch s;
      std::vector<double> got(args.rows);
      for (std::size_t i = 0; i < args.rows; ++i) {
        got[i] = flat_df.predict_row(probes.row_ptr(i), s);  // bf-lint: allow(guarded-predict)
      }
      check_identical(want, got, "flat_df_single");
      for (std::size_t i = 0; i < args.rows; ++i) {
        got[i] = flat_bf.predict_row(probes.row_ptr(i), s);  // bf-lint: allow(guarded-predict)
      }
      check_identical(want, got, "flat_bf_single");
    }
    std::printf("bf_bench: bit-identity check passed (%zu rows, 4 engines)\n",
                args.rows);

    // ---- measurements ----
    std::vector<EngineResult> results;
    volatile double sink = 0.0;  // keep the optimizer honest

    results.push_back(measure(
        "pointer_single", args.rows, args.reps, [&](std::vector<double>& ns) {
          for (std::size_t i = 0; i < args.rows; ++i) {
            const auto t0 = Clock::now();
            sink = pointer.predict_row(probes.row_ptr(i));  // bf-lint: allow(guarded-predict)
            ns.push_back(std::chrono::duration<double, std::nano>(
                             Clock::now() - t0)
                             .count());
          }
        }));
    const double base = results[0].rows_per_sec;

    ml::ForestScratch scratch;
    const auto single_pass = [&](const ml::FlatForest& flat) {
      return [&](std::vector<double>& ns) {
        for (std::size_t i = 0; i < args.rows; ++i) {
          const auto t0 = Clock::now();
          sink = flat.predict_row(probes.row_ptr(i), scratch);  // bf-lint: allow(guarded-predict)
          ns.push_back(
              std::chrono::duration<double, std::nano>(Clock::now() - t0)
                  .count());
        }
      };
    };
    results.push_back(
        measure("flat_df_single", args.rows, args.reps, single_pass(flat_df)));
    results.push_back(
        measure("flat_bf_single", args.rows, args.reps, single_pass(flat_bf)));

    std::vector<double> out_batch(args.rows);
    const auto batch_pass = [&](const ml::FlatForest& flat) {
      return [&](std::vector<double>& ns) {
        const auto t0 = Clock::now();
        flat.predict(probes, out_batch, scratch);
        ns.push_back(std::chrono::duration<double, std::nano>(Clock::now() -
                                                              t0)
                         .count() /
                     static_cast<double>(args.rows));
        sink = out_batch[0];
      };
    };
    results.push_back(
        measure("flat_df_batch", args.rows, args.reps, batch_pass(flat_df)));
    results.push_back(
        measure("flat_bf_batch", args.rows, args.reps, batch_pass(flat_bf)));
    (void)sink;

    double best_flat = 0.0;
    std::string best_name;
    for (auto& r : results) {
      r.speedup = base > 0.0 ? r.rows_per_sec / base : 0.0;
      if (r.name != "pointer_single" && r.rows_per_sec > best_flat) {
        best_flat = r.rows_per_sec;
        best_name = r.name;
      }
      std::printf(
          "  %-16s %12.0f rows/s  p50 %8.0f ns  p99 %8.0f ns  %5.2fx\n",
          r.name.c_str(), r.rows_per_sec, r.p50_ns, r.p99_ns, r.speedup);
    }
    const double best_speedup = base > 0.0 ? best_flat / base : 0.0;
    std::printf("bf_bench: best flat engine %s at %.2fx the pointer baseline\n",
                best_name.c_str(), best_speedup);

    // ---- report ----
    std::ostringstream os;
    os.precision(10);
    os << "{\"bench\":\"predict\",\"schema_version\":1,\"workload\":\""
       << args.workload << "\",\"arch\":\"" << args.arch
       << "\",\"trees\":" << pointer.n_trees()
       << ",\"flat_nodes\":" << flat_df.node_count()
       << ",\"predictors\":" << p << ",\"train_rows\":" << src_rows
       << ",\"probe_rows\":" << args.rows << ",\"reps\":" << args.reps
       << ",\"bit_identical\":true,\"best_engine\":\"" << best_name
       << "\",\"best_speedup\":" << best_speedup << ",\"engines\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      os << (i ? "," : "") << "{\"name\":\"" << r.name
         << "\",\"rows_per_sec\":" << r.rows_per_sec
         << ",\"p50_ns\":" << r.p50_ns << ",\"p99_ns\":" << r.p99_ns
         << ",\"mean_ns\":" << r.mean_ns << ",\"speedup\":" << r.speedup
         << "}";
    }
    os << "]}\n";
    bf::atomic_write_file(args.out_path, os.str());
    std::printf("bf_bench: wrote %s\n", args.out_path.c_str());

    // ---- advisory comparison against a previous report ----
    if (!args.compare_path.empty()) {
      const auto prev = bf::read_file(args.compare_path);
      if (!prev) {
        std::printf("bf_bench: compare: %s not readable, skipping\n",
                    args.compare_path.c_str());
      } else {
        for (const auto& r : results) {
          const double before = previous_rows_per_sec(*prev, r.name);
          if (before <= 0.0) continue;
          const double ratio = r.rows_per_sec / before;
          if (ratio < 0.8) {
            std::printf(
                "bf_bench: WARNING: %s rows/sec regressed %.0f%% vs %s "
                "(%.0f -> %.0f); machines differ, so this is advisory\n",
                r.name.c_str(), 100.0 * (1.0 - ratio),
                args.compare_path.c_str(), before, r.rows_per_sec);
          }
        }
      }
    }

    if (args.min_speedup > 0.0 && best_speedup < args.min_speedup) {
      std::fprintf(stderr,
                   "bf_bench: best flat speedup %.2fx below required %.2fx\n",
                   best_speedup, args.min_speedup);
      return 1;
    }
    return 0;
  } catch (const bf::Error& e) {
    std::fprintf(stderr, "bf_bench: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bf_bench: unexpected error: %s\n", e.what());
    return 1;
  }
}
