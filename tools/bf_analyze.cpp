// bf_analyze — the BlackForest command-line front end.
//
// Runs the five-stage pipeline on a named workload/architecture and
// prints the bottleneck report; optionally predicts unseen problem sizes
// through the problem-scaling path, and caches sweeps in a repository.
//
//   bf_analyze --workload reduce1 --arch gtx580
//   bf_analyze --workload matrixMul --min 32 --max 2048 --runs 24
//              --predict 96 --predict 384 --repo /tmp/bf_runs
//   bf_analyze --workload needle --arch k20m --check
//   bf_analyze --list
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "gpusim/arch.hpp"
#include "guard/guard.hpp"
#include "power/analysis.hpp"
#include "power/predictor.hpp"
#include "profiling/repository.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"
#include "report/ascii.hpp"
#include "report/guard_render.hpp"
#include "report/power_render.hpp"
#include "serve/artifact.hpp"

namespace {

using namespace bf;

void usage() {
  std::printf(
      "usage: bf_analyze [options]\n"
      "  --workload NAME   workload to analyse (default reduce1)\n"
      "  --arch NAME       gtx580 | gtx480 | k20m | k40 (default gtx580)\n"
      "  --min N --max N   problem-size range (defaults per workload)\n"
      "  --runs N          number of profiled runs (default 40)\n"
      "  --predict N       predict an unseen size (repeatable)\n"
      "  --repo DIR        cache sweeps in DIR\n"
      "  --trees N         forest size (default 500)\n"
      "  --replicates K    profiled runs aggregated per size (default 1)\n"
      "  --retries N       attempts per run before it fails (default 3)\n"
      "  --min-success F   fraction of sizes that must collect before\n"
      "                    the sweep aborts (default 0.5)\n"
      "  --faults SPEC     arm fault injection: <point>:<rate>[:<count>]\n"
      "                    comma-list (also via BF_FAULTS in the env)\n"
      "  --fault-seed N    deterministic fault stream seed\n"
      "  --guard-margin F  extrapolation margin of the prediction guard,\n"
      "                    as a fraction of the training span (default 0.1)\n"
      "  --strict-guard    exit non-zero when any prediction grades C\n"
      "  --no-guard        disable model-health supervision (legacy\n"
      "                    unguarded prediction path)\n"
      "  --guard-json PATH write the guard report as JSON\n"
      "  --power           model board power as a second response: ranks\n"
      "                    energy bottlenecks next to time bottlenecks,\n"
      "                    adds guarded power/energy predictions, and\n"
      "                    --export-model embeds the power predictor\n"
      "                    (bundle format v3)\n"
      "  --no-power        disable power modelling (the default)\n"
      "  --power-json PATH write the power predictions as JSON\n"
      "  --check           validate counter invariants instead of\n"
      "                    modelling: sweeps the workload (or, with\n"
      "                    --repo, every stored sweep) and reports rule\n"
      "                    violations; exits non-zero on any\n"
      "  --export-model P  train the problem-scaling predictor and write\n"
      "                    it as a .bfmodel bundle to P (serve it later\n"
      "                    with bf_serve or --from-model)\n"
      "  --probes N        golden canary probes recorded into the bundle\n"
      "                    for hot-reload validation (default 5; 0 omits\n"
      "                    the record)\n"
      "  --from-model P    skip sweeping/training: load the bundle at P\n"
      "                    and answer --predict queries from it\n"
      "  --list            list workloads and architectures\n"
      "  --version         print the build identity and exit\n");
}

struct Args {
  std::string workload = "reduce1";
  std::string arch = "gtx580";
  double min_size = 0;
  double max_size = 0;
  int runs = 40;
  int trees = 500;
  int replicates = 1;
  int retries = 3;
  double min_success = 0.5;
  std::string faults;
  std::uint64_t fault_seed = bf::fault::kDefaultSeed;
  std::vector<double> predict;
  std::string repo;
  double guard_margin = 0.1;
  bool strict_guard = false;
  bool no_guard = false;
  std::string guard_json;
  bool power = false;
  std::string power_json;
  std::string export_model;
  int probes = 5;
  std::string from_model;
  bool list = false;
  bool check = false;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      BF_CHECK_MSG(i + 1 < argc, "missing value for " << a);
      return argv[++i];
    };
    if (a == "--workload") {
      args.workload = next();
    } else if (a == "--arch") {
      args.arch = next();
    } else if (a == "--min") {
      args.min_size = parse_double(next());
    } else if (a == "--max") {
      args.max_size = parse_double(next());
    } else if (a == "--runs") {
      args.runs = static_cast<int>(parse_int(next()));
    } else if (a == "--trees") {
      args.trees = static_cast<int>(parse_int(next()));
    } else if (a == "--replicates") {
      args.replicates = static_cast<int>(parse_int(next()));
    } else if (a == "--retries") {
      args.retries = static_cast<int>(parse_int(next()));
    } else if (a == "--min-success") {
      args.min_success = parse_double(next());
    } else if (a == "--faults") {
      args.faults = next();
    } else if (a == "--fault-seed") {
      args.fault_seed = static_cast<std::uint64_t>(parse_int(next()));
    } else if (a == "--predict") {
      args.predict.push_back(parse_double(next()));
    } else if (a == "--guard-margin") {
      args.guard_margin = parse_double(next());
    } else if (a == "--strict-guard") {
      args.strict_guard = true;
    } else if (a == "--no-guard") {
      args.no_guard = true;
    } else if (a == "--guard-json") {
      args.guard_json = next();
    } else if (a == "--power") {
      args.power = true;
    } else if (a == "--no-power") {
      args.power = false;
    } else if (a == "--power-json") {
      args.power_json = next();
    } else if (a == "--repo") {
      args.repo = next();
    } else if (a == "--export-model") {
      args.export_model = next();
    } else if (a == "--probes") {
      args.probes = static_cast<int>(parse_int(next()));
      BF_CHECK_MSG(args.probes >= 0, "--probes must be >= 0");
    } else if (a == "--from-model") {
      args.from_model = next();
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--check") {
      args.check = true;
    } else if (a == "--version") {
      std::printf("%s\n", bf::version_string().c_str());
      std::exit(0);
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      BF_FAIL("unknown option: " << a);
    }
  }
  return args;
}

/// Sensible default sweep ranges per workload family.
void default_range(const std::string& workload, double& lo, double& hi,
                   std::int64_t& multiple) {
  if (workload.rfind("reduce", 0) == 0 || workload == "vecAdd") {
    lo = 1 << 14;
    hi = 1 << 24;
    multiple = 256;
  } else if (workload == "needle") {
    lo = 64;
    hi = 4096;
    multiple = 64;
  } else {  // matrix-shaped workloads
    lo = 32;
    hi = 2048;
    multiple = 32;
  }
}

/// --check mode: validate counter data against the bf::check invariant
/// table instead of fitting models. Returns the number of violations.
std::size_t run_check_mode(const Args& args, double lo, double hi,
                           std::int64_t multiple) {
  std::printf("checking counter invariants (%zu rules)\n\n",
              check::rule_table().size());

  std::vector<check::Violation> violations;
  if (!args.repo.empty()) {
    // Validate every sweep stored in the repository.
    profiling::RepositoryOptions ropts;
    ropts.validate_on_load = false;  // report instead of throwing
    const profiling::RunRepository repo(args.repo, ropts);
    for (const auto& [workload, arch] : repo.keys()) {
      const gpusim::ArchSpec* spec = nullptr;
      try {
        spec = &gpusim::arch_by_name(arch);
      } catch (const bf::Error&) {
        std::printf("  %s on %s: unknown architecture, skipped\n",
                    workload.c_str(), arch.c_str());
        continue;
      }
      const auto ds = repo.load(workload, arch);
      const auto found = check::validate_dataset(*ds, *spec);
      std::printf("  %s on %s: %zu rows, %zu violation(s)\n",
                  workload.c_str(), arch.c_str(), ds->num_rows(),
                  found.size());
      violations.insert(violations.end(), found.begin(), found.end());
    }
  } else {
    // Sweep the requested workload with validation live at every layer:
    // the engine hook, the profiler, and the final dataset.
    check::install_engine_validator();
    const profiling::Workload workload =
        profiling::workload_by_name(args.workload);
    const gpusim::Device device(gpusim::arch_by_name(args.arch));
    profiling::SweepOptions sopts;
    sopts.profiler.validate = true;
    const ml::Dataset ds = profiling::sweep(
        workload, device,
        profiling::log2_sizes(lo, hi, args.runs, multiple), sopts);
    violations = check::validate_dataset(ds, device.arch());
    std::printf("  %s on %s: %zu rows, %zu violation(s)\n",
                args.workload.c_str(), args.arch.c_str(), ds.num_rows(),
                violations.size());
  }

  if (violations.empty()) {
    std::printf("\nall counter invariants hold\n");
  } else {
    std::printf("\n%s", check::to_string(violations).c_str());
  }
  return violations.size();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    // Arm fault injection early so a malformed spec fails with a clear
    // diagnostic instead of surfacing from deep inside the sweep.
    if (!args.faults.empty()) {
      bf::fault::reseed(args.fault_seed);
      bf::fault::configure(args.faults);
    } else {
      bf::fault::configure_from_env();
    }
    if (args.list) {
      std::printf("workloads:\n");
      for (const auto& w : profiling::all_workloads()) {
        std::printf("  %s\n", w.name.c_str());
      }
      std::printf("architectures:\n");
      for (const auto& a : gpusim::arch_registry()) {
        std::printf("  %-8s %s, %d SMs @ %.2f GHz, %.0f GB/s\n",
                    a.name.c_str(),
                    a.generation == gpusim::Generation::kFermi ? "Fermi"
                                                               : "Kepler",
                    a.sm_count, a.clock_ghz, a.mem_bandwidth_gbs);
      }
      return 0;
    }

    if (!args.from_model.empty()) {
      // Serve predictions straight from a trained bundle: no sweep, no
      // forest training — the train-once / predict-many path.
      const serve::ModelBundle bundle = serve::load_bundle(args.from_model);
      std::printf("model %s (workload %s, arch %s, %zu training rows)\n",
                  bundle.meta.name.c_str(), bundle.meta.workload.c_str(),
                  bundle.meta.arch.c_str(), bundle.meta.trained_rows);
      std::printf("trained by %s\n\n", bundle.meta.provenance.c_str());
      BF_CHECK_MSG(!args.predict.empty(),
                   "--from-model needs at least one --predict size");
      std::printf("problem-scaling predictions:\n");
      if (args.no_guard) {
        for (const double s : args.predict) {
          std::printf("  size %-10g -> %.4f ms\n", s,
                      bundle.predictor.predict_time(s));  // bf-lint: allow(guarded-predict)
        }
        return 0;
      }
      guard::GuardReport report = bundle.predictor.guard_report();
      for (const double s : args.predict) {
        const auto rec = bundle.predictor.predict_guarded(s);
        std::printf("  size %-10g -> %.4f ms  [%.4f, %.4f]  grade %c%s\n", s,
                    rec.value, rec.lo, rec.hi, guard::grade_letter(rec.grade),
                    rec.extrapolated ? "  (extrapolated)" : "");
        report.predictions.push_back(rec);
      }
      if (bundle.power.has_value()) {
        std::printf("\npower predictions (board watts, energy):\n");
        for (const double s : args.predict) {
          const auto pp = bundle.power->predict_guarded(
              s, bundle.predictor.predict_guarded(s));
          std::printf("  size %-10g -> %.2f W  %.5f J  grade %c\n", s,
                      pp.power_w, pp.energy_j,
                      guard::grade_letter(pp.energy_grade));
        }
      }
      std::printf("\n%s", report::guard_text(report).c_str());
      if (!args.guard_json.empty()) {
        report::export_guard_json(args.guard_json, report);
        std::printf("guard report written to %s\n", args.guard_json.c_str());
      }
      if (args.strict_guard && report.count(guard::Grade::kC) > 0) {
        std::fprintf(stderr,
                     "bf_analyze: --strict-guard: %zu prediction(s) graded C\n",
                     report.count(guard::Grade::kC));
        return 2;
      }
      return 0;
    }

    // The workload's size-granularity constraint applies regardless of
    // whether the range itself was overridden on the command line.
    double lo = 0;
    double hi = 0;
    std::int64_t multiple = 1;
    default_range(args.workload, lo, hi, multiple);
    if (args.min_size > 0) lo = args.min_size;
    if (args.max_size > 0) hi = args.max_size;

    if (args.check) {
      return run_check_mode(args, lo, hi, multiple) == 0 ? 0 : 1;
    }

    core::PipelineConfig config;
    config.workload = profiling::workload_by_name(args.workload);
    config.arch = gpusim::arch_by_name(args.arch);
    config.sizes = profiling::log2_sizes(lo, hi, args.runs, multiple);
    config.model.forest.n_trees = static_cast<std::size_t>(args.trees);
    config.sweep.replicates = args.replicates;
    config.sweep.max_attempts = args.retries;
    config.sweep.min_success_fraction = args.min_success;
    if (!args.repo.empty()) config.repository_root = args.repo;

    std::printf("analysing %s on %s (%zu runs, sizes %g..%g)\n\n",
                args.workload.c_str(), args.arch.c_str(),
                config.sizes.size(), lo, hi);
    auto outcome = core::run_analysis(config);

    if (!outcome.warnings.empty()) {
      std::printf("%s\n",
                  report::warn_list("degradation warnings",
                                    outcome.warnings)
                      .c_str());
    }
    if (outcome.sweep_report.degraded()) {
      std::printf("%s%s\n", outcome.sweep_report.to_text().c_str(),
                  bf::fault::summary().c_str());
    }

    std::vector<std::pair<std::string, double>> bars;
    const auto imp = outcome.model.importance();
    for (std::size_t i = 0; i < imp.size() && i < 10; ++i) {
      bars.emplace_back(imp[i].name, imp[i].pct_inc_mse);
    }
    std::printf("%s\n",
                report::bar_chart("variable importance (%IncMSE)", bars)
                    .c_str());
    std::printf("%s\n", core::to_text(outcome.report).c_str());

    if (args.power) {
      // Second response: rank the counters driving board power so energy
      // bottlenecks read next to the time bottlenecks above.
      bf::power::EnergyAnalysisOptions eopts;
      eopts.model.forest.n_trees = static_cast<std::size_t>(args.trees);
      outcome.energy_report = bf::power::analyze_energy_bottlenecks(
          outcome.data, args.workload, args.arch, eopts);
      outcome.power_enabled = true;
      std::printf("energy bottlenecks (response %s):\n%s\n",
                  profiling::kPowerColumn,
                  core::to_text(outcome.energy_report).c_str());
    }

    if (!args.predict.empty() || !args.export_model.empty()) {
      core::ProblemScalingOptions pso;
      pso.model.forest.n_trees = static_cast<std::size_t>(args.trees);
      pso.guard.enabled = !args.no_guard;
      pso.guard.margin = args.guard_margin;
      pso.arch = config.arch;
      const auto predictor =
          core::ProblemScalingPredictor::build(outcome.data, pso);
      std::optional<bf::power::PowerPredictor> ppred;
      if (args.power) {
        bf::power::PowerPredictorOptions popts;
        popts.scaling.model.forest.n_trees =
            static_cast<std::size_t>(args.trees);
        popts.scaling.guard.enabled = !args.no_guard;
        popts.scaling.guard.margin = args.guard_margin;
        popts.scaling.arch = config.arch;
        ppred = bf::power::PowerPredictor::build(outcome.data, popts);
      }
      if (!args.export_model.empty()) {
        serve::export_model(args.export_model, args.workload, args.workload,
                            args.arch, outcome.data.num_rows(), predictor,
                            static_cast<std::size_t>(args.probes),
                            ppred.has_value() ? &*ppred : nullptr);
        std::printf("model bundle written to %s%s\n",
                    args.export_model.c_str(),
                    ppred.has_value() ? " (with power record)" : "");
        if (args.predict.empty()) return 0;
      }
      std::printf("problem-scaling predictions:\n");
      if (args.no_guard) {
        for (const double s : args.predict) {
          std::printf("  size %-10g -> %.4f ms\n", s,
                      predictor.predict_time(s));  // bf-lint: allow(guarded-predict)
        }
        if (ppred.has_value()) {
          std::printf("power predictions (board watts):\n");
          for (const double s : args.predict) {
            std::printf("  size %-10g -> %.2f W\n", s,
                        ppred->predict_power(s));  // bf-lint: allow(guarded-predict)
          }
        }
        return 0;
      }

      guard::GuardReport report = predictor.guard_report();
      core::PredictionSeries pseries;
      for (const double s : args.predict) {
        const auto rec = predictor.predict_guarded(s);
        std::printf("  size %-10g -> %.4f ms  [%.4f, %.4f]  grade %c%s\n", s,
                    rec.value, rec.lo, rec.hi, guard::grade_letter(rec.grade),
                    rec.extrapolated ? "  (extrapolated)" : "");
        report.predictions.push_back(rec);
        pseries.sizes.push_back(s);
        pseries.predicted_ms.push_back(rec.value);
      }
      if (ppred.has_value()) {
        bf::power::annotate_series(pseries, *ppred);
        std::printf("\npower predictions (board watts, energy):\n%s",
                    report::power_text(pseries).c_str());
        if (!args.power_json.empty()) {
          report::export_power_json(args.power_json, pseries);
          std::printf("power report written to %s\n",
                      args.power_json.c_str());
        }
      }
      std::printf("\n%s", report::guard_text(report).c_str());
      outcome.guard = report;
      if (!args.guard_json.empty()) {
        report::export_guard_json(args.guard_json, report);
        std::printf("guard report written to %s\n", args.guard_json.c_str());
      }
      if (args.strict_guard && report.count(guard::Grade::kC) > 0) {
        std::fprintf(stderr,
                     "bf_analyze: --strict-guard: %zu prediction(s) graded C\n",
                     report.count(guard::Grade::kC));
        return 2;
      }
    }
    return 0;
  } catch (const bf::Error& e) {
    std::fprintf(stderr, "bf_analyze: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Nothing below main should leak a non-bf exception, but a CLI tool
    // must still exit with a diagnostic rather than std::terminate.
    std::fprintf(stderr, "bf_analyze: unexpected error: %s\n", e.what());
    return 1;
  }
}
