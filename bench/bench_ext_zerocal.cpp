// Extension A12: zero-calibration hardware scaling.
//
// The paper's hardware-scaling recipe needs calibration runs on the
// target GPU. With four architectures in the registry we can go further:
// train the forest on sweeps from THREE GPUs (machine characteristics
// injected) and predict the fourth — k40 — from its Table 2 numbers
// alone, never running anything on it. This is the logical endpoint of
// §6.2's "inject machine characteristics" idea.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "ml/metrics.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A12",
                      "zero-calibration prediction of an unseen GPU (MM)");

  const auto workload = profiling::matmul_workload();
  const auto sizes = profiling::log2_sizes(32, 1024, 18, 16);
  profiling::SweepOptions opt;
  opt.machine_characteristics = true;

  // Training GPUs: two Fermi + one Kepler. Target: the K40 (Kepler).
  ml::Dataset train;
  int seed = 400;
  for (const char* name : {"gtx580", "gtx480", "k20m"}) {
    const gpusim::Device device(gpusim::arch_by_name(name));
    opt.profiler.seed = seed++;
    auto sweep = profiling::sweep(workload, device, sizes, opt);
    // Restrict to counters available on every trained generation.
    sweep = sweep.drop_columns({"l1_shared_bank_conflict",
                                "shared_load_replay",
                                "shared_store_replay"});
    train = train.num_rows() == 0 ? sweep
                                  : ml::Dataset::concat(train, sweep);
  }

  const gpusim::Device target(gpusim::arch_by_name("k40"));
  opt.profiler.seed = seed;
  auto test = profiling::sweep(workload, target, sizes, opt);
  test = test.drop_columns({"shared_load_replay", "shared_store_replay"});

  core::ModelOptions mo;
  mo.exclude = bench::paper_excludes();
  mo.forest.n_trees = 400;
  mo.forest.min_node_size = 2;
  mo.test_fraction = 0.0;
  const auto model = core::BlackForestModel::fit(train, mo);

  const auto predicted = model.predict(test);
  const auto& measured = test.column(profiling::kTimeColumn);
  bench::print_prediction_series("K40 predictions with zero K40 runs",
                                 test.column(profiling::kSizeColumn),
                                 measured, predicted);
  std::printf("MSE %.4g, explained variance %.1f%%, median |err| %.1f%%\n",
              ml::mse(measured, predicted),
              100.0 * ml::explained_variance(measured, predicted),
              ml::median_abs_pct_error(measured, predicted));
  std::printf("\ncaveat: counters for the test rows are still measured on "
              "the K40 — the machine\ncharacteristics only have to carry "
              "the *time* mapping. Full zero-knowledge prediction\nwould "
              "also need counter models over (size, machine), which "
              "CounterModels supports\n(multi-input mode) but which the "
              "paper never attempts.\n");
  return 0;
}
