// Extension A11: atomic-contention bottlenecks.
//
// Histogramming with shared-memory atomics adds a bottleneck class the
// paper's three case studies do not cover: serialisation that depends on
// the *data distribution*, not the access pattern. We sweep the skew of
// the input distribution and show (1) the mechanistic counters, and
// (2) that BlackForest's importance analysis pins the time variation on
// the replay/conflict counters when skew varies at fixed size.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "ml/dataset.hpp"
#include "profiling/profiler.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A11",
                      "atomic contention in shared-memory histogramming");

  const gpusim::Device device(gpusim::gtx580());
  profiling::Profiler profiler;

  std::printf("skew sweep at n = 2^22, 256 bins:\n");
  std::vector<std::vector<std::string>> rows;
  for (const double skew : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    const auto r = profiler.profile(profiling::histogram_workload(skew),
                                    device, 1 << 22);
    rows.push_back({report::cell(skew, 2),
                    report::cell(r.counters.at("l1_shared_bank_conflict"), 0),
                    report::cell(r.counters.at("inst_replay_overhead"), 2),
                    report::cell(r.counters.at("ipc"), 2),
                    report::cell(r.time_ms, 3)});
  }
  std::printf("%s\n",
              report::table({"skew", "conflict replays",
                             "inst_replay_overhead", "ipc", "time_ms"},
                            rows)
                  .c_str());

  // Now let BlackForest find it: fixed size, skew as the problem
  // characteristic. The replay counters must dominate importance.
  ml::Dataset ds;
  bool ready = false;
  std::vector<std::string> names;
  for (int s = 0; s <= 19; ++s) {
    const double skew = s / 20.0;
    auto r = profiler.profile(profiling::histogram_workload(skew), device,
                              1 << 21);
    if (!ready) {
      ds.add_column("size", {});
      for (const auto& [name, _] : r.counters) {
        names.push_back(name);
        ds.add_column(name, {});
      }
      ds.add_column("time_ms", {});
      ready = true;
    }
    std::vector<double> row{skew};  // skew plays the "size" role
    for (const auto& name : names) row.push_back(r.counters.at(name));
    row.push_back(r.time_ms);
    ds.add_row(row);
  }

  core::ModelOptions mo;
  mo.exclude = bench::paper_excludes();
  mo.forest.n_trees = 400;
  mo.forest.min_node_size = 2;
  const auto model = core::BlackForestModel::fit(ds, mo);
  bench::print_importance(model, 8,
                          "importance with skew as the problem "
                          "characteristic");
  std::printf("expected: the shared-replay/conflict counters and "
              "issue-pressure metrics carry the\nsignal, since the memory "
              "traffic is identical across the sweep.\n");
  return 0;
}
