// Ablation A1: prediction error vs training-set size.
//
// The paper: "we have found that 100 samples are more than sufficient for
// 1-D problems, but finding a less empirical way to determine the ideal
// size is still work in progress" (§4.2) and "Additional studies need to
// be made to determine the minimal training set" (§7). This bench supplies
// that study for the reduce2 workload.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "ml/metrics.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Ablation A1",
                      "prediction error vs training-set size (reduce2, "
                      "GTX580)");

  const gpusim::Device device(gpusim::gtx580());
  const auto workload = profiling::reduce_workload(2);

  // A fixed, dense held-out evaluation set.
  const auto eval_sizes = profiling::log2_sizes(1 << 14, 1 << 23, 30, 512);
  profiling::SweepOptions eval_opt;
  eval_opt.profiler.seed = 999;
  const auto eval = profiling::sweep(workload, device, eval_sizes, eval_opt);

  std::vector<std::vector<std::string>> rows;
  for (const int n_train : {8, 15, 25, 50, 100, 150}) {
    profiling::SweepOptions train_opt;
    train_opt.profiler.seed = 7;
    const auto train_sizes =
        profiling::log2_sizes(1 << 14, 1 << 24, n_train, 256);
    const auto train =
        profiling::sweep(workload, device, train_sizes, train_opt);

    core::ModelOptions opt;
    opt.exclude = bench::paper_excludes();
    opt.forest.n_trees = 300;
    opt.forest.min_node_size = 2;
    opt.test_fraction = 0.0;  // the separate eval set is the test
    const auto model = core::BlackForestModel::fit(train, opt);

    const auto pred = model.predict(eval);
    const auto& truth = eval.column(profiling::kTimeColumn);
    rows.push_back({std::to_string(train.num_rows()),
                    report::cell(ml::mse(truth, pred), 4),
                    report::cell(
                        100.0 * ml::explained_variance(truth, pred), 1),
                    report::cell(ml::median_abs_pct_error(truth, pred), 1)});
  }
  std::printf("%s\n", report::table({"train runs", "eval MSE",
                                     "expl var %", "median |err| %"},
                                    rows)
                          .c_str());
  std::printf("takeaway: accuracy saturates well below 100 runs on this "
              "1-D problem, supporting the paper's claim.\n");
  return 0;
}
