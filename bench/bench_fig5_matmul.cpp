// Fig. 5 reproduction: characterisation and prediction of tiled matrix
// multiply on the GTX580 (paper §6.1.1).
//  (a) variable importance — global-store throughput & occupancy lead;
//  (b) measured vs predicted times on the held-out 20% (paper: average
//      MSE 3.2, 98% explained variance);
//  (c) per-counter GLM models with residual deviance (paper: all low
//      except inst_replay_overhead).
#include <cstdio>

#include "bench_util.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Figure 5",
                      "characterisation and prediction of MM (GTX580)");

  const gpusim::Device device(gpusim::gtx580());
  const auto workload = profiling::matmul_workload();
  // 24 runs between 2^5 and 2^11, as in the paper.
  const auto sizes = profiling::log2_sizes(32, 2048, 24, 16);
  const auto sweep = profiling::sweep(workload, device, sizes);
  std::printf("collected %zu runs over n in [32, 2048]\n\n",
              sweep.num_rows());

  core::ProblemScalingOptions opt;
  opt.model.exclude = bench::paper_excludes();
  opt.model.forest.n_trees = 500;
  const auto predictor = core::ProblemScalingPredictor::build(sweep, opt);

  bench::print_importance(predictor.full_model(), 10,
                          "(a) variable importance");

  // (b): predict the held-out test rows (unseen by the forest).
  const auto& test = predictor.full_model().test_data();
  std::vector<double> test_sizes = test.column(profiling::kSizeColumn);
  std::vector<double> measured = test.column(profiling::kTimeColumn);
  const auto series = predictor.validate(test_sizes, measured);
  bench::print_prediction_series("(b) execution time prediction",
                                 series.sizes, series.measured_ms,
                                 series.predicted_ms);
  std::printf("average MSE %.4g, explained variance %.1f%% "
              "(paper: MSE 3.2, 98%%)\n\n",
              series.mse, 100.0 * series.explained_variance);

  // (c): counter models.
  std::printf("(c) models of the retained counters vs matrix size:\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& info : predictor.counter_models().info()) {
    rows.push_back({info.counter,
                    info.chosen == core::CounterModelKind::kGlm ? "glm"
                                                                : "mars",
                    report::cell(info.r2, 4),
                    report::cell(info.residual_deviance, 3)});
  }
  std::printf("%s\n", report::table({"counter", "model", "R^2",
                                     "residual deviance"},
                                    rows)
                          .c_str());
  std::printf("reduced forest keeps %.1f%% OOB variance explained "
              "(full: %.1f%%)\n",
              predictor.reduced_model().pct_var_explained(),
              predictor.full_model().pct_var_explained());
  return 0;
}
