// Fig. 2 reproduction: bottleneck analysis of reduce1 (strided shared-
// memory addressing -> bank conflicts).
#include "reduce_figure.hpp"

int main() {
  bf::bench::run_reduce_figure(
      "Figure 2", 1,
      {"shared_replay_overhead", "inst_replay_overhead",
       "l2_read_throughput"});
  return 0;
}
