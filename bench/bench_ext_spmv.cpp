// Extension A13: irregular workloads (CSR SpMV).
//
// The paper's intro motivates performance tools with applications whose
// behaviour is hard to reason about by hand; sparse kernels are the
// canonical case. This bench sweeps the two irregularity dials of the
// synthetic CSR pattern and shows BlackForest separating the two
// bottlenecks they create:
//   row skew      -> divergence / idle lanes (warp_execution_efficiency)
//   low locality  -> uncoalesced gathers (transactions per request)
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "ml/dataset.hpp"
#include "profiling/profiler.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A13",
                      "irregular CSR SpMV: skew and locality dials");

  const gpusim::Device device(gpusim::gtx580());
  profiling::Profiler profiler;
  const int rows = 1 << 17;

  std::printf("mechanistic sweep (rows = 2^17, avg 16 nnz/row):\n");
  std::vector<std::vector<std::string>> table_rows;
  for (const auto& [skew, locality] :
       std::vector<std::pair<double, double>>{
           {0.0, 1.0}, {0.0, 0.5}, {0.0, 0.0}, {0.5, 0.5}, {0.8, 0.5}}) {
    const auto r = profiler.profile(
        profiling::spmv_workload(16, skew, locality), device, rows);
    table_rows.push_back(
        {report::cell(skew, 1), report::cell(locality, 1),
         report::cell(r.counters.at("warp_execution_efficiency"), 3),
         report::cell(r.counters.at("gld_efficiency"), 3),
         report::cell(r.counters.at("divergent_branch"), 0),
         report::cell(r.time_ms, 3)});
  }
  std::printf("%s\n",
              report::table({"skew", "locality", "warp_eff", "gld_eff",
                             "divergent", "time_ms"},
                            table_rows)
                  .c_str());

  // BlackForest on a 2-D problem sweep: (skew, locality) are the problem
  // characteristics at fixed size — which counters explain the time?
  ml::Dataset ds;
  bool ready = false;
  std::vector<std::string> names;
  for (int s = 0; s <= 4; ++s) {
    for (int l = 0; l <= 4; ++l) {
      const double skew = s / 4.0;
      const double locality = l / 4.0;
      const auto r = profiler.profile(
          profiling::spmv_workload(16, skew, locality), device, rows);
      if (!ready) {
        ds.add_column("size", {});
        for (const auto& [name, _] : r.counters) {
          names.push_back(name);
          ds.add_column(name, {});
        }
        ds.add_column("time_ms", {});
        ready = true;
      }
      std::vector<double> row{skew * 4 + locality};  // run index as "size"
      for (const auto& name : names) row.push_back(r.counters.at(name));
      row.push_back(r.time_ms);
      ds.add_row(row);
    }
  }
  core::ModelOptions mo;
  mo.exclude = bench::paper_excludes();
  mo.exclude.push_back("size");  // the run index carries no meaning
  mo.forest.n_trees = 400;
  mo.forest.min_node_size = 2;
  const auto model = core::BlackForestModel::fit(ds, mo);
  bench::print_importance(model, 8,
                          "importance over the (skew, locality) grid");
  std::printf("expected: divergence/efficiency counters and gather-"
              "transaction counters share the\ntop — the two independent "
              "irregularity mechanisms.\n");
  return 0;
}
