// Fig. 6 reproduction: characterisation and prediction of Needleman-
// Wunsch on the GTX580 (paper §6.1.2).
//  (a) variable importance — achieved_occupancy and size lead, followed
//      by a bunch of near-equal memory predictors;
//  (b) predictions for held-out sequence lengths (paper: RF MSE ~0,
//      99% explained variance);
//  (c) MARS counter models (paper: average R^2 0.99 via earth).
#include <cstdio>

#include "bench_util.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Figure 6",
                      "characterisation and prediction of NW (GTX580)");

  const gpusim::Device device(gpusim::gtx580());
  const auto workload = profiling::nw_workload();
  // The paper sweeps 64..8192 with a pitch of 64 (129 trials).
  const auto sizes = profiling::linear_sizes(64, 8192, 64);
  const auto sweep = profiling::sweep(workload, device, sizes);
  std::printf("collected %zu runs over len in [64, 8192] step 64\n\n",
              sweep.num_rows());

  core::ProblemScalingOptions opt;
  opt.model.exclude = bench::paper_excludes();
  opt.model.forest.n_trees = 500;
  opt.counter_models.kind = core::CounterModelKind::kMars;  // earth, as in
                                                            // the paper
  const auto predictor = core::ProblemScalingPredictor::build(sweep, opt);

  bench::print_importance(predictor.full_model(), 12,
                          "(a) variable importance");

  const auto& test = predictor.full_model().test_data();
  const auto series = predictor.validate(
      test.column(profiling::kSizeColumn),
      test.column(profiling::kTimeColumn));
  bench::print_prediction_series("(b) execution time prediction",
                                 series.sizes, series.measured_ms,
                                 series.predicted_ms);
  std::printf("average MSE %.4g, explained variance %.1f%% "
              "(paper: MSE ~0, 99%%)\n\n",
              series.mse, 100.0 * series.explained_variance);

  std::printf("(c) MARS models of the retained counters vs sequence "
              "length:\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& info : predictor.counter_models().info()) {
    rows.push_back({info.counter,
                    info.chosen == core::CounterModelKind::kGlm ? "glm"
                                                                : "mars",
                    report::cell(info.r2, 4)});
  }
  std::printf("%s", report::table({"counter", "model", "R^2"}, rows).c_str());
  std::printf("average R^2 = %.4f (paper: 0.99)\n",
              predictor.counter_models().average_r2());
  return 0;
}
