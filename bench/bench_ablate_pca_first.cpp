// Ablation A4: PCA-first modelling (paper §7 future work): "We plan to
// experiment with first applying PCA onto the data to both remove
// correlated variables and reduce dimensionality … leading to easy
// interpretation of random forest outcome."
//
// This bench implements that variant — train the forest on principal-
// component scores instead of raw counters — and compares accuracy and
// dimensionality against the baseline pipeline.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "ml/metrics.hpp"
#include "ml/pca.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Ablation A4",
                      "PCA-first forest vs raw-counter forest (reduce1)");

  const gpusim::Device device(gpusim::gtx580());
  const auto sweep = profiling::sweep(
      profiling::reduce_workload(1), device,
      profiling::log2_sizes(1 << 14, 1 << 24, 60, 256));

  Rng rng(4242);
  const auto split = ml::train_test_split(sweep, 0.2, rng);

  // Baseline: raw counters.
  core::ModelOptions opt;
  opt.exclude = bench::paper_excludes();
  opt.forest.n_trees = 400;
  opt.test_fraction = 0.0;
  const auto raw_model = core::BlackForestModel::fit(split.train, opt);
  const auto raw_pred = raw_model.predict(split.test);
  const auto& y_test = split.test.column(profiling::kTimeColumn);

  // PCA-first: project counters (not size/time) onto the leading PCs,
  // train the forest on scores + size.
  ml::Dataset counters_train =
      split.train.drop_columns({profiling::kTimeColumn});
  counters_train = counters_train.drop_columns(bench::paper_excludes());
  counters_train.drop_constant_columns();
  const auto var_names = counters_train.column_names();

  ml::Pca pca;
  ml::PcaParams pp;
  pp.variance_target = 0.99;
  pp.max_components = 8;
  pca.fit(counters_train.to_matrix(var_names), var_names, pp);
  const std::size_t k = pca.num_retained();

  const auto make_score_ds = [&](const ml::Dataset& part) {
    ml::Dataset common = part.select_columns(var_names);
    const auto scores = pca.transform(common.to_matrix(var_names));
    ml::Dataset out;
    for (std::size_t c = 0; c < k; ++c) {
      out.add_column("PC" + std::to_string(c + 1), scores.column_vec(c));
    }
    out.add_column(profiling::kTimeColumn,
                   part.column(profiling::kTimeColumn));
    return out;
  };
  const auto pca_model =
      core::BlackForestModel::fit(make_score_ds(split.train), opt);
  const auto pca_pred = pca_model.predict(make_score_ds(split.test));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"raw counters",
                  std::to_string(raw_model.predictors().size()),
                  report::cell(ml::mse(y_test, raw_pred), 4),
                  report::cell(
                      100.0 * ml::explained_variance(y_test, raw_pred), 1)});
  rows.push_back({"PCA-first (" + std::to_string(k) + " PCs)",
                  std::to_string(k),
                  report::cell(ml::mse(y_test, pca_pred), 4),
                  report::cell(
                      100.0 * ml::explained_variance(y_test, pca_pred), 1)});
  std::printf("%s\n", report::table({"pipeline", "predictors", "test MSE",
                                     "expl var %"},
                                    rows)
                          .c_str());

  std::printf("PC importance in the PCA-first forest:\n");
  for (const auto& imp : pca_model.importance()) {
    std::printf("  %-6s %%IncMSE %.2f\n", imp.name.c_str(),
                imp.pct_inc_mse);
  }
  std::printf("\ntakeaway: PCA-first collapses %zu correlated counters "
              "into %zu orthogonal predictors with comparable accuracy — "
              "the interpretability gain the paper anticipated.\n",
              raw_model.predictors().size(), k);
  return 0;
}
