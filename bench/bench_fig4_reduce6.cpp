// Fig. 4 reproduction: reduce6 (fully optimised, multiple elements per
// thread); memory counters remain the most influential, confirming the
// bandwidth-bound character of reduction.
#include "reduce_figure.hpp"

int main() {
  bf::bench::run_reduce_figure(
      "Figure 4", 6, {"gst_request", "shared_store", "shared_load"});
  return 0;
}
