// Ablation A3: the response model itself — random forest vs GLM vs MARS
// predicting execution time from the counters.
//
// The paper selects random forest "because it usually outperforms the
// more traditional classification and regression algorithms …
// especially for scarce training data" (§1). This bench quantifies that
// choice on the MM and NW sweeps.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "ml/linear_model.hpp"
#include "ml/mars.hpp"
#include "ml/metrics.hpp"
#include "profiling/workloads.hpp"

namespace {

using namespace bf;

void compare_on(const std::string& label, const ml::Dataset& sweep) {
  Rng rng(42);
  const auto split = ml::train_test_split(sweep, 0.2, rng);

  std::vector<std::string> predictors;
  for (const auto& name : split.train.column_names()) {
    if (name == profiling::kTimeColumn) continue;
    bool excluded = false;
    for (const auto& e : bench::paper_excludes()) {
      if (e == name) excluded = true;
    }
    if (!excluded) predictors.push_back(name);
  }
  const auto x_train = split.train.to_matrix(predictors);
  const auto x_test = split.test.to_matrix(predictors);
  const auto& y_train = split.train.column(profiling::kTimeColumn);
  const auto& y_test = split.test.column(profiling::kTimeColumn);

  std::vector<std::vector<std::string>> rows;
  const auto score = [&](const std::string& name,
                         const std::vector<double>& pred) {
    rows.push_back({name, report::cell(ml::mse(y_test, pred), 4),
                    report::cell(
                        100.0 * ml::explained_variance(y_test, pred), 1),
                    report::cell(ml::median_abs_pct_error(y_test, pred),
                                 1)});
  };

  ml::RandomForest rf;
  ml::ForestParams fp;
  fp.n_trees = 500;
  fp.min_node_size = 2;
  fp.importance = false;
  rf.fit(x_train, y_train, predictors, fp);
  score("random forest", rf.predict(x_test));

  ml::Glm glm;
  ml::GlmParams gp;
  gp.degree = 1;  // p is large; higher degrees explode the basis
  gp.log_terms = false;
  glm.fit(x_train, y_train, gp);
  score("GLM (linear)", glm.predict(x_test));

  ml::Mars mars;
  ml::MarsParams mp;
  mp.max_terms = 15;
  mars.fit(x_train, y_train, mp);
  score("MARS", mars.predict(x_test));

  std::printf("%s (train %zu rows, test %zu rows, %zu predictors):\n%s\n",
              label.c_str(), split.train.num_rows(), split.test.num_rows(),
              predictors.size(),
              report::table({"model", "test MSE", "expl var %",
                             "median |err| %"},
                            rows)
                  .c_str());
}

}  // namespace

int main() {
  bench::print_header("Ablation A3",
                      "response model: random forest vs GLM vs MARS");

  const gpusim::Device device(gpusim::gtx580());
  compare_on("matrixMul",
             profiling::sweep(profiling::matmul_workload(), device,
                              profiling::log2_sizes(32, 2048, 24, 16)));
  compare_on("needle",
             profiling::sweep(profiling::nw_workload(), device,
                              profiling::linear_sizes(64, 4096, 64)));
  return 0;
}
