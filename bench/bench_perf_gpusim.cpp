// P2: google-benchmark microbenchmarks of the GPU simulator — the cost
// of one profiled run per workload and the hot primitives (coalescer,
// bank-conflict detection, cache).
#include <benchmark/benchmark.h>

#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/sharedmem.hpp"
#include "kernels/kernel_base.hpp"
#include "kernels/matmul.hpp"
#include "kernels/nw.hpp"
#include "kernels/reduce.hpp"

namespace {

using namespace bf;
using namespace bf::gpusim;

void BM_SimReduce(benchmark::State& state) {
  const Device device(gtx580());
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::simulate_reduction(device, 2, n).time_ms);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimReduce)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 24)
    ->Unit(benchmark::kMillisecond);

void BM_SimMatMul(benchmark::State& state) {
  const Device device(gtx580());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::simulate_matmul(device, n).time_ms);
  }
}
BENCHMARK(BM_SimMatMul)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SimNw(benchmark::State& state) {
  const Device device(gtx580());
  const int len = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::simulate_nw(device, len).time_ms);
  }
}
BENCHMARK(BM_SimNw)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_Coalescer(benchmark::State& state) {
  WarpInstr in;
  in.op = Op::kLdGlobal;
  in.addr = kernels::lane_addrs([&](int lane) {
    return static_cast<std::uint32_t>(lane) *
           static_cast<std::uint32_t>(state.range(0));
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalesced_transaction_count(in, 128));
  }
}
BENCHMARK(BM_Coalescer)->Arg(4)->Arg(128)->Arg(4096);

void BM_BankConflictCheck(benchmark::State& state) {
  const ArchSpec arch = gtx580();
  WarpInstr in;
  in.op = Op::kLdShared;
  in.addr = kernels::lane_addrs([&](int lane) {
    return static_cast<std::uint32_t>(lane) *
           static_cast<std::uint32_t>(state.range(0));
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared_access_passes(in, arch));
  }
}
BENCHMARK(BM_BankConflictCheck)->Arg(4)->Arg(128);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(48 * 1024, 128, 8);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false).hit);
    addr += 128;
    if (addr > (1u << 22)) addr = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

}  // namespace

BENCHMARK_MAIN();
