// Extension A9 (paper §7): confidence intervals on partial-dependence
// plots and predictions.
//
// "Integrating confidence intervals into the partial dependence plots
// would help interpretation and confidence in the outcome." We add an
// empirical 80% band from the per-tree prediction distribution and show
// (1) the banded partial-dependence plot for reduce1's top counter and
// (2) how the band widens exactly where problem-scaling predictions are
// risky (range edges).
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"
#include "report/export.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A9",
                      "prediction/partial-dependence intervals (reduce1)");

  const gpusim::Device device(gpusim::gtx580());
  const auto sweep = profiling::sweep(
      profiling::reduce_workload(1), device,
      profiling::log2_sizes(1 << 14, 1 << 23, 50, 256));

  core::ModelOptions mo;
  mo.exclude = bench::paper_excludes();
  mo.forest.n_trees = 400;
  const auto model = core::BlackForestModel::fit(sweep, mo);

  const auto top = model.top_variables(1);
  const auto curve =
      model.forest().partial_dependence_interval(top[0], 18, 0.2);

  report::Series mean_s{ "mean", {}, {} };
  report::Series lo_s{ "p10", {}, {} };
  report::Series hi_s{ "p90", {}, {} };
  for (const auto& p : curve) {
    mean_s.x.push_back(p.x);
    mean_s.y.push_back(p.y.mean);
    lo_s.x.push_back(p.x);
    lo_s.y.push_back(p.y.lo);
    hi_s.x.push_back(p.x);
    hi_s.y.push_back(p.y.hi);
  }
  std::printf("%s\n",
              report::xy_plot("partial dependence of time on " + top[0] +
                                  " with 80% band",
                              {mean_s, lo_s, hi_s})
                  .c_str());
  report::export_series_csv("bench_ext_intervals_pd.csv",
                            {mean_s, lo_s, hi_s});
  std::printf("(exported bench_ext_intervals_pd.csv)\n\n");

  // Interval width across the prediction range: widest at the edges.
  std::printf("prediction intervals across the size range:\n");
  std::printf("  %-10s %-12s %-24s %s\n", "size", "mean(ms)",
              "80%-interval(ms)", "rel.width");
  const auto& train = model.train_data();
  const auto predictors = model.predictors();
  for (std::size_t r = 0; r < train.num_rows();
       r += std::max<std::size_t>(1, train.num_rows() / 8)) {
    std::vector<double> row;
    for (const auto& p : predictors) row.push_back(train.at(r, p));
    const auto iv = model.forest().predict_interval(row.data(), 0.2);
    std::printf("  %-10.0f %-12.4f [%9.4f, %9.4f]    %.1f%%\n",
                train.at(r, profiling::kSizeColumn), iv.mean, iv.lo, iv.hi,
                100.0 * (iv.hi - iv.lo) / iv.mean);
  }
  return 0;
}
