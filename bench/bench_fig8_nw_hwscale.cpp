// Fig. 8 reproduction: NW hardware scaling GTX580 -> K20m (paper §6.2).
//  (a) GTX580 variable importance: caching counters
//      (l2_read_transactions, l1_global_load_miss) influential;
//  (b) K20m variable importance: l1_global_load_miss unimportant (zero —
//      Kepler serves global loads from L2), throughput counters dominate;
//  (c) predictions with the mixed-importance workaround: usable, worst
//      for small sequence lengths, improving with size.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "ml/metrics.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Figure 8",
                      "NW hardware scaling GTX580 -> K20m");

  const auto workload = profiling::nw_workload();
  const auto sizes = profiling::linear_sizes(64, 8192, 64);
  profiling::SweepOptions sweep_opt;
  sweep_opt.machine_characteristics = true;

  const gpusim::Device fermi(gpusim::gtx580());
  sweep_opt.profiler.seed = 11;
  const auto source = profiling::sweep(workload, fermi, sizes, sweep_opt);
  const gpusim::Device kepler(gpusim::kepler_k20m());
  sweep_opt.profiler.seed = 22;
  const auto target = profiling::sweep(workload, kepler, sizes, sweep_opt);

  core::ModelOptions per_arch;
  per_arch.exclude = bench::paper_excludes();
  per_arch.forest.n_trees = 400;
  const auto fermi_model = core::BlackForestModel::fit(source, per_arch);
  const auto kepler_model = core::BlackForestModel::fit(target, per_arch);
  bench::print_importance(fermi_model, 10, "(a) GTX580 importance");
  bench::print_importance(kepler_model, 10, "(b) K20m importance");

  // The paper's Fig 8 mechanism, stated directly.
  const bool fermi_has_l1 = [&] {
    for (const auto& i : fermi_model.importance()) {
      if (i.name == "l1_global_load_miss" && i.pct_inc_mse > 0.0) {
        return true;
      }
    }
    return false;
  }();
  std::printf("l1_global_load_miss: %s on GTX580; absent from the K20m "
              "model (all-zero counter dropped)\n\n",
              fermi_has_l1 ? "informative" : "present");

  core::HardwareScalingOptions opt;
  opt.model.exclude = bench::paper_excludes();
  opt.model.forest.n_trees = 400;
  const auto result =
      core::HardwareScalingPredictor::predict(source, target, opt);
  std::printf("importance similarity: %.2f -> %s\n", result.similarity,
              result.used_mixed_variables
                  ? "mixed-variable workaround engaged (as in the paper)"
                  : "straightforward prediction");
  std::printf("variables used: ");
  for (const auto& v : result.variables) std::printf("%s  ", v.c_str());
  std::printf("\n(paper used: inst_issued, global_store_transaction, size, "
              "achieved_occupancy,\n issue_slot_utilization, "
              "gld_throughput)\n\n");

  bench::print_prediction_series("(c) K20m execution time predictions",
                                 result.series.sizes,
                                 result.series.measured_ms,
                                 result.series.predicted_ms);

  // Paper: "prediction accuracy is bad for sequence sizes up until
  // around 3700, it slightly improves as the size increases".
  std::vector<double> small_t, small_p, large_t, large_p;
  for (std::size_t i = 0; i < result.series.sizes.size(); ++i) {
    if (result.series.sizes[i] < 3700) {
      small_t.push_back(result.series.measured_ms[i]);
      small_p.push_back(result.series.predicted_ms[i]);
    } else {
      large_t.push_back(result.series.measured_ms[i]);
      large_p.push_back(result.series.predicted_ms[i]);
    }
  }
  if (!small_t.empty() && !large_t.empty()) {
    std::printf("median |err| for len < 3700 : %.1f%%\n",
                ml::median_abs_pct_error(small_t, small_p));
    std::printf("median |err| for len >= 3700: %.1f%%\n",
                ml::median_abs_pct_error(large_t, large_p));
  }
  std::printf("overall: MSE %.4g, explained variance %.1f%%, "
              "median |err| %.1f%%\n",
              result.series.mse,
              100.0 * result.series.explained_variance,
              result.series.median_abs_pct_error);
  return 0;
}
