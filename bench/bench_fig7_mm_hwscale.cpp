// Fig. 7 reproduction: K20m predictions for matrix multiply from a
// GTX580-trained model (paper §6.2). The paper: "the approach works
// straightforwardly on MM … the most important variables are almost the
// same on both architectures, which guarantees the good accuracy".
#include <cstdio>

#include "bench_util.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Figure 7",
                      "K20m predictions for MM from GTX580 training");

  const auto workload = profiling::matmul_workload();
  const auto sizes = profiling::log2_sizes(32, 2048, 24, 16);
  profiling::SweepOptions sweep_opt;
  sweep_opt.machine_characteristics = true;

  const gpusim::Device fermi(gpusim::gtx580());
  sweep_opt.profiler.seed = 101;
  const auto source = profiling::sweep(workload, fermi, sizes, sweep_opt);
  const gpusim::Device kepler(gpusim::kepler_k20m());
  sweep_opt.profiler.seed = 202;
  const auto target = profiling::sweep(workload, kepler, sizes, sweep_opt);

  core::HardwareScalingOptions opt;
  opt.model.exclude = bench::paper_excludes();
  opt.model.forest.n_trees = 400;
  const auto result =
      core::HardwareScalingPredictor::predict(source, target, opt);

  std::printf("top variables on GTX580: ");
  for (const auto& v : result.source_top) std::printf("%s  ", v.c_str());
  std::printf("\ntop variables on K20m  : ");
  for (const auto& v : result.target_top) std::printf("%s  ", v.c_str());
  std::printf("\nimportance similarity: %.2f -> %s\n\n", result.similarity,
              result.used_mixed_variables
                  ? "mixed-variable workaround engaged"
                  : "straightforward prediction (as the paper found)");

  bench::print_prediction_series("K20m execution time predictions",
                                 result.series.sizes,
                                 result.series.measured_ms,
                                 result.series.predicted_ms);
  std::printf("MSE %.4g, explained variance %.1f%%, median |err| %.1f%%\n",
              result.series.mse,
              100.0 * result.series.explained_variance,
              result.series.median_abs_pct_error);
  std::printf("(paper: predictions mostly match, inaccuracies at the "
              "edges from interpolation)\n");
  return 0;
}
