// Extension A7 (paper §7): "first proving BF's usability on CPUs."
//
// The identical BlackForest core — forest, importance, counter models,
// problem scaling — runs on CPU perf counters produced by the cpusim
// substrate. Nothing in bf::core knows which processor the dataset came
// from.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "cpusim/cpu_workloads.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A7",
                      "BlackForest on CPU performance counters "
                      "(blocked matmul, Xeon E5-2620 model)");

  const cpusim::CpuDevice device(cpusim::xeon_e5_2620());
  std::vector<double> sizes;
  for (int n = 64; n <= 1024; n += 48) sizes.push_back(n);
  const auto sweep =
      cpusim::cpu_sweep(cpusim::cpu_matmul_workload(), device, sizes);
  std::printf("collected %zu runs of cpu_matmul, n in [64, 1024]\n\n",
              sweep.num_rows());

  core::ModelOptions mo;
  mo.forest.n_trees = 400;
  mo.forest.min_node_size = 2;
  const auto model = core::BlackForestModel::fit(sweep, mo);
  bench::print_importance(model, 10,
                          "variable importance (CPU counters)");

  core::ProblemScalingOptions pso;
  pso.model.forest.n_trees = 400;
  const auto predictor = core::ProblemScalingPredictor::build(sweep, pso);
  const auto& test = predictor.full_model().test_data();
  const auto series = predictor.validate(test.column("size"),
                                         test.column("time_ms"));
  bench::print_prediction_series("execution-time prediction (CPU)",
                                 series.sizes, series.measured_ms,
                                 series.predicted_ms);
  std::printf("MSE %.4g, explained variance %.1f%%, median |err| %.1f%%\n",
              series.mse, 100.0 * series.explained_variance,
              series.median_abs_pct_error);

  // Contrast two CPU workload characters, as §5 does for GPU kernels.
  std::printf("\nbottleneck contrast (fixed size):\n");
  const auto mm = device.run(*cpusim::cpu_matmul_workload().make(
      512, device.spec()));
  const auto triad = device.run(*cpusim::cpu_triad_workload().make(
      1 << 22, device.spec()));
  std::printf("  cpu_matmul : ipc %.2f, bw util %4.1f%%, %s\n",
              mm.counters.at("ipc"),
              100.0 * mm.counters.at("mem_bw_utilization"),
              mm.bandwidth_bound ? "bandwidth-bound" : "compute-bound");
  std::printf("  cpu_triad  : ipc %.2f, bw util %4.1f%%, %s\n",
              triad.counters.at("ipc"),
              100.0 * triad.counters.at("mem_bw_utilization"),
              triad.bandwidth_bound ? "bandwidth-bound" : "compute-bound");
  return 0;
}
