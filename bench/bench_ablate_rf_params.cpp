// Ablation A2: random-forest hyper-parameters vs OOB error on the MM
// sweep (n_trees x min_node_size, plus mtry). Justifies the library's
// defaults (500 trees; min node 2 for small scaling sweeps).
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Ablation A2",
                      "forest hyper-parameters vs OOB error (MM, GTX580)");

  const gpusim::Device device(gpusim::gtx580());
  const auto sweep = profiling::sweep(
      profiling::matmul_workload(), device,
      profiling::log2_sizes(32, 2048, 24, 16));

  std::printf("OOB %% variance explained (higher is better):\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t min_node : {1u, 2u, 5u, 10u}) {
    std::vector<std::string> row{"min_node=" + std::to_string(min_node)};
    for (const std::size_t n_trees : {10u, 50u, 200u, 500u}) {
      core::ModelOptions opt;
      opt.exclude = bench::paper_excludes();
      opt.forest.n_trees = n_trees;
      opt.forest.min_node_size = min_node;
      const auto model = core::BlackForestModel::fit(sweep, opt);
      row.push_back(report::cell(model.pct_var_explained(), 1));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", report::table({"", "10 trees", "50 trees",
                                     "200 trees", "500 trees"},
                                    rows)
                          .c_str());

  std::printf("mtry sweep at 500 trees, min_node=2:\n\n");
  std::vector<std::vector<std::string>> mrows;
  for (const std::size_t mtry : {1u, 2u, 4u, 8u, 16u}) {
    core::ModelOptions opt;
    opt.exclude = bench::paper_excludes();
    opt.forest.n_trees = 500;
    opt.forest.min_node_size = 2;
    opt.forest.mtry = mtry;
    const auto model = core::BlackForestModel::fit(sweep, opt);
    mrows.push_back({std::to_string(mtry),
                     report::cell(model.pct_var_explained(), 1),
                     report::cell(model.oob_mse(), 4)});
  }
  std::printf("%s", report::table({"mtry", "OOB expl var %", "OOB MSE"},
                                  mrows)
                        .c_str());
  return 0;
}
