// Extension A6: the paper's "sufficiently similar hardware" claim.
//
// §6.2: "when using two different cards with the same architecture
// (Fermi or Kepler), but different numbers of SMs, the prediction will
// be correct." We test it twice:
//   same generation:  K20m -> K40  (Kepler -> Kepler; expect the
//                     straightforward path and good accuracy)
//   cross generation: GTX580 -> K20m (for contrast, on the same
//                     workload)
#include <cstdio>

#include "bench_util.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"

namespace {

using namespace bf;

core::HardwareScalingResult scale(const std::string& src_name,
                                  const std::string& tgt_name) {
  const auto workload = profiling::matmul_workload();
  const auto sizes = profiling::log2_sizes(32, 1024, 20, 16);
  profiling::SweepOptions sweep_opt;
  sweep_opt.machine_characteristics = true;

  const gpusim::Device src(gpusim::arch_by_name(src_name));
  sweep_opt.profiler.seed = 31;
  const auto source = profiling::sweep(workload, src, sizes, sweep_opt);
  const gpusim::Device tgt(gpusim::arch_by_name(tgt_name));
  sweep_opt.profiler.seed = 32;
  const auto target = profiling::sweep(workload, tgt, sizes, sweep_opt);

  core::HardwareScalingOptions opt;
  opt.model.exclude = bench::paper_excludes();
  opt.model.forest.n_trees = 300;
  return core::HardwareScalingPredictor::predict(source, target, opt);
}

void print_row(const std::string& label,
            const core::HardwareScalingResult& r) {
  std::printf("%-18s similarity %.2f  %-16s  median|err| %5.1f%%  "
              "expl.var %5.1f%%\n",
              label.c_str(), r.similarity,
              r.used_mixed_variables ? "mixed-variables" : "straightforward",
              r.series.median_abs_pct_error,
              100.0 * r.series.explained_variance);
}

}  // namespace

int main() {
  bench::print_header("Extension A6",
                      "'sufficiently similar hardware' test (MM)");
  print_row("k20m -> k40", scale("k20m", "k40"));
  print_row("gtx580 -> gtx480", scale("gtx580", "gtx480"));
  print_row("gtx580 -> k20m", scale("gtx580", "k20m"));
  std::printf("\nexpectation (paper §6.2): same-generation pairs rank the "
              "same variables and predict\nwell; the cross-generation pair "
              "is where accuracy is at risk.\n");
  return 0;
}
