// Related-work baselines (paper §2): BlackForest's random forest vs a
// Stargazer-style stepwise regression and an Eiger-style model-pool
// parametric regression, on the same counter data.
//
// Three comparisons:
//  1. variable selection: do stepwise and RF importance agree on the
//     influential counters?
//  2. in-range prediction (the paper's problem-scaling setting);
//  3. extrapolation beyond the training range — where analytical models
//     keep working and forests flatline (the honest trade-off).
#include <cstdio>

#include <algorithm>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "ml/metrics.hpp"
#include "ml/model_pool.hpp"
#include "ml/stepwise.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Baselines",
                      "BlackForest vs Stargazer-style stepwise vs "
                      "Eiger-style model pool (MM, GTX580)");

  const gpusim::Device device(gpusim::gtx580());
  const auto workload = profiling::matmul_workload();
  const auto sweep = profiling::sweep(
      workload, device, profiling::log2_sizes(32, 1024, 22, 16));

  Rng rng(2024);
  const auto split = ml::train_test_split(sweep, 0.2, rng);
  std::vector<std::string> predictors;
  for (const auto& name : split.train.column_names()) {
    if (name == profiling::kTimeColumn) continue;
    bool skip = false;
    for (const auto& e : bench::paper_excludes()) skip |= (e == name);
    if (!skip) predictors.push_back(name);
  }
  const auto x_train = split.train.to_matrix(predictors);
  const auto x_test = split.test.to_matrix(predictors);
  const auto& y_train = split.train.column(profiling::kTimeColumn);
  const auto& y_test = split.test.column(profiling::kTimeColumn);

  // --- 1. variable selection ---
  core::ModelOptions mo;
  mo.exclude = bench::paper_excludes();
  mo.forest.n_trees = 400;
  mo.forest.min_node_size = 2;
  const auto bf_model = core::BlackForestModel::fit(sweep, mo);
  const auto bf_top = bf_model.top_variables(6);

  ml::StepwiseRegression stepwise;
  ml::StepwiseParams sp;
  sp.max_variables = 6;
  stepwise.fit(x_train, y_train, predictors, sp);

  std::printf("RF importance top-6 : ");
  for (const auto& v : bf_top) std::printf("%s  ", v.c_str());
  std::printf("\nstepwise selection  : ");
  for (const auto& v : stepwise.selected()) std::printf("%s  ", v.c_str());
  std::size_t agree = 0;
  for (const auto& v : stepwise.selected()) {
    if (std::find(bf_top.begin(), bf_top.end(), v) != bf_top.end()) ++agree;
  }
  std::printf("\noverlap: %zu of %zu stepwise variables appear in the RF "
              "top-6\n\n",
              agree, stepwise.selected().size());

  // --- 2. in-range prediction ---
  ml::RandomForest rf;
  ml::ForestParams fp;
  fp.n_trees = 400;
  fp.min_node_size = 2;
  fp.importance = false;
  rf.fit(x_train, y_train, predictors, fp);

  ml::ModelPoolRegression pool;
  pool.fit(x_train, y_train, predictors, {});

  std::vector<std::vector<std::string>> rows;
  const auto add_row = [&](const std::string& name,
                           const std::vector<double>& pred) {
    rows.push_back({name, report::cell(ml::mse(y_test, pred), 4),
                    report::cell(
                        100.0 * ml::explained_variance(y_test, pred), 1),
                    report::cell(ml::median_abs_pct_error(y_test, pred),
                                 1)});
  };
  add_row("random forest", rf.predict(x_test));
  add_row("stepwise (Stargazer)", stepwise.predict(x_test));
  add_row("model pool (Eiger)", pool.predict(x_test));
  std::printf("in-range prediction on the held-out split:\n%s\n",
              report::table({"model", "test MSE", "expl var %",
                             "median |err| %"},
                            rows)
                  .c_str());
  std::printf("Eiger-style closed form: time_ms = %s\n\n",
              pool.to_string().c_str());

  // --- 3. extrapolation: train <= 1024, predict 1200..2048 ---
  profiling::Profiler profiler;
  std::vector<double> xs{1200, 1600, 2048};
  std::printf("extrapolation beyond the training range (trained to "
              "n=1024):\n");
  std::printf("  %-6s %-12s %-14s %-14s %s\n", "n", "measured",
              "forest", "model pool", "(ms)");
  // The forest route uses the BlackForest problem-scaling pipeline; the
  // pool predicts from modelled counters too, for a fair comparison.
  core::ProblemScalingOptions pso;
  pso.model.exclude = bench::paper_excludes();
  const auto ps = core::ProblemScalingPredictor::build(sweep, pso);
  core::CounterModelOptions cmo;
  const auto cms = core::CounterModels::fit(sweep, predictors, cmo);
  for (const double n : xs) {
    const double measured =
        profiler.profile(workload, device, n).time_ms;
    const double forest_pred = ps.predict_time(n);
    // Assemble the pool's feature row from the counter models.
    std::vector<double> row(predictors.size(), 0.0);
    const auto predicted_counters = cms.predict({n});
    for (std::size_t j = 0; j < predictors.size(); ++j) {
      if (predictors[j] == profiling::kSizeColumn) {
        row[j] = n;
        continue;
      }
      for (const auto& [name, value] : predicted_counters) {
        if (name == predictors[j]) row[j] = value;
      }
    }
    const double pool_pred = pool.predict_row(row.data(), row.size());
    std::printf("  %-6.0f %-12.3f %-14.3f %-14.3f\n", n, measured,
                forest_pred, pool_pred);
  }
  std::printf("\ntakeaway: the forest saturates at the largest training "
              "response (no extrapolation);\nthe analytical pool "
              "extrapolates — at the price of the modelling complexity "
              "the paper\ncriticises Eiger for.\n");
  return 0;
}
