// Ablation A10: cache configuration sensitivity of the simulator (and of
// the analysis built on it).
//
// Fermi lets kernels choose a 16/48 or 48/16 KB split between L1 and
// shared memory; Kepler changed global-load caching altogether. This
// ablation sweeps the L1 size and the L2 size on the GTX580 model and
// shows how the cache-related counters — and the resulting bottleneck
// ranking — respond for a cache-sensitive kernel (NW) and an insensitive
// one (reduce2, streaming).
#include <cstdio>

#include "bench_util.hpp"
#include "profiling/profiler.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Ablation A10",
                      "cache-configuration sensitivity (GTX580 model)");

  // The 5-point stencil reuses neighbour lines in L1; NW/reduce do not
  // (their tiles are touched once), so the stencil is the sensitive probe.
  std::printf("L1 size sweep (stencil5, n=1024):\n");
  std::vector<std::vector<std::string>> rows;
  for (const int l1_kb : {4, 16, 48}) {
    gpusim::ArchSpec arch = gpusim::gtx580();
    arch.l1_size_kb = l1_kb;
    arch.shared_mem_per_sm_bytes = (64 - l1_kb) * 1024;
    const gpusim::Device device(arch);
    profiling::Profiler profiler;
    const auto r =
        profiler.profile(profiling::stencil_workload(), device, 1024);
    rows.push_back(
        {std::to_string(l1_kb) + " KB",
         report::cell(r.counters.at("l1_global_load_hit"), 0),
         report::cell(r.counters.at("l1_global_load_miss"), 0),
         report::cell(r.counters.at("l1_global_load_hit") /
                          (r.counters.at("l1_global_load_hit") +
                           r.counters.at("l1_global_load_miss")),
                      3),
         report::cell(r.time_ms, 3)});
  }
  std::printf("%s\n", report::table({"L1", "l1_hits", "l1_misses",
                                     "hit rate", "time_ms"},
                                    rows)
                          .c_str());

  std::printf("L2 size sweep (matrixMul n=256 vs reduce2 n=2^22):\n");
  std::vector<std::vector<std::string>> rows2;
  for (const int l2_kb : {256, 768, 1536, 3072}) {
    gpusim::ArchSpec arch = gpusim::gtx580();
    arch.l2_size_kb = l2_kb;
    const gpusim::Device device(arch);
    profiling::Profiler profiler;
    const auto mm =
        profiler.profile(profiling::matmul_workload(), device, 256);
    const auto red =
        profiler.profile(profiling::reduce_workload(2), device, 1 << 22);
    rows2.push_back(
        {std::to_string(l2_kb) + " KB", report::cell(mm.time_ms, 3),
         report::cell(mm.counters.at("dram_read_transactions"), 0),
         report::cell(red.time_ms, 3),
         report::cell(red.counters.at("dram_read_transactions"), 0)});
  }
  std::printf("%s\n", report::table({"L2", "MM time", "MM dram_rd",
                                     "reduce2 time", "reduce2 dram_rd"},
                                    rows2)
                          .c_str());
  std::printf("expectation: MM's tile reuse rewards bigger L2 (fewer DRAM "
              "reads); streaming reduce2 is\ninsensitive — its working "
              "set never fits. The simulator reproduces both regimes.\n");
  return 0;
}
