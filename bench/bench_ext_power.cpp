// Extension A5: power as the response variable (paper §7: "our method is
// not limited to predicting execution time - one could use other metrics
// of interest, such as power, as response variable").
//
// We rebuild the pipeline with the estimated average board power as the
// response: importance analysis shows which activities draw power, and
// problem scaling predicts the power of unseen sizes.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A5",
                      "power as the response variable (MM, GTX580)");

  const gpusim::Device device(gpusim::gtx580());
  const auto sweep = profiling::sweep(
      profiling::matmul_workload(), device,
      profiling::log2_sizes(32, 2048, 24, 16));

  // Re-target the pipeline: power_avg_w becomes the response (the column
  // the core treats as "time_ms"), execution time becomes a predictor.
  ml::Dataset ds;
  for (const auto& name : sweep.column_names()) {
    if (name == "power_avg_w") continue;
    if (name == profiling::kTimeColumn) {
      ds.add_column("exec_time_ms", sweep.column(name));
    } else {
      ds.add_column(name, sweep.column(name));
    }
  }
  ds.add_column(profiling::kTimeColumn, sweep.column("power_avg_w"));

  core::ProblemScalingOptions opt;
  opt.model.exclude = {"flop_sp_efficiency"};
  opt.model.forest.n_trees = 400;
  const auto predictor = core::ProblemScalingPredictor::build(ds, opt);

  bench::print_importance(predictor.full_model(), 10,
                          "counters most influential for board power");

  const auto& test = predictor.full_model().test_data();
  const auto series = predictor.validate(
      test.column(profiling::kSizeColumn),
      test.column(profiling::kTimeColumn));
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < series.sizes.size(); ++i) {
    rows.push_back({report::cell(series.sizes[i], 0),
                    report::cell(series.measured_ms[i], 1),
                    report::cell(series.predicted_ms[i], 1)});
  }
  std::printf("%s", report::table({"size", "measured W", "predicted W"},
                                  rows)
                        .c_str());
  std::printf("power prediction: MSE %.3g, explained variance %.1f%%, "
              "median |err| %.1f%%\n",
              series.mse, 100.0 * series.explained_variance,
              series.median_abs_pct_error);

  // Performance-per-watt view (paper: "evaluate computing efficiency in
  // terms of performance per watt").
  std::printf("\nperformance per watt across the sweep:\n");
  std::vector<std::vector<std::string>> ppw;
  for (std::size_t r = 0; r < sweep.num_rows(); r += 6) {
    const double n = sweep.at(r, profiling::kSizeColumn);
    const double gflops = 2.0 * n * n * n / 1e9 /
                          (sweep.at(r, profiling::kTimeColumn) * 1e-3);
    const double watts = sweep.at(r, "power_avg_w");
    ppw.push_back({report::cell(n, 0), report::cell(gflops, 1),
                   report::cell(watts, 1),
                   report::cell(gflops / watts, 2)});
  }
  std::printf("%s", report::table({"n", "GFLOP/s", "W", "GFLOP/s/W"},
                                  ppw)
                        .c_str());
  return 0;
}
