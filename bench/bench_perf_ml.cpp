// P1/P3: google-benchmark microbenchmarks of the statistical substrate —
// forest training/prediction, PCA, MARS and GLM fits at realistic
// BlackForest dataset shapes (tens-to-hundreds of rows, ~30 counters).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/forest.hpp"
#include "ml/linear_model.hpp"
#include "ml/mars.hpp"
#include "ml/pca.hpp"

namespace {

using namespace bf;

struct Problem {
  linalg::Matrix x;
  std::vector<double> y;
  std::vector<std::string> names;
};

Problem make_problem(std::size_t n, std::size_t p) {
  Rng rng(1234);
  Problem prob{linalg::Matrix(n, p), std::vector<double>(n),
               std::vector<std::string>(p)};
  for (std::size_t j = 0; j < p; ++j) {
    prob.names[j] = "c" + std::to_string(j);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      prob.x(i, j) = rng.uniform(0, 100);
      if (j < 3) acc += prob.x(i, j);
    }
    prob.y[i] = acc + rng.normal(0.0, 2.0);
  }
  return prob;
}

void BM_ForestFit(benchmark::State& state) {
  const auto prob = make_problem(static_cast<std::size_t>(state.range(0)),
                                 30);
  ml::ForestParams params;
  params.n_trees = static_cast<std::size_t>(state.range(1));
  params.importance = true;
  for (auto _ : state) {
    ml::RandomForest rf;
    rf.fit(prob.x, prob.y, prob.names, params);
    benchmark::DoNotOptimize(rf.oob_mse());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ForestFit)
    ->Args({50, 100})
    ->Args({100, 100})
    ->Args({100, 500})
    ->Args({400, 500})
    ->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto prob = make_problem(200, 30);
  ml::RandomForest rf;
  ml::ForestParams params;
  params.n_trees = 500;
  params.importance = false;
  rf.fit(prob.x, prob.y, prob.names, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.predict(prob.x));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ForestPredict)->Unit(benchmark::kMicrosecond);

void BM_PartialDependence(benchmark::State& state) {
  const auto prob = make_problem(100, 30);
  ml::RandomForest rf;
  ml::ForestParams params;
  params.n_trees = 300;
  rf.fit(prob.x, prob.y, prob.names, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.partial_dependence("c0", 25));
  }
}
BENCHMARK(BM_PartialDependence)->Unit(benchmark::kMillisecond);

void BM_PcaFit(benchmark::State& state) {
  const auto prob = make_problem(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    ml::Pca pca;
    pca.fit(prob.x, prob.names);
    pca.varimax();
    benchmark::DoNotOptimize(pca.num_retained());
  }
}
BENCHMARK(BM_PcaFit)->Args({100, 10})->Args({100, 30})->Args({400, 30})
    ->Unit(benchmark::kMillisecond);

void BM_MarsFit(benchmark::State& state) {
  const auto prob = make_problem(static_cast<std::size_t>(state.range(0)),
                                 2);
  for (auto _ : state) {
    ml::Mars mars;
    mars.fit(prob.x, prob.y);
    benchmark::DoNotOptimize(mars.r_squared());
  }
}
BENCHMARK(BM_MarsFit)->Arg(50)->Arg(130)->Unit(benchmark::kMillisecond);

void BM_GlmFit(benchmark::State& state) {
  const auto prob = make_problem(130, 4);
  for (auto _ : state) {
    ml::Glm glm;
    glm.fit(prob.x, prob.y);
    benchmark::DoNotOptimize(glm.residual_deviance());
  }
}
BENCHMARK(BM_GlmFit)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
