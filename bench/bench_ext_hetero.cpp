// Extension A8 (paper §7): heterogeneous workload partitioning.
//
// "we believe our approach is very useful in the context of emerging
// CPU+GPUs heterogeneous systems, where performance modeling is key to
// determine workload partitioning [Glinda, StarPU, OmpSs]". With a
// BlackForest time predictor per processor, the optimal static row split
// of a matmul between CPU and GPU falls out directly: give the CPU the
// fraction f* that equalises both sides' predicted times.
#include <cstdio>

#include <algorithm>

#include "bench_util.hpp"
#include "core/predictor.hpp"
#include "cpusim/cpu_workloads.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  bench::print_header("Extension A8",
                      "heterogeneous CPU+GPU workload partitioning (MM)");

  // Train one predictor per processor.
  const gpusim::Device gpu(gpusim::gtx580());
  const auto gpu_sweep = profiling::sweep(
      profiling::matmul_workload(), gpu,
      profiling::log2_sizes(32, 1024, 20, 16));
  core::ProblemScalingOptions opt;
  opt.model.exclude = bench::paper_excludes();
  const auto gpu_pred = core::ProblemScalingPredictor::build(gpu_sweep, opt);

  const cpusim::CpuDevice cpu(cpusim::xeon_e5_2620());
  std::vector<double> cpu_sizes;
  for (int n = 64; n <= 1024; n += 48) cpu_sizes.push_back(n);
  const auto cpu_sweep_ds = cpusim::cpu_sweep(
      cpusim::cpu_matmul_workload(), cpu, cpu_sizes);
  core::ProblemScalingOptions cpu_opt;
  const auto cpu_pred =
      core::ProblemScalingPredictor::build(cpu_sweep_ds, cpu_opt);

  // For a row split, each side's time scales ~linearly with its share of
  // rows at fixed n: t_side(f) ~ f * t_side(1). Equalising gives
  // f*_cpu = t_gpu / (t_cpu + t_gpu).
  std::printf("%-8s %-12s %-12s %-10s %-12s %s\n", "n", "t_cpu(ms)",
              "t_gpu(ms)", "cpu share", "t_split(ms)", "speedup vs GPU");
  for (const double n : {128.0, 256.0, 512.0, 768.0, 1024.0}) {
    const double t_cpu = cpu_pred.predict_time(n);
    const double t_gpu = gpu_pred.predict_time(n);
    const double f_cpu = t_gpu / (t_cpu + t_gpu);
    const double t_split = std::max(f_cpu * t_cpu, (1.0 - f_cpu) * t_gpu);
    std::printf("%-8.0f %-12.4f %-12.4f %-10.3f %-12.4f %.2fx\n", n, t_cpu,
                t_gpu, f_cpu, t_split, t_gpu / t_split);
  }
  std::printf(
      "\nreading: the GPU dominates at large n (tiny optimal CPU share);\n"
      "at small n the CPU is competitive and co-scheduling pays — the\n"
      "imbalance profile Glinda-style partitioners exploit.\n");
  return 0;
}
