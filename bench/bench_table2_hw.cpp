// Table 2 reproduction: GPU hardware metrics injected into the
// hardware-scaling model (plus the extra parts in our registry).
#include <cstdio>

#include "bench_util.hpp"
#include "gpusim/arch.hpp"
#include "report/ascii.hpp"

int main() {
  using namespace bf;
  bench::print_header("Table 2", "GPU hardware metrics");

  const auto& archs = gpusim::arch_registry();
  std::vector<std::string> header{"metric", "meaning"};
  for (const auto& a : archs) header.push_back(a.name);

  static const char* kMeanings[] = {
      "number of warp schedulers", "clock rate (GHz)", "number of MPs",
      "cores per MP", "memory bandwidth (GB/s)", "registers per thread",
      "L2 size (KB)"};

  const auto first = gpusim::machine_characteristics(archs.front());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t m = 0; m < first.size(); ++m) {
    std::vector<std::string> row{first[m].first, kMeanings[m]};
    for (const auto& a : archs) {
      const auto chars = gpusim::machine_characteristics(a);
      row.push_back(report::cell(chars[m].second,
                                 chars[m].first == "freq" ? 3 : 1));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", report::table(header, rows).c_str());

  std::printf("paper's Table 2 (GTX480 / K20m): wsched 2/4, freq 1.4/0.71, "
              "smp 15/13, rco 32/192,\n  mbw 177.4/208, registers 63/255, "
              "L2 768/1280 — matches the columns above.\n");
  return 0;
}
