// Shared driver for the paper's §5 reduction figures (Figs 2, 3, 4): one
// reduce variant analysed with variable importance, partial dependence
// and PCA refinement on the GTX580.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/bottleneck.hpp"
#include "core/pipeline.hpp"
#include "profiling/workloads.hpp"

namespace bf::bench {

inline void run_reduce_figure(const std::string& figure_id, int variant,
                              const std::vector<std::string>& paper_top3) {
  print_header(figure_id,
               "counters affecting the performance of reduce" +
                   std::to_string(variant) + " (GTX580)");

  core::PipelineConfig cfg;
  cfg.workload = profiling::reduce_workload(variant);
  cfg.arch = gpusim::gtx580();
  cfg.sizes = profiling::log2_sizes(1 << 14, 1 << 24, 60, 256);
  cfg.model.exclude = paper_excludes();
  cfg.model.forest.n_trees = 500;
  cfg.pca.exclude = paper_excludes();

  const auto out = core::run_analysis(cfg);

  print_importance(out.model, 10, "(a) variable importance");
  const auto top = out.model.top_variables(3);
  print_partial_dependence(out.model, top[0]);
  print_pca(out.pca);

  std::printf("paper's top-3 : ");
  for (const auto& v : paper_top3) std::printf("%s  ", v.c_str());
  std::printf("\nours   top-3 : ");
  for (const auto& v : top) std::printf("%s  ", v.c_str());
  std::printf("\n\n%s\n", core::to_text(out.report).c_str());
}

}  // namespace bf::bench
