// Fig. 3 reproduction: reduce2 (sequential addressing). The paper's key
// observation: "the most important counter for reduce1 is the least
// important for reduce2" — the bank-conflict metric vanishes entirely
// (our pipeline drops it as a constant-zero column).
#include "reduce_figure.hpp"

int main() {
  bf::bench::run_reduce_figure(
      "Figure 3", 2,
      {"l1_global_load_miss", "l2_write_transactions",
       "l2_read_transactions"});
  return 0;
}
