// Table 1 reproduction: the performance counters used in this study,
// with their meanings and per-generation availability.
#include <cstdio>

#include "bench_util.hpp"
#include "profiling/counter_registry.hpp"
#include "report/ascii.hpp"

int main() {
  using namespace bf;
  bench::print_header("Table 1", "performance counters used in this study");

  std::vector<std::vector<std::string>> rows;
  for (const auto& c : profiling::counter_registry()) {
    rows.push_back({c.name,
                    c.kind == profiling::CounterKind::kEvent ? "event"
                                                             : "metric",
                    c.on_fermi ? "yes" : "-", c.on_kepler ? "yes" : "-",
                    c.description});
  }
  std::printf("%s\n",
              report::table({"counter", "kind", "fermi", "kepler",
                             "meaning"},
                            rows)
                  .c_str());

  // The §7 availability mismatch the hardware-scaling workaround needs.
  std::printf("Fermi-only counters : ");
  for (const auto& c : profiling::counter_registry()) {
    if (c.on_fermi && !c.on_kepler) std::printf("%s  ", c.name.c_str());
  }
  std::printf("\nKepler-only counters: ");
  for (const auto& c : profiling::counter_registry()) {
    if (!c.on_fermi && c.on_kepler) std::printf("%s  ", c.name.c_str());
  }
  std::printf("\n");
  return 0;
}
