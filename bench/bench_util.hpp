// Shared helpers for the reproduction benches (one binary per paper
// table/figure). Each bench prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured for each.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/pca_refine.hpp"
#include "profiling/sweep.hpp"
#include "report/ascii.hpp"

namespace bf::bench {

/// Metrics this library adds beyond the paper's counter set; excluded
/// from paper-figure reproductions so variable importance competes over
/// the same variables the paper had.
inline std::vector<std::string> paper_excludes() {
  return {"power_avg_w", "flop_sp_efficiency"};
}

inline void print_header(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

/// Variable-importance bar chart (the paper's Fig (a) panels).
inline void print_importance(const core::BlackForestModel& model,
                             std::size_t top_k,
                             const std::string& title) {
  const auto imp = model.importance();
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t i = 0; i < imp.size() && i < top_k; ++i) {
    bars.emplace_back(imp[i].name, imp[i].pct_inc_mse);
  }
  std::printf("%s", report::bar_chart(title + "  (%IncMSE)", bars).c_str());
  std::printf("  model: %.1f%% variance explained (OOB), OOB MSE %.4g\n\n",
              model.pct_var_explained(), model.oob_mse());
}

/// Partial-dependence panel (the paper's Fig (b) panels).
inline void print_partial_dependence(const core::BlackForestModel& model,
                                     const std::string& variable) {
  const auto curve = model.partial_dependence(variable, 20);
  report::Series s;
  s.name = "avg predicted time_ms";
  for (const auto& p : curve) {
    s.x.push_back(p.x);
    s.y.push_back(p.y);
  }
  std::printf("%s",
              report::xy_plot("partial dependence of time on " + variable,
                              {s})
                  .c_str());
  std::printf("\n");
}

/// PCA panel: retained components with varimax loadings + facet labels.
inline void print_pca(const core::PcaRefinement& refinement) {
  std::printf("PCA refinement: %zu components cover %.1f%% of variance\n",
              refinement.components.size(),
              100.0 * refinement.variance_covered);
  for (const auto& comp : refinement.components) {
    std::printf("  %s\n", comp.label.c_str());
    std::size_t shown = 0;
    for (const auto& [name, loading] : comp.loadings) {
      if (shown++ >= 5) break;
      std::printf("      %-28s %+.2f\n", name.c_str(), loading);
    }
  }
  std::printf("\n");
}

/// Measured-vs-predicted series (the paper's prediction panels).
inline void print_prediction_series(const std::string& title,
                                    const std::vector<double>& sizes,
                                    const std::vector<double>& measured,
                                    const std::vector<double>& predicted) {
  report::Series m;
  m.name = "measured";
  m.x = sizes;
  m.y = measured;
  report::Series p;
  p.name = "predicted";
  p.x = sizes;
  p.y = predicted;
  std::printf("%s", report::xy_plot(title, {m, p}, 64, 16,
                                    /*log_x=*/true)
                        .c_str());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rows.push_back({report::cell(sizes[i], 0), report::cell(measured[i], 4),
                    report::cell(predicted[i], 4),
                    report::cell(100.0 * (predicted[i] - measured[i]) /
                                     measured[i],
                                 1) +
                        "%"});
  }
  std::printf("%s\n",
              report::table({"size", "measured_ms", "predicted_ms", "err"},
                            rows)
                  .c_str());
}

}  // namespace bf::bench
