#include "report/export.hpp"

#include <cstdio>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace bf::report {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void export_series_csv(const std::string& path,
                       const std::vector<Series>& series) {
  BF_CHECK_MSG(!series.empty(), "no series to export");
  const std::size_t n = series.front().x.size();
  for (const auto& s : series) {
    BF_CHECK_MSG(s.x.size() == s.y.size(), "series size mismatch");
    BF_CHECK_MSG(s.x.size() == n, "series must share one x grid");
    for (std::size_t i = 0; i < n; ++i) {
      BF_CHECK_MSG(s.x[i] == series.front().x[i],
                   "series must share one x grid");
    }
  }
  std::vector<std::string> header{"x"};
  for (const auto& s : series) header.push_back(s.name);
  CsvTable table(header);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row{num(series.front().x[i])};
    for (const auto& s : series) row.push_back(num(s.y[i]));
    table.add_row(std::move(row));
  }
  table.save(path);
}

void export_bars_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& bars) {
  CsvTable table({"label", "value"});
  for (const auto& [label, value] : bars) {
    table.add_row({label, num(value)});
  }
  table.save(path);
}

void export_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BF_CHECK_MSG(f != nullptr, "cannot open for writing: " << path);
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.17g%s\n", metrics[i].first.c_str(),
                 metrics[i].second,
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace bf::report
