#include "report/power_render.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "guard/guard.hpp"
#include "report/ascii.hpp"

namespace bf::report {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string power_text(const bf::core::PredictionSeries& series) {
  if (series.power_w.empty()) return {};
  std::ostringstream os;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> clamp_notes;
  for (std::size_t i = 0; i < series.power_w.size(); ++i) {
    const double size = i < series.sizes.size() ? series.sizes[i] : 0.0;
    std::vector<std::string> row = {cell(size, 0), cell(series.power_w[i]),
                                    i < series.energy_j.size()
                                        ? cell(series.energy_j[i], 5)
                                        : std::string("-"),
                                    "-"};
    if (i < series.power_guard.size()) {
      const auto& rec = series.power_guard[i];
      row.back() = std::string(1, bf::guard::grade_letter(rec.grade));
      if (rec.extrapolated) row.back() += " (extrapolated)";
      for (const auto& c : rec.clamps) clamp_notes.push_back(c);
    }
    rows.push_back(std::move(row));
  }
  os << table({"size", "power_w", "energy_j", "grade"}, rows);
  os << warn_list("power envelope clamps", clamp_notes);
  return os.str();
}

void export_power_json(const std::string& path,
                       const bf::core::PredictionSeries& series) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BF_CHECK_MSG(f != nullptr, "cannot open for writing: " << path);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"predictions\": [\n");
  for (std::size_t i = 0; i < series.power_w.size(); ++i) {
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"size\": %s,\n",
                 num(i < series.sizes.size() ? series.sizes[i] : 0.0).c_str());
    std::fprintf(f, "      \"power_w\": %s,\n", num(series.power_w[i]).c_str());
    std::fprintf(
        f, "      \"energy_j\": %s,\n",
        num(i < series.energy_j.size() ? series.energy_j[i] : 0.0).c_str());
    if (i < series.power_guard.size()) {
      const auto& rec = series.power_guard[i];
      std::fprintf(f, "      \"lo\": %s,\n", num(rec.lo).c_str());
      std::fprintf(f, "      \"hi\": %s,\n", num(rec.hi).c_str());
      std::fprintf(f, "      \"extrapolated\": %s,\n",
                   rec.extrapolated ? "true" : "false");
      std::fprintf(f, "      \"clamps\": [");
      for (std::size_t j = 0; j < rec.clamps.size(); ++j) {
        std::fprintf(f, "\"%s\"%s", json_escape(rec.clamps[j]).c_str(),
                     j + 1 < rec.clamps.size() ? ", " : "");
      }
      std::fprintf(f, "],\n");
      std::fprintf(f, "      \"grade\": \"%c\"\n",
                   bf::guard::grade_letter(rec.grade));
    } else {
      std::fprintf(f, "      \"grade\": \"A\"\n");
    }
    std::fprintf(f, "    }%s\n", i + 1 < series.power_w.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace bf::report
