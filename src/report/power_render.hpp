// Renderings of the power rows a bf::power-annotated PredictionSeries
// carries: an ASCII table (size, watts, joules, grade) for terminals and
// a JSON export so CI can assert on the energy path machine-readably.
#pragma once

#include <string>

#include "core/predictor.hpp"

namespace bf::report {

/// Multi-line ASCII table of the series' power rows: one line per size
/// with predicted board power, derived energy and the power guard grade.
/// Empty string when the series carries no power rows.
std::string power_text(const bf::core::PredictionSeries& series);

/// Write the power rows as JSON: per-size power_w / energy_j / grade
/// plus the guard interval and any clamp notes.
void export_power_json(const std::string& path,
                       const bf::core::PredictionSeries& series);

}  // namespace bf::report
