#include "report/guard_render.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "report/ascii.hpp"

namespace bf::report {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void print_string_array(std::FILE* f, const char* key,
                        const std::vector<std::string>& values,
                        const char* indent, bool trailing_comma) {
  std::fprintf(f, "%s\"%s\": [", indent, key);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "\"%s\"%s", json_escape(values[i]).c_str(),
                 i + 1 < values.size() ? ", " : "");
  }
  std::fprintf(f, "]%s\n", trailing_comma ? "," : "");
}

}  // namespace

std::string guard_text(const bf::guard::GuardReport& report) {
  if (!report.enabled) return {};
  std::ostringstream os;
  os << report.summary() << "\n";

  if (!report.counters.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& c : report.counters) {
      std::string chain;
      for (std::size_t i = 0; i < c.chain.size(); ++i) {
        if (i > 0) chain += " -> ";
        chain += c.chain[i];
      }
      rows.push_back({c.counter, c.chosen, cell(c.r2), cell(c.cv_rmse), chain,
                      std::to_string(c.demotions), std::to_string(c.clamps)});
    }
    os << table({"counter", "model", "R^2", "cv_rmse", "chain", "demoted",
                 "clamped"},
                rows);
  }

  const auto lines = report.to_lines();
  os << warn_list("model-health warnings", lines);
  return os.str();
}

void export_guard_json(const std::string& path,
                       const bf::guard::GuardReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BF_CHECK_MSG(f != nullptr, "cannot open for writing: " << path);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"enabled\": %s,\n", report.enabled ? "true" : "false");
  std::fprintf(f, "  \"worst_grade\": \"%c\",\n",
               bf::guard::grade_letter(report.worst()));
  std::fprintf(f, "  \"margin\": %s,\n", num(report.options.margin).c_str());
  std::fprintf(f, "  \"hull\": [\n");
  for (std::size_t i = 0; i < report.hull.size(); ++i) {
    const auto& r = report.hull[i];
    std::fprintf(f, "    {\"feature\": \"%s\", \"lo\": %s, \"hi\": %s}%s\n",
                 json_escape(r.name).c_str(), num(r.lo).c_str(),
                 num(r.hi).c_str(), i + 1 < report.hull.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"counters\": [\n");
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    const auto& c = report.counters[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"counter\": \"%s\",\n",
                 json_escape(c.counter).c_str());
    std::fprintf(f, "      \"model\": \"%s\",\n",
                 json_escape(c.chosen).c_str());
    std::fprintf(f, "      \"r2\": %s,\n", num(c.r2).c_str());
    std::fprintf(f, "      \"cv_rmse\": %s,\n", num(c.cv_rmse).c_str());
    print_string_array(f, "chain", c.chain, "      ", true);
    std::fprintf(f, "      \"demotions\": %d,\n", c.demotions);
    std::fprintf(f, "      \"clamps\": %d\n", c.clamps);
    std::fprintf(f, "    }%s\n",
                 i + 1 < report.counters.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"predictions\": [\n");
  for (std::size_t i = 0; i < report.predictions.size(); ++i) {
    const auto& p = report.predictions[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"size\": %s,\n", num(p.size).c_str());
    std::fprintf(f, "      \"value\": %s,\n", num(p.value).c_str());
    std::fprintf(f, "      \"raw_value\": %s,\n", num(p.raw_value).c_str());
    std::fprintf(f, "      \"lo\": %s,\n", num(p.lo).c_str());
    std::fprintf(f, "      \"hi\": %s,\n", num(p.hi).c_str());
    std::fprintf(f, "      \"interval_width\": %s,\n",
                 num(p.interval_width).c_str());
    std::fprintf(f, "      \"grade\": \"%c\",\n",
                 bf::guard::grade_letter(p.grade));
    std::fprintf(f, "      \"extrapolated\": %s,\n",
                 p.extrapolated ? "true" : "false");
    std::fprintf(f, "      \"flags\": [");
    for (std::size_t j = 0; j < p.flags.size(); ++j) {
      std::fprintf(f, "{\"feature\": \"%s\", \"distance\": %s}%s",
                   json_escape(p.flags[j].feature).c_str(),
                   num(p.flags[j].distance).c_str(),
                   j + 1 < p.flags.size() ? ", " : "");
    }
    std::fprintf(f, "],\n");
    print_string_array(f, "demotions", p.demotions, "      ", true);
    print_string_array(f, "clamps", p.clamps, "      ", true);
    print_string_array(f, "notes", p.notes, "      ", false);
    std::fprintf(f, "    }%s\n",
                 i + 1 < report.predictions.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace bf::report
