#include "report/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace bf::report {

std::string bar_chart(const std::string& title,
                      const std::vector<std::pair<std::string, double>>& bars,
                      int width) {
  std::ostringstream os;
  os << title << "\n";
  if (bars.empty()) return os.str();

  std::size_t label_w = 0;
  double max_abs = 0.0;
  for (const auto& [label, value] : bars) {
    label_w = std::max(label_w, label.size());
    max_abs = std::max(max_abs, std::fabs(value));
  }
  if (max_abs <= 0.0) max_abs = 1.0;

  for (const auto& [label, value] : bars) {
    const int len = static_cast<int>(
        std::lround(std::fabs(value) / max_abs * width));
    os << "  " << label << std::string(label_w - label.size() + 2, ' ')
       << (value < 0 ? "-" : " ") << std::string(static_cast<std::size_t>(len), '#')
       << "  " << format_double(value, 3) << "\n";
  }
  return os.str();
}

std::string xy_plot(const std::string& title,
                    const std::vector<Series>& series, int width, int height,
                    bool log_x) {
  BF_CHECK_MSG(width >= 16 && height >= 6, "plot too small");
  std::ostringstream os;
  os << title << "\n";

  double min_x = 1e300;
  double max_x = -1e300;
  double min_y = 1e300;
  double max_y = -1e300;
  bool any = false;
  const auto tx = [&](double x) { return log_x ? std::log2(x) : x; };
  for (const auto& s : series) {
    BF_CHECK_MSG(s.x.size() == s.y.size(), "series size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      any = true;
      min_x = std::min(min_x, tx(s.x[i]));
      max_x = std::max(max_x, tx(s.x[i]));
      min_y = std::min(min_y, s.y[i]);
      max_y = std::max(max_y, s.y[i]);
    }
  }
  if (!any) return os.str();
  if (max_x <= min_x) max_x = min_x + 1;
  if (max_y <= min_y) max_y = min_y + 1;

  static const char glyphs[] = {'*', 'o', '+', 'x', '@', '%'};
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char g = glyphs[si % sizeof(glyphs)];
    for (std::size_t i = 0; i < series[si].x.size(); ++i) {
      const double fx = (tx(series[si].x[i]) - min_x) / (max_x - min_x);
      const double fy = (series[si].y[i] - min_y) / (max_y - min_y);
      const int col = std::clamp(
          static_cast<int>(std::lround(fx * (width - 1))), 0, width - 1);
      const int row = std::clamp(
          static_cast<int>(std::lround((1.0 - fy) * (height - 1))), 0,
          height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = g;
    }
  }

  os << "  " << format_double(max_y, 3) << "\n";
  for (const auto& row : grid) {
    os << "  |" << row << "\n";
  }
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  os << "  " << format_double(min_y, 3) << "  x: ["
     << format_double(log_x ? std::exp2(min_x) : min_x, 1) << ", "
     << format_double(log_x ? std::exp2(max_x) : max_x, 1) << "]"
     << (log_x ? " (log2 x-axis)" : "");
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "   " << glyphs[si % sizeof(glyphs)] << "=" << series[si].name;
  }
  os << "\n";
  return os.str();
}

std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    BF_CHECK_MSG(row.size() == header.size(), "ragged table row");
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(header);
  os << "  ";
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << "\n";
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

std::string cell(double v, int precision) {
  return format_double(v, precision);
}

std::string warn_list(const std::string& title,
                      const std::vector<std::string>& lines) {
  if (lines.empty()) return "";
  std::ostringstream os;
  os << title << "\n";
  for (const auto& line : lines) {
    os << "  ! " << line << "\n";
  }
  return os.str();
}

}  // namespace bf::report
