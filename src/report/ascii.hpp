// Plain-text renderings of the paper's figures: horizontal bar charts for
// variable importance (Figs 2a/3a/4a/5a/6a/8a/8b), x-y series plots for
// partial dependence and measured-vs-predicted curves (Figs 2b..8c), and
// aligned tables (Tables 1 and 2).
#pragma once

#include <string>
#include <vector>

namespace bf::report {

/// Horizontal bar chart; bars are scaled to the largest |value|.
std::string bar_chart(const std::string& title,
                      const std::vector<std::pair<std::string, double>>& bars,
                      int width = 48);

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// ASCII scatter/line plot of one or more series on shared axes. Each
/// series is drawn with its own glyph ('*', 'o', '+', ...).
std::string xy_plot(const std::string& title,
                    const std::vector<Series>& series, int width = 64,
                    int height = 18, bool log_x = false);

/// Aligned table: header row + string cells.
std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows);

/// Bulleted warning block ("  ! line") under a title; empty string when
/// there are no lines. Used for degradation/robustness warnings so they
/// render consistently across tools and benches.
std::string warn_list(const std::string& title,
                      const std::vector<std::string>& lines);

/// Format helper: fixed-width double rendering for table cells.
std::string cell(double v, int precision = 3);

}  // namespace bf::report
