// Machine-readable figure export: every bench prints ASCII for the
// terminal and can also drop CSV/JSON artefacts for real plotting.
#pragma once

#include <string>
#include <vector>

#include "report/ascii.hpp"

namespace bf::report {

/// Write one or more aligned series to CSV: column "x" then one column
/// per series name. All series must share the same x grid.
void export_series_csv(const std::string& path,
                       const std::vector<Series>& series);

/// Write (label, value) bars to CSV with columns label,value.
void export_bars_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& bars);

/// Minimal JSON export of named scalar results:
/// {"name": value, ...} — handy for tracking reproduction metrics.
void export_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics);

}  // namespace bf::report
