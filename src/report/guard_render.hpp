// Renderings of the guard layer's model-health reports: an ASCII block
// (per-counter model table + per-prediction grades) for terminals, and a
// JSON export so CI can assert on grades machine-readably.
#pragma once

#include <string>

#include "guard/guard.hpp"

namespace bf::report {

/// Multi-line ASCII rendering of a GuardReport: summary line, counter
/// model table (chosen model, R^2, CV RMSE, chain, demotions, clamps)
/// and one graded line per prediction. Empty string when the report is
/// disabled.
std::string guard_text(const bf::guard::GuardReport& report);

/// Write the report as JSON: options, hull, counters and predictions
/// with grades, flags, demotions and clamps.
void export_guard_json(const std::string& path,
                       const bf::guard::GuardReport& report);

}  // namespace bf::report
