// Build identity of this BlackForest binary: git describe, build type
// and sanitizer, stamped by CMake at configure time. Tools print it via
// --version and every exported .bfmodel bundle records it in its
// provenance block, so a served prediction can always be traced back to
// the exact build that trained the model.
#pragma once

#include <string>

namespace bf {

/// Short git identity (git describe --always --dirty), "unknown" when
/// the build was configured outside a git checkout.
const char* git_describe();

/// CMake build type (Release, RelWithDebInfo, ...).
const char* build_type();

/// Sanitizer the build was instrumented with ("none" by default).
const char* sanitizer();

/// One-line build identity, e.g.
/// "blackforest 3bea3bd (RelWithDebInfo, sanitizer=none)".
std::string version_string();

}  // namespace bf
