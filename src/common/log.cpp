#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace bf {
namespace logging {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace

LogLevel level() { return static_cast<LogLevel>(g_level.load()); }

void set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl)); }

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void emit(LogLevel lvl, const std::string& msg) {
  std::fprintf(stderr, "[bf %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace logging
}  // namespace bf
