#include "common/thread_pool.hpp"

#include <algorithm>

namespace bf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // A single-thread pool runs tasks inline in submit(); no worker needed.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t nthreads = size();
  if (nthreads == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, nthreads * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    // Audited: wait_idle() below outlives every task, so &fn cannot
    // dangle.
    submit([lo, hi, &fn] {  // bf-lint: allow(capture-escape)
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace bf
