// Small string helpers shared across the library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bf {

/// Split `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join the range with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// printf-like formatting for doubles with fixed precision.
std::string format_double(double v, int precision);

/// Parse a full string as a double/integer; throws bf::Error on trailing
/// garbage or empty input (unlike atof/stod, which swallow both — the
/// failure mode that corrupts CSV-derived datasets silently).
double parse_double(std::string_view s);
std::int64_t parse_int(std::string_view s);

/// Format a byte/size count with a human suffix (e.g. "16.0 MB").
std::string human_bytes(double bytes);

}  // namespace bf
