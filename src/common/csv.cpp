#include "common/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace bf {
namespace {

// Quote a field if it contains a comma, quote, or newline.
void write_field(std::ostream& os, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

// Parse one CSV line (no embedded newlines) into fields.
std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  BF_CHECK_MSG(!in_quotes, "unterminated quote in CSV line: " << line);
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  BF_CHECK_MSG(!header_.empty(), "CSV header must be non-empty");
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  BF_FAIL("CSV column not found: " << name);
}

bool CsvTable::has_column(const std::string& name) const {
  for (const auto& h : header_) {
    if (h == name) return true;
  }
  return false;
}

void CsvTable::add_row(std::vector<std::string> row) {
  BF_CHECK_MSG(row.size() == header_.size(),
               "row width " << row.size() << " != header width "
                            << header_.size());
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  BF_CHECK_MSG(i < rows_.size(), "row " << i << " out of range");
  return rows_[i];
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  BF_CHECK_MSG(row < rows_.size() && col < header_.size(),
               "cell (" << row << "," << col << ") out of range");
  return rows_[row][col];
}

const std::string& CsvTable::cell(std::size_t row,
                                  const std::string& col) const {
  return cell(row, column_index(col));
}

double CsvTable::cell_as_double(std::size_t row, std::size_t col) const {
  const std::string& s = cell(row, col);
  double v = 0.0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  BF_CHECK_MSG(ec == std::errc{} && ptr == end,
               "cannot parse '" << s << "' as double");
  return v;
}

double CsvTable::cell_as_double(std::size_t row,
                                const std::string& col) const {
  return cell_as_double(row, column_index(col));
}

std::vector<double> CsvTable::column_as_doubles(
    const std::string& name) const {
  const std::size_t c = column_index(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out.push_back(cell_as_double(r, c));
  }
  return out;
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) os << ',';
    write_field(os, header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      write_field(os, row[i]);
    }
    os << '\n';
  }
}

void CsvTable::save(const std::string& path) const {
  std::ofstream os(path);
  BF_CHECK_MSG(os.good(), "cannot open for writing: " << path);
  write(os);
  BF_CHECK_MSG(os.good(), "write failed: " << path);
}

CsvTable CsvTable::read(std::istream& is) {
  std::string line;
  BF_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
               "CSV input is empty");
  CsvTable table(parse_line(line));
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    table.add_row(parse_line(line));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream is(path);
  BF_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  return read(is);
}

}  // namespace bf
