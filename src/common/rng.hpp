// Deterministic pseudo-random number generation.
//
// Every stochastic component in BlackForest (bootstrap sampling, feature
// subsetting, train/test splits, measurement noise) draws from bf::Rng so
// that a single seed reproduces an entire experiment bit-for-bit.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference implementations by Blackman & Vigna (public domain).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace bf {

/// Small, fast, high-quality PRNG with value semantics.
///
/// Satisfies UniformRandomBitGenerator so it can be handed to <random>
/// distributions, but the member helpers below are preferred: they are
/// reproducible across standard libraries (std::uniform_*_distribution is
/// not guaranteed to produce identical streams across implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    BF_CHECK_MSG(n > 0, "uniform_index needs n > 0");
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return v % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BF_CHECK_MSG(lo <= hi, "uniform_int needs lo <= hi");
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double sd) { return mean + sd * normal(); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// n indices drawn uniformly with replacement from [0, n) — a bootstrap
  /// sample as used by bagging/random forests.
  std::vector<std::size_t> bootstrap_indices(std::size_t n) {
    std::vector<std::size_t> out(n);
    for (auto& idx : out) idx = static_cast<std::size_t>(uniform_index(n));
    return out;
  }

  /// k distinct indices sampled without replacement from [0, n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    BF_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    // Partial Fisher-Yates: first k entries form the sample.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// Derive an independent child generator (for per-tree / per-thread use).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace bf
