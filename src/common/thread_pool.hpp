// A small fixed-size thread pool with a parallel_for helper.
//
// Random-forest training and the per-SM simulation loops are embarrassingly
// parallel; parallel_for chunks an index range over the pool. On a
// single-core host the pool degenerates to serial execution with no
// threading overhead (size 1 runs inline), so results and performance remain
// sensible everywhere.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bf {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool. Blocks until complete. fn must be thread-safe across
  /// distinct indices.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily created, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace bf
