#include "common/version.hpp"

// The three identity macros are injected by src/common/CMakeLists.txt;
// the fallbacks keep non-CMake builds (and tooling that compiles single
// translation units) working.
#ifndef BF_GIT_DESCRIBE
#define BF_GIT_DESCRIBE "unknown"
#endif
#ifndef BF_BUILD_TYPE
#define BF_BUILD_TYPE "unknown"
#endif
#ifndef BF_SANITIZE_NAME
#define BF_SANITIZE_NAME ""
#endif

namespace bf {

const char* git_describe() { return BF_GIT_DESCRIBE; }

const char* build_type() { return BF_BUILD_TYPE; }

const char* sanitizer() {
  return BF_SANITIZE_NAME[0] == '\0' ? "none" : BF_SANITIZE_NAME;
}

std::string version_string() {
  std::string out = "blackforest ";
  out += git_describe();
  out += " (";
  out += build_type();
  out += ", sanitizer=";
  out += sanitizer();
  out += ")";
  return out;
}

}  // namespace bf
