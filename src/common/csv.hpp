// Minimal CSV table reader/writer.
//
// The profiler's run repository stores every profiled run as CSV, mirroring
// the paper's "structured repository" of nvprof output. The format supported
// here is deliberately simple: comma-separated, first row is the header,
// double-quoted fields may contain commas and doubled quotes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bf {

/// An in-memory CSV table: a header plus string rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Index of a column by name; throws bf::Error if absent.
  std::size_t column_index(const std::string& name) const;
  bool has_column(const std::string& name) const;

  void add_row(std::vector<std::string> row);
  const std::vector<std::string>& row(std::size_t i) const;
  const std::string& cell(std::size_t row, std::size_t col) const;
  const std::string& cell(std::size_t row, const std::string& col) const;

  /// Parse a cell as double; throws on malformed content.
  double cell_as_double(std::size_t row, std::size_t col) const;
  double cell_as_double(std::size_t row, const std::string& col) const;

  /// Entire column parsed as doubles.
  std::vector<double> column_as_doubles(const std::string& name) const;

  /// Serialise with proper quoting.
  void write(std::ostream& os) const;
  void save(const std::string& path) const;

  /// Parse from a stream/file; throws bf::Error on ragged rows.
  static CsvTable read(std::istream& is);
  static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bf
