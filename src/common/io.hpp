// Crash-safe file I/O helpers shared by every component that persists
// state (most importantly the profiling run repository).
//
// A plain std::ofstream write can be interrupted half-way (crash, full
// disk, kill -9) and leave a torn file behind that poisons the next
// reader. atomic_write_file() writes to "<path>.tmp" and renames over the
// destination only after the full payload hit the stream, so readers see
// either the old content or the new content, never a prefix.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace bf {

/// Write `content` to `path` atomically (temp file + rename). Throws
/// bf::Error when the temp file cannot be written or the rename fails;
/// the temp file is removed on failure, so no partial entry survives.
void atomic_write_file(const std::string& path, std::string_view content);

/// Whole-file read (binary); std::nullopt when the file cannot be opened.
std::optional<std::string> read_file(const std::string& path);

/// Read a "<magic> <version>" header from a serialized stream and
/// validate both fields. Every serialized-struct reader must call this
/// (and bind the result to a `format_version` variable) before parsing
/// any field, so that a future format can evolve without old readers
/// silently misinterpreting new payloads — enforced by the bf_lint
/// `artifact-version` rule. Throws bf::Error on a magic mismatch or a
/// version outside [1, max_supported].
int read_format_version(std::istream& is, const char* magic,
                        int max_supported);

/// FNV-1a 64-bit hash — the repository's content checksum.
std::uint64_t fnv1a64(std::string_view data);

/// Fixed-width lowercase hex rendering of a 64-bit hash.
std::string to_hex64(std::uint64_t value);

}  // namespace bf
