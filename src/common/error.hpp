// Error handling primitives for the BlackForest library.
//
// All precondition violations and unrecoverable runtime failures are
// reported through bf::Error (a std::runtime_error) so callers can catch a
// single exception type at API boundaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bf {

/// Exception type thrown by every BlackForest component.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* file, int line, const char* cond,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed";
  if (cond != nullptr) os << " (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace bf

/// Verify a precondition; throws bf::Error with file/line context on failure.
/// Always on (not compiled out in release builds): the library favours loud
/// failure over silent corruption of statistical results.
#define BF_CHECK(cond)                                              \
  do {                                                              \
    if (!(cond)) ::bf::detail::fail(__FILE__, __LINE__, #cond, ""); \
  } while (false)

/// Like BF_CHECK but with a streamable message:
///   BF_CHECK_MSG(n > 0, "need samples, got " << n);
#define BF_CHECK_MSG(cond, msg)                                \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream bf_check_os_;                         \
      bf_check_os_ << msg;                                     \
      ::bf::detail::fail(__FILE__, __LINE__, #cond,            \
                         bf_check_os_.str());                  \
    }                                                          \
  } while (false)

/// Unconditional failure with message.
#define BF_FAIL(msg)                                           \
  do {                                                         \
    std::ostringstream bf_fail_os_;                            \
    bf_fail_os_ << msg;                                        \
    ::bf::detail::fail(__FILE__, __LINE__, nullptr,            \
                       bf_fail_os_.str());                     \
  } while (false)
