// bf::fault — a deterministic, seedable fault-injection registry.
//
// Real profiler pipelines fail in mundane ways: runs crash or time out,
// counter multiplexing drops events, replicates pick up noise spikes, and
// stored repositories rot on disk. The collection stack declares *named
// injection points* at exactly those seams; this registry decides, per
// evaluation, whether the fault fires. Chaos tests (tests/chaos_test.cpp)
// and operators arm points programmatically or through the environment:
//
//   BF_FAULTS="profiler.run_crash:0.05,profiler.counter_dropout:0.05"
//   BF_FAULT_SEED=42
//
// Spec grammar: `<point>:<rate>[:<max_fires>]`, comma-separated. `rate`
// is the Bernoulli fire probability in [0,1]; `max_fires` bounds how
// often the point may fire (unlimited when omitted).
//
// Determinism: every point draws from its own RNG stream, seeded from
// (global seed) ^ hash(point name), so the fire/no-fire sequence of one
// point depends only on its own evaluation order — never on which other
// points exist or how evaluations interleave. Same seed + same spec +
// same call sequence => identical faults, bit for bit.
//
// Zero cost when off: an unarmed registry is a single relaxed atomic
// load per evaluation, no RNG draws, no allocation — so fault-free runs
// are bit-identical to a build without the registry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bf::fault {

/// Seed used until reseed() / BF_FAULT_SEED overrides it.
inline constexpr std::uint64_t kDefaultSeed = 0xbf5eed5ull;

/// Canonical injection-point names wired through the collection stack.
namespace points {
/// Profiler run aborts before the workload executes (driver crash).
inline constexpr const char* kProfilerRunCrash = "profiler.run_crash";
/// Profiler run completes but is discarded as timed out.
inline constexpr const char* kProfilerRunTimeout = "profiler.run_timeout";
/// One counter value is lost (nvprof multiplexing dropout) -> NaN.
inline constexpr const char* kProfilerCounterDropout =
    "profiler.counter_dropout";
/// Measured time of a replicate spikes (background interference).
inline constexpr const char* kProfilerNoiseSpike = "profiler.noise_spike";
/// The derived power label of a replicate is wildly inflated (power-rail
/// sensor glitch); the replicate aggregation must reject it.
inline constexpr const char* kPowerLabelSpike = "power.label.spike";
/// A repository entry is truncated on disk after the write (torn write).
inline constexpr const char* kRepoTornWrite = "repo.torn_write";
/// A repository entry has one byte flipped on disk (bit rot).
inline constexpr const char* kRepoBitrot = "repo.bitrot";
/// One feature of a forest query becomes NaN before the trees see it
/// (corrupt generated feature); the forest's repair path must absorb it.
inline constexpr const char* kForestNanFeature = "ml.forest.nan_feature";
/// A counter-model prediction diverges (x1e6) before sanity checks —
/// the guard layer's fallback chain must catch and demote it.
inline constexpr const char* kCounterModelDiverge = "ml.counter_model.diverge";
/// One byte of a .bfmodel bundle flips between disk and the parser —
/// the artifact checksum must catch it and quarantine the bundle.
inline constexpr const char* kServeArtifactBitrot = "serve.artifact.bitrot";
/// A model-registry disk load fails outright (I/O error); the cache must
/// stay consistent and the next request for the key must retry.
inline constexpr const char* kServeCacheLoadFail = "serve.cache.load_fail";
/// A staged hot-reload bundle is treated as corrupt after parsing (torn
/// replacement write); the registry must quarantine the file and keep
/// serving the old generation.
inline constexpr const char* kServeReloadCorrupt = "serve.reload.corrupt";
/// Golden-probe canary validation of a loaded bundle fails (the staged
/// model disagrees with its own recorded probe outputs); on the reload
/// path the old generation must keep serving and a rollback is counted.
inline constexpr const char* kServeReloadCanaryFail =
    "serve.reload.canary_fail";
/// The connection layer skips one ready reply-write round (a stalled
/// socket); the reply must still be delivered on a later round.
inline constexpr const char* kServeNetStall = "serve.net.stall";
/// A freshly parsed request forcibly drops its connection (peer vanished
/// mid-stream); other connections must be unaffected.
inline constexpr const char* kServeNetDisconnect = "serve.net.disconnect";
}  // namespace points

struct PointStats {
  std::uint64_t evaluated = 0;
  std::uint64_t fired = 0;
};

/// True when at least one injection point is armed (fast path).
bool active();

/// Arm `point`: fire with probability `rate`; stop firing after
/// `max_fires` fires when >= 0. Re-arming a point resets its stats and
/// RNG stream.
void arm(const std::string& point, double rate,
         std::int64_t max_fires = -1);

/// Parse a `<point>:<rate>[:<max_fires>],...` spec and arm every entry.
/// Throws bf::Error on malformed specs.
void configure(const std::string& spec);

/// Arm from BF_FAULTS / BF_FAULT_SEED; no-op when BF_FAULTS is unset.
/// Runs automatically (once) on the first should_fire() evaluation, so
/// the environment works end-to-end without tool cooperation.
void configure_from_env();

/// Disarm every point and clear all stats; the seed is kept.
void reset();

/// Re-seed every per-point RNG stream (also clears armed points/stats,
/// so arm ordering cannot leak state across experiments).
void reseed(std::uint64_t seed);

/// Evaluate an injection point: false when unarmed, otherwise a
/// deterministic Bernoulli draw from the point's private stream.
bool should_fire(std::string_view point);

/// Evaluation/fire counters for one point (zeros when unknown).
PointStats stats(std::string_view point);

/// Every armed point with its stats, sorted by name.
std::vector<std::pair<std::string, PointStats>> all_stats();

/// One-line rendering of the armed points, e.g. for degradation reports.
std::string summary();

/// RAII guard for tests: arms a spec on construction, disarms on scope
/// exit, so a failing test cannot leak faults into its neighbours.
class ScopedFaults {
 public:
  ScopedFaults() { reset(); }
  explicit ScopedFaults(const std::string& spec,
                        std::uint64_t seed = kDefaultSeed) {
    reseed(seed);
    configure(spec);
  }
  ~ScopedFaults() { reset(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace bf::fault
