#include "common/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace bf::fault {
namespace {

struct Point {
  double rate = 0.0;
  std::int64_t max_fires = -1;
  PointStats stats;
  Rng rng;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
  std::uint64_t seed = kDefaultSeed;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Cheap "anything armed?" gate so unarmed evaluations cost one relaxed
// load — the zero-cost-when-off guarantee.
std::atomic<bool> g_active{false};

std::once_flag g_env_once;

void arm_locked(Registry& r, const std::string& point, double rate,
                std::int64_t max_fires) {
  BF_CHECK_MSG(!point.empty(), "fault point name is empty");
  BF_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
               "fault rate for '" << point << "' must be in [0,1], got "
                                  << rate);
  Point p;
  p.rate = rate;
  p.max_fires = max_fires;
  p.rng = Rng(r.seed ^ fnv1a64(point));
  r.points[point] = std::move(p);
  g_active.store(true, std::memory_order_relaxed);
}

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

void arm(const std::string& point, double rate, std::int64_t max_fires) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  arm_locked(r, point, rate, max_fires);
}

void configure(const std::string& spec) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const std::string& entry : split(spec, ',')) {
    const std::string_view e = trim(entry);
    if (e.empty()) continue;
    const std::vector<std::string> parts = split(e, ':');
    BF_CHECK_MSG(parts.size() == 2 || parts.size() == 3,
                 "malformed fault spec entry '"
                     << std::string(e)
                     << "' (want <point>:<rate>[:<max_fires>])");
    const double rate = parse_double(trim(parts[1]));
    const std::int64_t max_fires =
        parts.size() == 3 ? parse_int(trim(parts[2])) : -1;
    arm_locked(r, std::string(trim(parts[0])), rate, max_fires);
  }
}

void configure_from_env() {
  Registry& r = registry();
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    if (const char* seed = std::getenv("BF_FAULT_SEED")) {
      r.seed = static_cast<std::uint64_t>(parse_int(seed));
    }
  }
  if (const char* spec = std::getenv("BF_FAULTS")) {
    configure(spec);
  }
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  g_active.store(false, std::memory_order_relaxed);
}

void reseed(std::uint64_t seed) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.seed = seed;
  r.points.clear();
  g_active.store(false, std::memory_order_relaxed);
}

bool should_fire(std::string_view point) {
  std::call_once(g_env_once, [] { configure_from_env(); });
  if (!g_active.load(std::memory_order_relaxed)) return false;

  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(point);
  if (it == r.points.end()) return false;
  Point& p = it->second;
  ++p.stats.evaluated;
  if (p.rate <= 0.0) return false;
  if (p.max_fires >= 0 &&
      p.stats.fired >= static_cast<std::uint64_t>(p.max_fires)) {
    return false;
  }
  const bool fire = p.rate >= 1.0 || p.rng.uniform() < p.rate;
  if (fire) ++p.stats.fired;
  return fire;
}

PointStats stats(std::string_view point) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(point);
  return it == r.points.end() ? PointStats{} : it->second.stats;
}

std::vector<std::pair<std::string, PointStats>> all_stats() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, PointStats>> out;
  out.reserve(r.points.size());
  for (const auto& [name, p] : r.points) out.emplace_back(name, p.stats);
  return out;
}

std::string summary() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.points.empty()) return "fault injection: off";
  std::ostringstream os;
  os << "fault injection:";
  for (const auto& [name, p] : r.points) {
    os << " " << name << "(rate=" << p.rate << ", fired=" << p.stats.fired
       << "/" << p.stats.evaluated << ")";
  }
  return os.str();
}

}  // namespace bf::fault
