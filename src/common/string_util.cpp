#include "common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace bf {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double parse_double(std::string_view s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  BF_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
               "cannot parse '" << std::string(s) << "' as double");
  return v;
}

std::int64_t parse_int(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  BF_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
               "cannot parse '" << std::string(s) << "' as integer");
  return v;
}

std::string human_bytes(double bytes) {
  static const char* suffixes[] = {"B", "KB", "MB", "GB", "TB"};
  int s = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && s < 4) {
    v /= 1024.0;
    ++s;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffixes[s]);
  return buf;
}

}  // namespace bf
