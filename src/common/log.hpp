// Lightweight leveled logging to stderr.
//
// Benches and examples print their deliverable tables to stdout; diagnostic
// chatter goes through BF_LOG so it can be silenced (set_level) without
// polluting reproduction output.
#pragma once

#include <sstream>
#include <string>

namespace bf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace logging {

LogLevel level();
void set_level(LogLevel level);
void emit(LogLevel level, const std::string& msg);
const char* level_name(LogLevel level);

}  // namespace logging
}  // namespace bf

#define BF_LOG(lvl, msg)                                             \
  do {                                                               \
    if (static_cast<int>(lvl) >=                                     \
        static_cast<int>(::bf::logging::level())) {                  \
      std::ostringstream bf_log_os_;                                 \
      bf_log_os_ << msg;                                             \
      ::bf::logging::emit(lvl, bf_log_os_.str());                    \
    }                                                                \
  } while (false)

#define BF_DEBUG(msg) BF_LOG(::bf::LogLevel::kDebug, msg)
#define BF_INFO(msg) BF_LOG(::bf::LogLevel::kInfo, msg)
#define BF_WARN(msg) BF_LOG(::bf::LogLevel::kWarn, msg)
#define BF_ERROR(msg) BF_LOG(::bf::LogLevel::kError, msg)
