#include "common/io.hpp"

#include <filesystem>
#include <fstream>
#include <istream>
#include <sstream>
#include <system_error>

#include "common/error.hpp"

namespace fs = std::filesystem;

namespace bf {

void atomic_write_file(const std::string& path, std::string_view content) {
  BF_CHECK_MSG(!path.empty(), "atomic_write_file: empty path");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      BF_FAIL("cannot open for writing: " << tmp);
    }
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      BF_FAIL("write failed: " << tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    BF_FAIL("cannot rename " << tmp << " -> " << path << ": "
                             << ec.message());
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

int read_format_version(std::istream& is, const char* magic,
                        int max_supported) {
  std::string tag;
  int version = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> version),
               "truncated stream: expected '" << magic << " <version>'");
  BF_CHECK_MSG(tag == magic, "bad magic: expected '" << magic << "', got '"
                                                     << tag << "'");
  BF_CHECK_MSG(version >= 1 && version <= max_supported,
               magic << " format_version " << version
                     << " is unsupported (reader handles 1.."
                     << max_supported << ")");
  return version;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string to_hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace bf
