#include "guard/guard.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"

namespace bf::guard {

char grade_letter(Grade g) {
  switch (g) {
    case Grade::kA: return 'A';
    case Grade::kB: return 'B';
    case Grade::kC: return 'C';
  }
  return '?';
}

Grade worse(Grade a, Grade b) { return a > b ? a : b; }

// ---- DomainGuard ----

DomainGuard DomainGuard::build(const ml::Dataset& ds,
                               const std::vector<std::string>& features,
                               double margin) {
  BF_CHECK_MSG(margin >= 0.0, "negative hull margin");
  DomainGuard out;
  out.margin_ = margin;
  for (const auto& name : features) {
    if (!ds.has_column(name)) continue;
    const auto& col = ds.column(name);
    FeatureRange r;
    r.name = name;
    r.lo = 1e300;
    r.hi = -1e300;
    bool any = false;
    for (const double v : col) {
      if (!std::isfinite(v)) continue;
      r.lo = std::min(r.lo, v);
      r.hi = std::max(r.hi, v);
      any = true;
    }
    if (any) out.ranges_.push_back(r);
  }
  return out;
}

const FeatureRange* DomainGuard::range(const std::string& name) const {
  for (const auto& r : ranges_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::vector<ExtrapolationFlag> DomainGuard::check_value(
    const std::string& feature, double value) const {
  std::vector<ExtrapolationFlag> out;
  const FeatureRange* r = range(feature);
  if (r == nullptr || !std::isfinite(value)) return out;
  // A degenerate (constant) feature still has a meaningful hull: any
  // deviation is extrapolation measured in absolute units.
  const double span = r->span();
  const double slack = span * margin_;
  double beyond = 0.0;
  if (value < r->lo - slack) {
    beyond = (r->lo - slack) - value;
  } else if (value > r->hi + slack) {
    beyond = value - (r->hi + slack);
  } else {
    return out;
  }
  ExtrapolationFlag flag;
  flag.feature = feature;
  flag.value = value;
  flag.distance = span > 0.0 ? beyond / span : beyond;
  out.push_back(flag);
  return out;
}

std::vector<ExtrapolationFlag> DomainGuard::check_row(
    const ml::Dataset& ds, std::size_t row) const {
  std::vector<ExtrapolationFlag> out;
  for (const auto& r : ranges_) {
    if (!ds.has_column(r.name)) continue;
    const auto flags = check_value(r.name, ds.column(r.name)[row]);
    out.insert(out.end(), flags.begin(), flags.end());
  }
  return out;
}

// ---- GuardReport ----

Grade GuardReport::worst() const {
  Grade g = Grade::kA;
  for (const auto& p : predictions) g = worse(g, p.grade);
  return g;
}

std::size_t GuardReport::count(Grade g) const {
  std::size_t n = 0;
  for (const auto& p : predictions) {
    if (p.grade == g) ++n;
  }
  return n;
}

bool GuardReport::degraded() const {
  for (const auto& p : predictions) {
    if (p.grade != Grade::kA || p.extrapolated || !p.demotions.empty() ||
        !p.clamps.empty() || !p.notes.empty()) {
      return true;
    }
  }
  for (const auto& c : counters) {
    if (c.demotions > 0 || c.clamps > 0) return true;
  }
  return false;
}

std::string GuardReport::summary() const {
  std::ostringstream os;
  os << "guard: " << predictions.size() << " prediction(s) ("
     << count(Grade::kA) << " A, " << count(Grade::kB) << " B, "
     << count(Grade::kC) << " C)";
  return os.str();
}

std::vector<std::string> GuardReport::to_lines() const {
  std::vector<std::string> lines;
  for (const auto& p : predictions) {
    if (p.grade == Grade::kA && !p.extrapolated && p.demotions.empty() &&
        p.clamps.empty() && p.notes.empty()) {
      continue;
    }
    std::ostringstream os;
    os << "size " << p.size << " graded " << grade_letter(p.grade);
    if (p.extrapolated) {
      os << " (extrapolation:";
      for (const auto& f : p.flags) {
        os << ' ' << f.feature << '+' << std::round(f.distance * 100.0) / 100.0
           << " span";
      }
      os << ')';
    }
    lines.push_back(os.str());
    for (const auto& d : p.demotions) lines.push_back("  demoted " + d);
    for (const auto& c : p.clamps) lines.push_back("  clamped " + c);
    for (const auto& n : p.notes) lines.push_back("  " + n);
  }
  return lines;
}

Grade grade_prediction(const PredictionGuardRecord& rec,
                       const GuardOptions& options) {
  Grade g = Grade::kA;
  if (rec.interval_width > options.interval_c) {
    g = worse(g, Grade::kC);
  } else if (rec.interval_width > options.interval_b) {
    g = worse(g, Grade::kB);
  }
  if (!rec.demotions.empty() || !rec.notes.empty()) {
    g = worse(g, Grade::kB);
  }
  if (rec.extrapolated) {
    double max_distance = 0.0;
    for (const auto& f : rec.flags) {
      max_distance = std::max(max_distance, f.distance);
    }
    g = worse(g, max_distance > options.far ? Grade::kC : Grade::kB);
  }
  if (!rec.clamps.empty()) g = worse(g, Grade::kC);
  return g;
}

void DomainGuard::save(std::ostream& os) const {
  os.precision(17);
  os << "bf_hull 1\n";
  os << margin_ << ' ' << ranges_.size() << "\n";
  for (const auto& r : ranges_) {
    os << r.name << ' ' << r.lo << ' ' << r.hi << "\n";
  }
}

DomainGuard DomainGuard::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_hull", 1);
  (void)format_version;
  DomainGuard g;
  std::size_t n = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> g.margin_ >> n),
               "malformed bf_hull record");
  BF_CHECK_MSG(n <= 100'000, "bf_hull: implausible range count");
  g.ranges_.resize(n);
  for (auto& r : g.ranges_) {
    BF_CHECK_MSG(static_cast<bool>(is >> r.name >> r.lo >> r.hi),
                 "bf_hull: truncated range");
    BF_CHECK_MSG(r.lo <= r.hi, "bf_hull: inverted range for " << r.name);
  }
  return g;
}

void save_options(std::ostream& os, const GuardOptions& options) {
  os.precision(17);
  os << "bf_guard_options 1\n";
  os << (options.enabled ? 1 : 0) << ' ' << options.margin << ' '
     << options.far << ' ' << options.interval_b << ' ' << options.interval_c
     << ' ' << options.demote_slack << ' ' << options.monotone_floor << ' '
     << options.cap_tolerance << ' ' << options.cv_folds << "\n";
}

GuardOptions load_options(std::istream& is) {
  const int format_version = read_format_version(is, "bf_guard_options", 1);
  (void)format_version;
  GuardOptions o;
  int enabled = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> enabled >> o.margin >> o.far >>
                                 o.interval_b >> o.interval_c >>
                                 o.demote_slack >> o.monotone_floor >>
                                 o.cap_tolerance >> o.cv_folds),
               "malformed bf_guard_options record");
  o.enabled = enabled != 0;
  return o;
}

}  // namespace bf::guard
