// bf::guard — model-health supervision for the prediction stack.
//
// The modelling stack (random forest + GLM/MARS counter extrapolation,
// paper §5–§6) is a black box that happily answers queries far outside
// the domain it was trained on: MARS hinge models explode past the last
// knot, per-counter GLMs emit physically impossible values, and the
// forest saturates silently. Stevens & Klöckner make the point that
// black-box GPU models must know and report the domain they are valid
// in; this layer makes every prediction fail safe and self-describing:
//
//   1. DomainGuard records the training hull per feature (min/max plus a
//      configurable extrapolation margin); queries outside the hull are
//      flagged with per-feature extrapolation distances.
//   2. Counter models carry a fallback chain (MARS -> GLM -> log-log
//      linear -> power-law), demoted at predict time when the chosen
//      model violates sanity bounds (core/counter_models + predictor).
//   3. Forest per-tree spread (ml::RandomForest::predict_interval) is
//      graded: wide intervals downgrade confidence.
//   4. Everything lands in a GuardReport — per-counter chosen model, CV
//      error, clamps fired, extrapolation flags, and an A/B/C confidence
//      grade per prediction — attached to core::PredictionSeries and
//      core::AnalysisOutcome and rendered by report/guard_render.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace bf::guard {

/// Confidence grade of a prediction (or of a whole report: the worst).
///  A: in-hull, tight interval, no repairs — trust it.
///  B: usable but degraded — mild extrapolation, a demoted counter
///     model, a repaired feature, or a wide per-tree interval.
///  C: out of the validated domain — far extrapolation, physical-cap
///     clamps, or per-tree spread wider than the prediction itself.
enum class Grade { kA, kB, kC };

char grade_letter(Grade g);
Grade worse(Grade a, Grade b);

struct GuardOptions {
  /// Master switch. Off = the legacy unguarded path, bit for bit.
  bool enabled = true;
  /// Hull slack as a fraction of the per-feature training span; queries
  /// within [lo - margin*span, hi + margin*span] are not flagged.
  double margin = 0.1;
  /// Extrapolation distance (in span units beyond the margined hull)
  /// up to which a flagged query still grades B; beyond it grades C.
  double far = 0.5;
  /// Relative per-tree interval width ((hi-lo)/|mean|) thresholds:
  /// above interval_b the grade drops to B, above interval_c to C.
  /// Calibrated on the paper-sized sweeps (tens of log-spaced rows),
  /// where tree predictions hop between adjacent training sizes and an
  /// 80% band of ~1-2x the mean is the healthy in-hull regime.
  double interval_b = 1.0;
  double interval_c = 2.5;
  /// Slack factor of the sanity envelope around the power-law
  /// extrapolation / training maximum; a chain model predicting outside
  /// it is demoted.
  double demote_slack = 32.0;
  /// A monotone (non-decreasing) counter queried beyond the training
  /// maximum must predict at least this fraction of its value at the
  /// largest training size, or the model is demoted.
  double monotone_floor = 0.25;
  /// Physical-cap violations within this relative tolerance are ignored
  /// (well-fitted models sit within a few percent of hard caps).
  double cap_tolerance = 0.02;
  /// Folds for the per-counter chain cross-validation ranking.
  std::size_t cv_folds = 5;
};

/// Observed training range of one feature.
struct FeatureRange {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  double span() const { return hi - lo; }
};

/// One feature of a query falling outside the (margined) training hull.
struct ExtrapolationFlag {
  std::string feature;
  double value = 0.0;
  /// Distance beyond the margined hull, in units of the feature's
  /// training span (0 span => distance counted in absolute units).
  double distance = 0.0;
};

/// Per-feature training hull with an extrapolation margin (piece 1 of
/// the guard layer). Built once at fit time, queried per prediction.
class DomainGuard {
 public:
  DomainGuard() = default;

  /// Record min/max of every named feature column of `ds`.
  static DomainGuard build(const ml::Dataset& ds,
                           const std::vector<std::string>& features,
                           double margin);

  bool empty() const { return ranges_.empty(); }
  const std::vector<FeatureRange>& ranges() const { return ranges_; }
  double margin() const { return margin_; }
  /// Range of one feature; nullptr when the feature is not tracked.
  const FeatureRange* range(const std::string& name) const;

  /// Check a single feature value; empty vector when in hull.
  std::vector<ExtrapolationFlag> check_value(const std::string& feature,
                                             double value) const;
  /// Check every tracked feature present in `ds` at `row`.
  std::vector<ExtrapolationFlag> check_row(const ml::Dataset& ds,
                                           std::size_t row) const;

  /// Serialise the hull (ranges + margin) for .bfmodel bundles.
  void save(std::ostream& os) const;
  static DomainGuard load(std::istream& is);

 private:
  std::vector<FeatureRange> ranges_;
  double margin_ = 0.1;
};

/// Fit-time record for one guarded counter model.
struct CounterGuardRecord {
  std::string counter;
  std::string chosen;  ///< primary model ("glm", "mars", ...)
  double r2 = 0.0;
  /// K-fold CV RMSE of the primary model (0 when the chain was not fit).
  double cv_rmse = 0.0;
  /// Demotion order, primary first.
  std::vector<std::string> chain;
  /// Predict-time events accumulated across queries.
  int demotions = 0;
  int clamps = 0;
};

/// Per-prediction guard verdict.
struct PredictionGuardRecord {
  double size = 0.0;
  double value = 0.0;      ///< final (guarded) prediction
  double raw_value = 0.0;  ///< before physical-cap clamps
  double lo = 0.0;         ///< per-tree quantile interval
  double hi = 0.0;
  double interval_width = 0.0;  ///< (hi - lo) / |value|
  Grade grade = Grade::kA;
  bool extrapolated = false;
  std::vector<ExtrapolationFlag> flags;
  std::vector<std::string> demotions;  ///< "counter: mars -> glm (reason)"
  std::vector<std::string> clamps;     ///< "counter: 1.2e9 -> 3e8 (reason)"
  std::vector<std::string> notes;      ///< e.g. repaired NaN features
};

/// The self-description attached to PredictionSeries / AnalysisOutcome.
struct GuardReport {
  bool enabled = false;
  GuardOptions options;
  std::vector<FeatureRange> hull;
  std::vector<CounterGuardRecord> counters;
  std::vector<PredictionGuardRecord> predictions;

  Grade worst() const;
  std::size_t count(Grade g) const;
  /// True when any prediction was flagged, demoted, clamped or graded
  /// below A — i.e. the report carries something worth surfacing.
  bool degraded() const;
  /// Human-readable warning lines (for report::warn_list).
  std::vector<std::string> to_lines() const;
  /// One-line summary, e.g. "guard: 5 predictions (3 A, 1 B, 1 C)".
  std::string summary() const;
};

/// Grade one prediction record from its accumulated evidence.
Grade grade_prediction(const PredictionGuardRecord& rec,
                       const GuardOptions& options);

/// Serialise/restore the guard thresholds so a reloaded .bfmodel bundle
/// grades predictions exactly as the exporting predictor did.
void save_options(std::ostream& os, const GuardOptions& options);
GuardOptions load_options(std::istream& is);

}  // namespace bf::guard
