#include "guard/physical.hpp"

#include <cmath>
#include <sstream>

namespace bf::guard {
namespace {

std::string format_value(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

}  // namespace

std::vector<PhysicalCap> ratio_caps() {
  std::vector<PhysicalCap> caps;
  for (const char* name :
       {"achieved_occupancy", "warp_execution_efficiency",
        "issue_slot_utilization", "gld_efficiency", "gst_efficiency",
        "flop_sp_efficiency"}) {
    caps.push_back({name, 1.0, "ratio metric <= 1"});
  }
  return caps;
}

std::vector<PhysicalCap> static_caps(const gpusim::ArchSpec& arch) {
  std::vector<PhysicalCap> caps = ratio_caps();
  const double issue_width =
      static_cast<double>(arch.warp_schedulers_per_sm) *
      static_cast<double>(arch.dispatch_units_per_scheduler);
  caps.push_back({"ipc", issue_width,
                  "IPC <= schedulers x dispatch units (" +
                      format_value(issue_width) + ")"});
  caps.push_back({"dram_read_throughput", arch.mem_bandwidth_gbs,
                  "DRAM read throughput <= " +
                      format_value(arch.mem_bandwidth_gbs) + " GB/s"});
  caps.push_back({"dram_write_throughput", arch.mem_bandwidth_gbs,
                  "DRAM write throughput <= " +
                      format_value(arch.mem_bandwidth_gbs) + " GB/s"});
  return caps;
}

std::vector<PhysicalCap> time_caps(const gpusim::ArchSpec& arch,
                                   double predicted_time_ms) {
  std::vector<PhysicalCap> caps;
  if (!(predicted_time_ms > 0.0) || !std::isfinite(predicted_time_ms)) {
    return caps;
  }
  const double time_s = predicted_time_ms * 1e-3;
  // The memory bus cannot move more than bandwidth x time bytes; DRAM
  // transactions are l2_transaction_bytes-sized segments of that budget.
  const double bus_bytes = arch.mem_bandwidth_gbs * 1e9 * time_s;
  const double max_transactions =
      bus_bytes / static_cast<double>(arch.l2_transaction_bytes);
  const std::string bus_reason =
      "bandwidth x predicted time allows <= " +
      format_value(max_transactions) + " transactions";
  caps.push_back({"dram_read_transactions", max_transactions, bus_reason});
  caps.push_back({"dram_write_transactions", max_transactions, bus_reason});
  // The schedulers cannot issue more warp instructions than
  // SMs x schedulers x dispatch units x clock x time.
  const double max_issued = static_cast<double>(arch.sm_count) *
                            static_cast<double>(arch.warp_schedulers_per_sm) *
                            static_cast<double>(
                                arch.dispatch_units_per_scheduler) *
                            arch.clock_ghz * 1e9 * time_s;
  const std::string issue_reason =
      "issue rate x predicted time allows <= " + format_value(max_issued) +
      " warp instructions";
  caps.push_back({"inst_executed", max_issued, issue_reason});
  caps.push_back({"inst_issued", max_issued, issue_reason});
  return caps;
}

std::vector<ClampEvent> clamp_row_to_caps(
    ml::Dataset& features, std::size_t row,
    const std::vector<PhysicalCap>& caps, double tolerance) {
  std::vector<ClampEvent> events;
  for (const auto& cap : caps) {
    if (!features.has_column(cap.counter)) continue;
    auto& col = features.mutable_column(cap.counter);
    const double v = col[row];
    if (!std::isfinite(v)) continue;
    if (v <= cap.max_value * (1.0 + tolerance)) continue;
    events.push_back({cap.counter, v, cap.max_value, cap.reason});
    col[row] = cap.max_value;
  }
  return events;
}

double clamp_power_to_envelope(const gpusim::ArchSpec& arch, double watts,
                               double tolerance,
                               std::vector<ClampEvent>& events) {
  if (!std::isfinite(watts)) return watts;
  if (watts > arch.tdp_w * (1.0 + tolerance)) {
    events.push_back({"power_avg_w", watts, arch.tdp_w,
                      "board power <= TDP (" + format_value(arch.tdp_w) +
                          " W on " + arch.name + ")"});
    return arch.tdp_w;
  }
  if (watts < arch.idle_w * (1.0 - tolerance)) {
    events.push_back({"power_avg_w", watts, arch.idle_w,
                      "board power >= idle floor (" +
                          format_value(arch.idle_w) + " W on " + arch.name +
                          ")"});
    return arch.idle_w;
  }
  return watts;
}

}  // namespace bf::guard
