// Physical caps for predicted counter values, derived from the
// architecture specs (gpusim/arch) and the counter registry's
// monotonicity hints. A counter model extrapolating a problem size can
// emit values no real GPU could produce — more DRAM transactions than
// the bus can move in the predicted time, ratio metrics above 1, IPC
// above the issue width. The guard layer clamps predictions to these
// caps and records every clamp (grade C: the model left its domain).
#pragma once

#include <string>
#include <vector>

#include "gpusim/arch.hpp"
#include "ml/dataset.hpp"

namespace bf::guard {

/// Upper bound on one counter, with the physical law it comes from.
struct PhysicalCap {
  std::string counter;
  double max_value = 0.0;
  std::string reason;
};

/// One applied clamp (value exceeded its cap beyond tolerance).
struct ClampEvent {
  std::string counter;
  double from = 0.0;
  double to = 0.0;
  std::string reason;
};

/// Architecture-independent caps: ratio metrics live in [0, 1].
std::vector<PhysicalCap> ratio_caps();

/// Caps that need the architecture but no timing context (IPC vs issue
/// width, DRAM throughput vs memory bandwidth). Includes ratio_caps().
std::vector<PhysicalCap> static_caps(const gpusim::ArchSpec& arch);

/// Caps derived from a predicted execution time: transaction and
/// instruction counts bounded by bandwidth x time and issue rate x time.
std::vector<PhysicalCap> time_caps(const gpusim::ArchSpec& arch,
                                   double predicted_time_ms);

/// Clamp `row` of the feature dataset to `caps`, tolerating relative
/// violations up to `tolerance` (well-fitted models sit within a few
/// percent of hard caps; those are not guard events). Returns the
/// clamps actually applied.
std::vector<ClampEvent> clamp_row_to_caps(ml::Dataset& features,
                                          std::size_t row,
                                          const std::vector<PhysicalCap>& caps,
                                          double tolerance);

/// Clamp a predicted average board power (W) into the arch's physical
/// envelope [idle_w, tdp_w], tolerating relative violations up to
/// `tolerance`. Appends a ClampEvent per applied clamp; non-finite
/// inputs pass through untouched (the prediction guard flags those).
double clamp_power_to_envelope(const gpusim::ArchSpec& arch, double watts,
                               double tolerance,
                               std::vector<ClampEvent>& events);

}  // namespace bf::guard
