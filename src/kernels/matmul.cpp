#include "kernels/matmul.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "kernels/kernel_base.hpp"

namespace bf::kernels {

using gpusim::LaunchGeometry;
using gpusim::Op;
using gpusim::TraceSink;

MatMulKernel::MatMulKernel(int n, int tile) : n_(n), tile_(tile) {
  BF_CHECK_MSG(tile >= 8 && tile <= 32, "tile must be in [8,32]");
  BF_CHECK_MSG(n >= tile && n % tile == 0,
               "n (" << n << ") must be a positive multiple of tile ("
                     << tile << ")");
  AddressSpace mem;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * n * 4;
  a_base_ = mem.alloc(bytes);
  b_base_ = mem.alloc(bytes);
  c_base_ = mem.alloc(bytes);
}

LaunchGeometry MatMulKernel::geometry() const {
  LaunchGeometry g;
  const int blocks_per_dim = n_ / tile_;
  g.grid_x = blocks_per_dim;
  g.grid_y = blocks_per_dim;
  g.block_x = tile_;
  g.block_y = tile_;
  g.shared_mem_per_block = 2 * tile_ * tile_ * 4;  // As + Bs
  g.registers_per_thread = 22;
  return g;
}

void MatMulKernel::emit_warp(int block, int warp, TraceSink& sink) const {
  const int blocks_per_dim = n_ / tile_;
  const int bx = block % blocks_per_dim;
  const int by = block / blocks_per_dim;
  const int threads = tile_ * tile_;
  const int lanes = std::clamp(threads - warp * 32, 0, 32);
  if (lanes <= 0) return;
  const std::uint32_t scope = gpusim::mask_first_lanes(lanes);

  // Flat thread id -> (tx, ty) within the tile.
  const auto tx = [&](int lane) { return (warp * 32 + lane) % tile_; };
  const auto ty = [&](int lane) { return (warp * 32 + lane) / tile_; };

  // Shared layout: As at word offset 0, Bs right after.
  const std::uint32_t bs_off = static_cast<std::uint32_t>(tile_ * tile_) * 4;

  sink.alu(scope, 4, Op::kIAlu);  // aBegin/aEnd/bBegin/Csub setup

  const int num_tiles = n_ / tile_;
  for (int t = 0; t < num_tiles; ++t) {
    // As[ty][tx] = A[(by*tile + ty) * n + t*tile + tx];
    sink.global_load(scope, lane_addrs([&](int lane) {
      const std::int64_t row = static_cast<std::int64_t>(by) * tile_ + ty(lane);
      const std::int64_t col = static_cast<std::int64_t>(t) * tile_ + tx(lane);
      return a_base_ + 4u * static_cast<std::uint32_t>(row * n_ + col);
    }));
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(ty(lane) * tile_ + tx(lane));
    }));
    // Bs[ty][tx] = B[(t*tile + ty) * n + bx*tile + tx];
    sink.global_load(scope, lane_addrs([&](int lane) {
      const std::int64_t row = static_cast<std::int64_t>(t) * tile_ + ty(lane);
      const std::int64_t col = static_cast<std::int64_t>(bx) * tile_ + tx(lane);
      return b_base_ + 4u * static_cast<std::uint32_t>(row * n_ + col);
    }));
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return bs_off +
             4u * static_cast<std::uint32_t>(ty(lane) * tile_ + tx(lane));
    }));
    sink.sync();

    // for (k = 0; k < tile; ++k) Csub += As[ty][k] * Bs[k][tx];
    for (int k = 0; k < tile_; ++k) {
      sink.shared_load(scope, lane_addrs([&](int lane) {
        return 4u * static_cast<std::uint32_t>(ty(lane) * tile_ + k);
      }));
      sink.shared_load(scope, lane_addrs([&](int lane) {
        return bs_off +
               4u * static_cast<std::uint32_t>(k * tile_ + tx(lane));
      }));
      sink.alu(scope, 1, Op::kFAlu);  // fused multiply-add
    }
    sink.alu(scope, 1, Op::kIAlu);  // advance tile pointers
    sink.sync();
  }

  // C[(by*tile + ty) * n + bx*tile + tx] = Csub;
  sink.global_store(scope, lane_addrs([&](int lane) {
    const std::int64_t row = static_cast<std::int64_t>(by) * tile_ + ty(lane);
    const std::int64_t col = static_cast<std::int64_t>(bx) * tile_ + tx(lane);
    return c_base_ + 4u * static_cast<std::uint32_t>(row * n_ + col);
  }));
}

std::vector<double> matmul_reference(const std::vector<double>& a,
                                     const std::vector<double>& b, int n) {
  BF_CHECK_MSG(a.size() == static_cast<std::size_t>(n) * n &&
                   b.size() == a.size(),
               "matmul_reference: size mismatch");
  std::vector<double> c(a.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      const double av = a[static_cast<std::size_t>(i) * n + k];
      if (av == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i) * n + j] +=
            av * b[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
  return c;
}

gpusim::AggregateResult simulate_matmul(const gpusim::Device& device, int n,
                                        int tile,
                                        const gpusim::RunOptions& opts) {
  gpusim::AggregateResult agg;
  const MatMulKernel kernel(n, tile);
  agg.add(device.run(kernel, opts));
  return agg;
}

}  // namespace bf::kernels
