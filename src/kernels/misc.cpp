#include "kernels/misc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "kernels/kernel_base.hpp"

namespace bf::kernels {

using gpusim::LaunchGeometry;
using gpusim::Op;
using gpusim::TraceSink;

// ---- VecAdd ----

VecAddKernel::VecAddKernel(std::int64_t n, int block_size)
    : n_(n), block_(block_size) {
  BF_CHECK_MSG(n >= 1, "empty vector");
  BF_CHECK_MSG(block_size >= 32 && block_size % 32 == 0,
               "block size must be a positive multiple of 32");
  AddressSpace mem;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * 4;
  a_base_ = mem.alloc(bytes);
  b_base_ = mem.alloc(bytes);
  c_base_ = mem.alloc(bytes);
}

LaunchGeometry VecAddKernel::geometry() const {
  LaunchGeometry g;
  g.grid_x = static_cast<int>((n_ + block_ - 1) / block_);
  g.block_x = block_;
  g.registers_per_thread = 10;
  return g;
}

void VecAddKernel::emit_warp(int block, int warp, TraceSink& sink) const {
  const std::uint32_t scope = gpusim::kFullMask;
  const auto idx = [&](int lane) {
    return static_cast<std::int64_t>(block) * block_ + warp * 32 + lane;
  };
  const std::uint32_t active =
      scope & mask_where([&](int lane) { return idx(lane) < n_; });
  if (active == 0) return;
  sink.alu(scope, 2, Op::kIAlu);
  sink.branch(scope, diverges(active, scope));
  sink.global_load(active, lane_addrs([&](int lane) {
    return a_base_ + 4u * static_cast<std::uint32_t>(idx(lane));
  }));
  sink.global_load(active, lane_addrs([&](int lane) {
    return b_base_ + 4u * static_cast<std::uint32_t>(idx(lane));
  }));
  sink.alu(active, 1, Op::kFAlu);
  sink.global_store(active, lane_addrs([&](int lane) {
    return c_base_ + 4u * static_cast<std::uint32_t>(idx(lane));
  }));
}

// ---- Transpose ----

TransposeKernel::TransposeKernel(int n, TransposeVariant variant)
    : n_(n), variant_(variant) {
  BF_CHECK_MSG(n >= 32 && n % 32 == 0, "n must be a positive multiple of 32");
  AddressSpace mem;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * n * 4;
  in_base_ = mem.alloc(bytes);
  out_base_ = mem.alloc(bytes);
}

std::string TransposeKernel::name() const {
  switch (variant_) {
    case TransposeVariant::kNaive: return "transposeNaive";
    case TransposeVariant::kTiled: return "transposeTiled";
    case TransposeVariant::kTiledPadded: return "transposeTiledPadded";
  }
  return "transpose";
}

LaunchGeometry TransposeKernel::geometry() const {
  LaunchGeometry g;
  const int tiles = n_ / 32;
  g.grid_x = tiles;
  g.grid_y = tiles;
  g.block_x = 32;
  g.block_y = 8;  // each thread handles 4 rows of the 32x32 tile
  if (variant_ != TransposeVariant::kNaive) {
    const int pitch = variant_ == TransposeVariant::kTiledPadded ? 33 : 32;
    g.shared_mem_per_block = 32 * pitch * 4;
  }
  g.registers_per_thread = 14;
  return g;
}

void TransposeKernel::emit_warp(int block, int warp, TraceSink& sink) const {
  const std::uint32_t scope = gpusim::kFullMask;
  const int tiles = n_ / 32;
  const int bx = block % tiles;
  const int by = block / tiles;
  // blockDim = (32, 8): warp w covers row group ty = w (lanes are tx).
  const int ty = warp;

  const auto in_addr = [&](std::int64_t row, std::int64_t col) {
    return in_base_ + 4u * static_cast<std::uint32_t>(row * n_ + col);
  };
  const auto out_addr = [&](std::int64_t row, std::int64_t col) {
    return out_base_ + 4u * static_cast<std::uint32_t>(row * n_ + col);
  };

  sink.alu(scope, 3, Op::kIAlu);
  if (variant_ == TransposeVariant::kNaive) {
    // Each thread copies 4 elements: out[x][y] = in[y][x].
    for (int rep = 0; rep < 4; ++rep) {
      const int row = ty + rep * 8;
      sink.global_load(scope, lane_addrs([&](int lane) {
        return in_addr(static_cast<std::int64_t>(by) * 32 + row,
                       static_cast<std::int64_t>(bx) * 32 + lane);
      }));
      // Store column-wise: lane addresses stride n_ apart -> uncoalesced.
      sink.global_store(scope, lane_addrs([&](int lane) {
        return out_addr(static_cast<std::int64_t>(bx) * 32 + lane,
                        static_cast<std::int64_t>(by) * 32 + row);
      }));
    }
    return;
  }

  const int pitch = variant_ == TransposeVariant::kTiledPadded ? 33 : 32;
  // Load phase: tile[ty+rep*8][tx] = in[...]; coalesced loads, row-major
  // shared stores (conflict-free for either pitch).
  for (int rep = 0; rep < 4; ++rep) {
    const int row = ty + rep * 8;
    sink.global_load(scope, lane_addrs([&](int lane) {
      return in_addr(static_cast<std::int64_t>(by) * 32 + row,
                     static_cast<std::int64_t>(bx) * 32 + lane);
    }));
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(row * pitch + lane);
    }));
  }
  sink.sync();
  // Store phase: out[...] = tile[tx][ty+rep*8]; the shared *load* walks a
  // tile column — pitch 32 puts all 32 lanes in one bank (32-way
  // conflict), pitch 33 spreads them across banks.
  for (int rep = 0; rep < 4; ++rep) {
    const int row = ty + rep * 8;
    sink.shared_load(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(lane * pitch + row);
    }));
    sink.global_store(scope, lane_addrs([&](int lane) {
      return out_addr(static_cast<std::int64_t>(bx) * 32 + row,
                      static_cast<std::int64_t>(by) * 32 + lane);
    }));
  }
}

// ---- Histogram ----

HistogramKernel::HistogramKernel(std::int64_t n, int bins, double skew,
                                 int block_size)
    : n_(n), bins_(bins), skew_(skew), block_(block_size) {
  BF_CHECK_MSG(n >= 1, "empty input");
  BF_CHECK_MSG(bins >= 2 && bins <= 4096, "bins must be in [2, 4096]");
  BF_CHECK_MSG(skew >= 0.0 && skew <= 1.0, "skew must be in [0,1]");
  BF_CHECK_MSG(block_size >= 64 && block_size % 32 == 0,
               "block size must be a multiple of 32, >= 64");
  // Grid-stride kernel: cap the grid like reduce6 so threads loop.
  grid_ = static_cast<int>(
      std::min<std::int64_t>(128, (n + block_size - 1) / block_size));
  AddressSpace mem;
  in_base_ = mem.alloc(static_cast<std::uint64_t>(n) * 4);
  out_base_ = mem.alloc(static_cast<std::uint64_t>(bins) * 4);
}

gpusim::LaunchGeometry HistogramKernel::geometry() const {
  gpusim::LaunchGeometry g;
  g.grid_x = grid_;
  g.block_x = block_;
  g.shared_mem_per_block = bins_ * 4;
  g.registers_per_thread = 16;
  return g;
}

int HistogramKernel::bin_of(std::int64_t element) const {
  // splitmix-style hash for the uniform part.
  std::uint64_t z = static_cast<std::uint64_t>(element) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  const int uniform_bin =
      static_cast<int>(z % static_cast<std::uint64_t>(bins_));
  // With probability `skew_` (deterministically derived from the hash),
  // the element collapses into bin 0.
  const double u = static_cast<double>((z >> 11) & 0xfffffu) / 1048576.0;
  return u < skew_ ? 0 : uniform_bin;
}

void HistogramKernel::emit_warp(int block, int warp,
                                TraceSink& sink) const {
  const std::uint32_t scope = gpusim::kFullMask;
  const std::int64_t stride = static_cast<std::int64_t>(grid_) * block_;
  std::int64_t base = static_cast<std::int64_t>(block) * block_ + warp * 32;

  // Zero the shared histogram cooperatively (bins/block_ words each).
  sink.shared_store(scope, lane_addrs([&](int lane) {
    return 4u * static_cast<std::uint32_t>((warp * 32 + lane) % bins_);
  }));
  sink.sync();

  while (base < n_) {
    const std::uint32_t active =
        scope & mask_where([&](int lane) { return base + lane < n_; });
    sink.branch(scope, diverges(active, scope));
    if (active == 0) break;
    sink.global_load(active, lane_addrs([&](int lane) {
      return in_base_ + 4u * static_cast<std::uint32_t>(base + lane);
    }));
    sink.alu(active, 2, Op::kIAlu);  // bin computation
    sink.shared_atomic(active, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(bin_of(base + lane));
    }));
    sink.alu(scope, 1, Op::kIAlu);  // index advance
    base += stride;
  }
  sink.sync();
  // Flush the shared histogram to global memory (bins spread over the
  // block's threads; only warp 0 emits the tail if bins < block).
  if (warp * 32 < bins_) {
    const std::uint32_t active = scope & mask_where([&](int lane) {
      return warp * 32 + lane < bins_;
    });
    if (active != 0) {
      sink.shared_load(active, lane_addrs([&](int lane) {
        return 4u * static_cast<std::uint32_t>(warp * 32 + lane);
      }));
      // Real histogram kernels use global atomics here; model the store
      // plus serialisation-free traffic.
      sink.global_store(active, lane_addrs([&](int lane) {
        return out_base_ + 4u * static_cast<std::uint32_t>(warp * 32 + lane);
      }));
    }
  }
}

// ---- Stencil ----

Stencil5Kernel::Stencil5Kernel(int n, int block_size)
    : n_(n), block_(block_size) {
  BF_CHECK_MSG(n >= 3, "grid too small for a 5-point stencil");
  BF_CHECK_MSG(block_size >= 32 && block_size % 32 == 0,
               "block size must be a positive multiple of 32");
  AddressSpace mem;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * 4;
  in_base_ = mem.alloc(bytes);
  out_base_ = mem.alloc(bytes);
}

LaunchGeometry Stencil5Kernel::geometry() const {
  LaunchGeometry g;
  const std::int64_t interior =
      static_cast<std::int64_t>(n_ - 2) * (n_ - 2);
  g.grid_x = static_cast<int>((interior + block_ - 1) / block_);
  g.block_x = block_;
  g.registers_per_thread = 16;
  return g;
}

void Stencil5Kernel::emit_warp(int block, int warp, TraceSink& sink) const {
  const std::uint32_t scope = gpusim::kFullMask;
  const std::int64_t interior_w = n_ - 2;
  const std::int64_t interior = interior_w * interior_w;
  const auto flat = [&](int lane) {
    return static_cast<std::int64_t>(block) * block_ + warp * 32 + lane;
  };
  const std::uint32_t active =
      scope & mask_where([&](int lane) { return flat(lane) < interior; });
  if (active == 0) return;
  const auto cell_addr = [&](int lane, int dr, int dc) {
    const std::int64_t f = flat(lane);
    const std::int64_t r = f / interior_w + 1 + dr;
    const std::int64_t c = f % interior_w + 1 + dc;
    return in_base_ + 4u * static_cast<std::uint32_t>(r * n_ + c);
  };

  sink.alu(scope, 4, Op::kIAlu);
  sink.branch(scope, diverges(active, scope));
  static constexpr int kOffsets[5][2] = {
      {0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  for (const auto& off : kOffsets) {
    sink.global_load(active, lane_addrs([&](int lane) {
      return cell_addr(lane, off[0], off[1]);
    }));
    sink.alu(active, 1, Op::kFAlu);
  }
  sink.global_store(active, lane_addrs([&](int lane) {
    const std::int64_t f = flat(lane);
    const std::int64_t r = f / interior_w + 1;
    const std::int64_t c = f % interior_w + 1;
    return out_base_ + 4u * static_cast<std::uint32_t>(r * n_ + c);
  }));
}

}  // namespace bf::kernels
