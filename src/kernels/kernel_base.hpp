// Helpers shared by the kernel library.
//
// Kernels in bf::kernels mirror real CUDA SDK / Rodinia sources: the warp
// traces they emit reproduce the exact per-lane address arithmetic of the
// original kernels, so coalescing, cache behaviour, bank conflicts and
// divergence arise from the same mechanisms as on hardware.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "gpusim/trace.hpp"

namespace bf::kernels {

/// Build a 32-lane address array from a lambda lane -> byte address.
/// Lanes outside the accompanying mask may hold anything; keep them 0.
template <typename F>
std::array<std::uint32_t, 32> lane_addrs(F&& f) {
  std::array<std::uint32_t, 32> a{};
  for (int lane = 0; lane < 32; ++lane) {
    a[static_cast<std::size_t>(lane)] =
        static_cast<std::uint32_t>(f(lane));
  }
  return a;
}

/// Build a lane mask from a predicate lane -> bool.
template <typename F>
std::uint32_t mask_where(F&& pred) {
  std::uint32_t m = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (pred(lane)) m |= (1u << lane);
  }
  return m;
}

/// True when `mask` is a strict, non-empty subset of `scope` — i.e. the
/// branch guarding it diverged within the warp.
inline bool diverges(std::uint32_t mask, std::uint32_t scope) {
  return mask != 0 && mask != scope;
}

/// Trivial bump allocator handing out disjoint global-memory regions, so
/// different buffers of one kernel never alias in the cache models.
class AddressSpace {
 public:
  /// Reserve `bytes`, aligned to 256 B; returns the base address.
  std::uint32_t alloc(std::uint64_t bytes) {
    const std::uint32_t base = next_;
    const std::uint64_t aligned = (bytes + 255ull) & ~255ull;
    next_ += static_cast<std::uint32_t>(aligned);
    return base;
  }

 private:
  std::uint32_t next_ = 256;  // keep address 0 unused
};

}  // namespace bf::kernels
