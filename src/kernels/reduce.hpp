// The CUDA SDK parallel-reduction optimisation ladder (Harris, "Optimizing
// Parallel Reduction in CUDA"), kernels reduce0 .. reduce6.
//
// The paper's §5 analyses reduce1 (strided shared-memory indexing → bank
// conflicts), reduce2 (sequential addressing → idle threads) and reduce6
// (fully optimised, multiple elements per thread). We implement the whole
// ladder so the optimisation story can be reproduced end to end:
//   reduce0  interleaved addressing, modulo test        -> divergence
//   reduce1  interleaved addressing, strided index      -> bank conflicts
//   reduce2  sequential addressing                      -> idle threads
//   reduce3  first add during global load               -> halved blocks
//   reduce4  unroll the last warp                       -> fewer syncs
//   reduce5  completely unrolled loop                   -> less overhead
//   reduce6  multiple elements per thread (grid-stride) -> full throughput
//   reduce7  warp-shuffle reduction (Kepler-era SDK): no shared-memory
//            tree at all — partial sums travel through registers
#pragma once

#include <cstdint>

#include "gpusim/engine.hpp"
#include "gpusim/trace.hpp"

namespace bf::kernels {

/// One launch of a reduction kernel over `n` input elements.
class ReduceKernel final : public gpusim::TraceKernel {
 public:
  /// `variant` in [0,7]. For variants 6 and 7, `grid_blocks` fixes the
  /// grid (the SDK caps it at 64); other variants derive the grid from n.
  ReduceKernel(int variant, std::int64_t n, int block_size,
               int grid_blocks = 0);

  std::string name() const override;
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

  int variant() const { return variant_; }
  /// Number of partial sums this launch produces (= grid blocks).
  std::int64_t output_elems() const { return geometry().num_blocks(); }

 private:
  void emit_load_phase(int block, int warp, std::uint32_t warp_scope,
                       gpusim::TraceSink& sink) const;
  void emit_tree_phase(int block, int warp, std::uint32_t warp_scope,
                       gpusim::TraceSink& sink) const;
  void emit_last_warp_unroll(int warp, std::uint32_t warp_scope,
                             gpusim::TraceSink& sink) const;
  void emit_shuffle_phase(int block, int warp, std::uint32_t warp_scope,
                          gpusim::TraceSink& sink) const;
  void emit_store_phase(int block, int warp, gpusim::TraceSink& sink) const;

  int variant_;
  std::int64_t n_;
  int block_;
  int grid_;
  std::uint32_t in_base_ = 0;
  std::uint32_t out_base_ = 0;
};

/// Functional reference: what the GPU kernels compute (for correctness
/// tests of the launch/grid math).
double reduce_reference(const std::vector<double>& values);

/// Host-side driver: run the full multi-launch reduction of `n` elements
/// (kernel launches until one value remains) and aggregate counters/time,
/// as nvprof aggregates over an application run.
gpusim::AggregateResult simulate_reduction(const gpusim::Device& device,
                                           int variant, std::int64_t n,
                                           int block_size = 256,
                                           const gpusim::RunOptions& opts = {});

}  // namespace bf::kernels
