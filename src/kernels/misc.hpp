// Additional kernels exercising distinct bottleneck signatures, used by
// the examples and the extended test suite:
//  - VecAddKernel: perfectly coalesced streaming, the bandwidth baseline;
//  - TransposeKernel: naive (uncoalesced stores), tiled (bank conflicts on
//    the tile columns), and tiled-padded (conflict-free) variants — the
//    canonical optimisation pair for a user-authored analysis;
//  - Stencil5Kernel: 5-point stencil with high L1/L2 reuse.
#pragma once

#include <cstdint>

#include "gpusim/engine.hpp"
#include "gpusim/trace.hpp"

namespace bf::kernels {

class VecAddKernel final : public gpusim::TraceKernel {
 public:
  explicit VecAddKernel(std::int64_t n, int block_size = 256);

  std::string name() const override { return "vecAdd"; }
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

 private:
  std::int64_t n_;
  int block_;
  std::uint32_t a_base_ = 0;
  std::uint32_t b_base_ = 0;
  std::uint32_t c_base_ = 0;
};

enum class TransposeVariant {
  kNaive,        ///< out[j][i] = in[i][j]: column-strided stores
  kTiled,        ///< 32x32 shared tile, unpadded: 32-way bank conflicts
  kTiledPadded,  ///< 32x33 shared tile: conflict-free
};

class TransposeKernel final : public gpusim::TraceKernel {
 public:
  /// n x n single-precision matrix; n must be a multiple of 32.
  TransposeKernel(int n, TransposeVariant variant);

  std::string name() const override;
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

 private:
  int n_;
  TransposeVariant variant_;
  std::uint32_t in_base_ = 0;
  std::uint32_t out_base_ = 0;
};

/// Shared-memory histogram: each thread grid-strides over the input and
/// atomicAdds into a per-block shared histogram. The bottleneck signature
/// is atomic contention — serialisation that grows as the input
/// distribution skews toward few bins. `skew` in [0,1]: 0 = uniform bins,
/// 1 = every element hits bin 0 (worst case: warp-wide 32-pass atomics).
class HistogramKernel final : public gpusim::TraceKernel {
 public:
  HistogramKernel(std::int64_t n, int bins = 256, double skew = 0.0,
                  int block_size = 256);

  std::string name() const override { return "histogram"; }
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

  /// The bin a given element lands in (deterministic hash + skew mix).
  int bin_of(std::int64_t element) const;

 private:
  std::int64_t n_;
  int bins_;
  double skew_;
  int block_;
  int grid_;
  std::uint32_t in_base_ = 0;
  std::uint32_t out_base_ = 0;
};

class Stencil5Kernel final : public gpusim::TraceKernel {
 public:
  /// n x n grid, interior points updated from 4 neighbours + centre.
  explicit Stencil5Kernel(int n, int block_size = 256);

  std::string name() const override { return "stencil5"; }
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

 private:
  int n_;
  int block_;
  std::uint32_t in_base_ = 0;
  std::uint32_t out_base_ = 0;
};

}  // namespace bf::kernels
