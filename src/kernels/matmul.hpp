// Tiled (shared-memory) matrix multiplication, as in the CUDA SDK
// `matrixMul` sample the paper's §6.1.1 uses: C = A * B for n x n
// matrices, computed by a grid of (n/b) x (n/b) blocks of b x b threads;
// each block stages b x b tiles of A and B through shared memory.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/engine.hpp"
#include "gpusim/trace.hpp"

namespace bf::kernels {

class MatMulKernel final : public gpusim::TraceKernel {
 public:
  /// n must be a multiple of tile (the SDK sample has the same
  /// restriction). tile*tile must be <= 1024 threads.
  explicit MatMulKernel(int n, int tile = 16);

  std::string name() const override { return "matrixMul"; }
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

  int n() const { return n_; }
  int tile() const { return tile_; }

 private:
  int n_;
  int tile_;
  std::uint32_t a_base_ = 0;
  std::uint32_t b_base_ = 0;
  std::uint32_t c_base_ = 0;
};

/// Functional reference of the tiled algorithm (tests the index math the
/// trace emitter is built on).
std::vector<double> matmul_reference(const std::vector<double>& a,
                                     const std::vector<double>& b, int n);

/// Run one matrix-multiply launch and return its aggregate (single-launch
/// application).
gpusim::AggregateResult simulate_matmul(const gpusim::Device& device, int n,
                                        int tile = 16,
                                        const gpusim::RunOptions& opts = {});

}  // namespace bf::kernels
