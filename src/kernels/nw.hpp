// Needleman-Wunsch sequence alignment, after the Rodinia GPU
// implementation (`needle`) analysed in the paper's §6.1.2:
//  - the (len+1)^2 score matrix is processed in 16x16 tiles along
//    anti-diagonal strips, one kernel launch per strip;
//  - kernel 1 walks strips from the top-left, kernel 2 from the
//    bottom-right;
//  - each thread block has only BLOCK_SIZE = 16 threads (half a warp), so
//    occupancy is low and warps run partially masked;
//  - within a tile, threads sweep 2*16-1 diagonals with a __syncthreads()
//    per step; the anti-diagonal shared-memory indexing causes bank
//    conflicts, and the west-column global loads are uncoalesced — the
//    exact bottleneck signature (l1_global_load_miss +
//    l1_shared_bank_conflict) the paper reports.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/engine.hpp"
#include "gpusim/trace.hpp"

namespace bf::kernels {

inline constexpr int kNwBlockSize = 16;

/// One strip launch: `num_blocks` tiles along anti-diagonal `diag` of the
/// tile grid (tile_cols tiles per matrix row).
class NwDiagonalKernel final : public gpusim::TraceKernel {
 public:
  /// traversal = 1 (top-left) or 2 (bottom-right).
  NwDiagonalKernel(int seq_len, int diag, int num_blocks, int traversal);

  std::string name() const override;
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

 private:
  int seq_len_;
  int diag_;
  int blocks_;
  int traversal_;
  int cols_;  // seq_len + 1
  std::uint32_t ref_base_ = 0;
  std::uint32_t matrix_base_ = 0;
};

/// Functional reference: fill the NW score matrix for the given
/// substitution scores (row-major (n+1)^2 `reference`, border = gap
/// penalties) and return it. Used to validate the tiled traversal order.
std::vector<int> nw_reference(const std::vector<int>& reference, int n,
                              int penalty);

/// Host driver: run the whole NW application for sequences of `seq_len`
/// (must be a multiple of 16): 2*(seq_len/16)-1 strip launches per
/// traversal, both traversals. Launch counters for large strips are
/// interpolated from a sampled ladder of strip widths (documented
/// substitution: strips of equal width are statistically identical, so a
/// piecewise-linear model over width loses almost nothing and saves
/// thousands of launches).
gpusim::AggregateResult simulate_nw(const gpusim::Device& device, int seq_len,
                                    const gpusim::RunOptions& opts = {});

}  // namespace bf::kernels
