#include "kernels/reduce.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "kernels/kernel_base.hpp"

namespace bf::kernels {

using gpusim::LaunchGeometry;
using gpusim::Op;
using gpusim::TraceSink;

namespace {

constexpr int kMaxGridReduce6 = 64;  // the SDK's maxBlocks for reduce6

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

ReduceKernel::ReduceKernel(int variant, std::int64_t n, int block_size,
                           int grid_blocks)
    : variant_(variant), n_(n), block_(block_size) {
  BF_CHECK_MSG(variant >= 0 && variant <= 7, "reduce variant out of range");
  BF_CHECK_MSG(n >= 1, "empty reduction");
  BF_CHECK_MSG(block_size >= 64 && (block_size & (block_size - 1)) == 0,
               "block size must be a power of two >= 64 (the SDK kernels "
               "unroll the last warp)");
  std::int64_t grid;
  if (variant <= 2) {
    grid = ceil_div(n, block_size);
  } else if (variant <= 5) {
    grid = ceil_div(n, 2ll * block_size);
  } else {  // 6 and 7: grid-stride loop with the SDK's block cap
    grid = grid_blocks > 0
               ? grid_blocks
               : std::min<std::int64_t>(kMaxGridReduce6,
                                        ceil_div(n, 2ll * block_size));
  }
  grid_ = static_cast<int>(std::max<std::int64_t>(1, grid));

  AddressSpace mem;
  in_base_ = mem.alloc(static_cast<std::uint64_t>(n) * 4);
  out_base_ = mem.alloc(static_cast<std::uint64_t>(grid_) * 4);
}

std::string ReduceKernel::name() const {
  return "reduce" + std::to_string(variant_);
}

LaunchGeometry ReduceKernel::geometry() const {
  LaunchGeometry g;
  g.grid_x = grid_;
  g.block_x = block_;
  g.shared_mem_per_block = block_ * 4;
  // Register pressure grows along the ladder (running sum, unrolled
  // temporaries); values match typical nvcc allocations for these kernels.
  static constexpr int kRegs[8] = {10, 10, 10, 12, 14, 16, 18, 20};
  g.registers_per_thread = kRegs[variant_];
  return g;
}

void ReduceKernel::emit_warp(int block, int warp, TraceSink& sink) const {
  const int lanes_in_warp =
      std::max(0, std::min(32, block_ - warp * 32));
  if (lanes_in_warp <= 0) return;
  const std::uint32_t scope = gpusim::mask_first_lanes(lanes_in_warp);

  emit_load_phase(block, warp, scope, sink);
  if (variant_ == 7) {
    emit_shuffle_phase(block, warp, scope, sink);
    return;
  }
  sink.sync();
  emit_tree_phase(block, warp, scope, sink);
  emit_store_phase(block, warp, sink);
}

void ReduceKernel::emit_load_phase(int block, int warp, std::uint32_t scope,
                                   TraceSink& sink) const {
  const auto tid = [&](int lane) { return warp * 32 + lane; };

  if (variant_ <= 2) {
    // unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
    // sdata[tid] = (i < n) ? g_idata[i] : 0;
    sink.alu(scope, 2, Op::kIAlu);
    const std::uint32_t active = scope & mask_where([&](int lane) {
      return static_cast<std::int64_t>(block) * block_ + tid(lane) < n_;
    });
    if (active != 0) {
      sink.global_load(active, lane_addrs([&](int lane) {
        return in_base_ +
               4u * static_cast<std::uint32_t>(
                        static_cast<std::int64_t>(block) * block_ +
                        tid(lane));
      }));
    }
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(tid(lane));
    }));
    return;
  }

  if (variant_ <= 5) {
    // unsigned i = blockIdx.x * (blockDim.x * 2) + threadIdx.x;
    // sdata[tid] = g_idata[i] + g_idata[i + blockDim.x];
    sink.alu(scope, 2, Op::kIAlu);
    const auto idx = [&](int lane) {
      return static_cast<std::int64_t>(block) * block_ * 2 + tid(lane);
    };
    const std::uint32_t a1 =
        scope & mask_where([&](int lane) { return idx(lane) < n_; });
    const std::uint32_t a2 = scope & mask_where([&](int lane) {
      return idx(lane) + block_ < n_;
    });
    if (a1 != 0) {
      sink.global_load(a1, lane_addrs([&](int lane) {
        return in_base_ + 4u * static_cast<std::uint32_t>(idx(lane));
      }));
    }
    if (a2 != 0) {
      sink.global_load(a2, lane_addrs([&](int lane) {
        return in_base_ +
               4u * static_cast<std::uint32_t>(idx(lane) + block_);
      }));
      sink.alu(a2, 1, Op::kFAlu);
    }
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(tid(lane));
    }));
    return;
  }

  // reduce6/7: grid-stride accumulation loop.
  // unsigned i = blockIdx.x * blockSize * 2 + tid;
  // unsigned gridSize = blockSize * 2 * gridDim.x;
  // while (i < n) { mySum += g_idata[i];
  //                 if (i + blockSize < n) mySum += g_idata[i+blockSize];
  //                 i += gridSize; }
  sink.alu(scope, 3, Op::kIAlu);
  const std::int64_t grid_stride =
      static_cast<std::int64_t>(block_) * 2 * grid_;
  std::int64_t base = static_cast<std::int64_t>(block) * block_ * 2;
  while (true) {
    const std::uint32_t a1 = scope & mask_where([&](int lane) {
      return base + tid(lane) < n_;
    });
    sink.branch(scope, diverges(a1, scope));
    if (a1 == 0) break;
    sink.global_load(a1, lane_addrs([&](int lane) {
      return in_base_ +
             4u * static_cast<std::uint32_t>(base + tid(lane));
    }));
    sink.alu(a1, 1, Op::kFAlu);
    const std::uint32_t a2 = scope & mask_where([&](int lane) {
      return base + tid(lane) + block_ < n_;
    });
    if (a2 != 0) {
      sink.global_load(a2, lane_addrs([&](int lane) {
        return in_base_ +
               4u * static_cast<std::uint32_t>(base + tid(lane) + block_);
      }));
      sink.alu(a2, 1, Op::kFAlu);
    }
    sink.alu(scope, 1, Op::kIAlu);  // i += gridSize
    base += grid_stride;
  }
  if (variant_ == 7) return;  // partial sums stay in registers
  sink.shared_store(scope, lane_addrs([&](int lane) {
    return 4u * static_cast<std::uint32_t>(tid(lane));
  }));
}

void ReduceKernel::emit_tree_phase(int /*block*/, int warp,
                                   std::uint32_t scope,
                                   TraceSink& sink) const {
  const auto tid = [&](int lane) { return warp * 32 + lane; };

  const auto emit_level = [&](std::uint32_t active,
                              auto&& index_of, int stride) {
    if (active == 0) return;
    sink.shared_load(active, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(index_of(lane));
    }));
    sink.shared_load(active, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(index_of(lane) + stride);
    }));
    sink.alu(active, 1, Op::kFAlu);
    sink.shared_store(active, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(index_of(lane));
    }));
  };

  if (variant_ == 0) {
    // for (s = 1; s < blockDim; s *= 2)
    //   if (tid % (2*s) == 0) sdata[tid] += sdata[tid + s];
    for (int s = 1; s < block_; s *= 2) {
      sink.alu(scope, 3, Op::kIAlu);  // modulo test is expensive
      const std::uint32_t active = scope & mask_where([&](int lane) {
        return tid(lane) % (2 * s) == 0;
      });
      sink.branch(scope, diverges(active, scope));
      emit_level(active, tid, s);
      sink.sync();
    }
    return;
  }

  if (variant_ == 1) {
    // for (s = 1; s < blockDim; s *= 2) {
    //   int index = 2 * s * tid;
    //   if (index < blockDim) sdata[index] += sdata[index + s]; }
    for (int s = 1; s < block_; s *= 2) {
      sink.alu(scope, 2, Op::kIAlu);
      const auto index = [&](int lane) { return 2 * s * tid(lane); };
      const std::uint32_t active = scope & mask_where([&](int lane) {
        return index(lane) < block_;
      });
      sink.branch(scope, diverges(active, scope));
      emit_level(active, index, s);
      sink.sync();
    }
    return;
  }

  // Variants 2+ all use sequential addressing for the shared tree:
  // for (s = blockDim/2; s > s_min; s >>= 1)
  //   if (tid < s) sdata[tid] += sdata[tid + s];
  const int s_min = (variant_ >= 4) ? 32 : 0;
  for (int s = block_ / 2; s > s_min; s >>= 1) {
    // reduce5/6 unroll the loop completely: no induction-variable update.
    if (variant_ <= 4) sink.alu(scope, 1, Op::kIAlu);
    const std::uint32_t active =
        scope & mask_where([&](int lane) { return tid(lane) < s; });
    sink.branch(scope, diverges(active, scope));
    emit_level(active, tid, s);
    sink.sync();
  }
  if (variant_ >= 4) {
    emit_last_warp_unroll(warp, scope, sink);
  }
}

void ReduceKernel::emit_last_warp_unroll(int warp, std::uint32_t scope,
                                         TraceSink& sink) const {
  // if (tid < 32) warpReduce(sdata, tid):  volatile, warp-synchronous,
  // no __syncthreads(); all 32 lanes execute each statement.
  sink.branch(scope, false);
  if (warp != 0) return;
  const auto tid = [&](int lane) { return lane; };
  for (int s = 32; s >= 1; s >>= 1) {
    if (s >= block_) continue;  // defensive for tiny blocks
    sink.shared_load(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(tid(lane) + s);
    }));
    sink.alu(scope, 1, Op::kFAlu);
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return 4u * static_cast<std::uint32_t>(tid(lane));
    }));
  }
}

void ReduceKernel::emit_shuffle_phase(int block, int warp,
                                      std::uint32_t scope,
                                      TraceSink& sink) const {
  // Warp-level reduction via __shfl_down: five shuffle+add pairs move the
  // partial sums through registers — no shared-memory tree, no replays.
  // Shuffles execute on the ALU datapath, so they cost like integer ops.
  for (int step = 0; step < 5; ++step) {
    sink.alu(scope, 1, Op::kIAlu);  // __shfl_down
    sink.alu(scope, 1, Op::kFAlu);  // accumulate
  }
  // Each warp's lane 0 publishes one partial to shared memory.
  sink.branch(scope, true);
  sink.shared_store(1u, lane_addrs([&](int) {
    return 4u * static_cast<std::uint32_t>(warp);
  }));
  sink.sync();
  // Warp 0 reduces the per-warp partials (<= 32 of them) the same way.
  if (warp != 0) return;
  const int warps_in_block = block_ / 32;
  const std::uint32_t active =
      gpusim::mask_first_lanes(std::min(32, warps_in_block));
  sink.shared_load(active, lane_addrs([&](int lane) {
    return 4u * static_cast<std::uint32_t>(lane);
  }));
  for (int step = 0; step < 5; ++step) {
    sink.alu(active, 1, Op::kIAlu);
    sink.alu(active, 1, Op::kFAlu);
  }
  // if (tid == 0) g_odata[blockIdx.x] = mySum;
  sink.branch(active, true);
  sink.global_store(1u, lane_addrs([&](int) {
    return out_base_ + 4u * static_cast<std::uint32_t>(block);
  }));
}

void ReduceKernel::emit_store_phase(int block, int warp,
                                    TraceSink& sink) const {
  if (warp != 0) return;
  // if (tid == 0) g_odata[blockIdx.x] = sdata[0];
  const std::uint32_t lane0 = 1u;
  sink.branch(gpusim::mask_first_lanes(std::min(32, block_)), true);
  sink.shared_load(lane0, lane_addrs([](int) { return 0u; }));
  sink.global_store(lane0, lane_addrs([&](int) {
    return out_base_ + 4u * static_cast<std::uint32_t>(block);
  }));
}

double reduce_reference(const std::vector<double>& values) {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc;
}

gpusim::AggregateResult simulate_reduction(const gpusim::Device& device,
                                           int variant, std::int64_t n,
                                           int block_size,
                                           const gpusim::RunOptions& opts) {
  gpusim::AggregateResult agg;
  std::int64_t remaining = n;
  while (remaining > 1) {
    const ReduceKernel kernel(variant, remaining, block_size);
    const gpusim::RunResult result = device.run(kernel, opts);
    agg.add(result);
    const std::int64_t next = kernel.output_elems();
    BF_CHECK_MSG(next < remaining,
                 "reduction failed to make progress at n=" << remaining);
    remaining = next;
  }
  return agg;
}

}  // namespace bf::kernels
