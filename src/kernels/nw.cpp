#include "kernels/nw.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "kernels/kernel_base.hpp"

namespace bf::kernels {

using gpusim::LaunchGeometry;
using gpusim::Op;
using gpusim::TraceSink;

namespace {
constexpr int kB = kNwBlockSize;
}

NwDiagonalKernel::NwDiagonalKernel(int seq_len, int diag, int num_blocks,
                                   int traversal)
    : seq_len_(seq_len),
      diag_(diag),
      blocks_(num_blocks),
      traversal_(traversal),
      cols_(seq_len + 1) {
  BF_CHECK_MSG(seq_len >= kB && seq_len % kB == 0,
               "sequence length must be a positive multiple of " << kB);
  BF_CHECK_MSG(traversal == 1 || traversal == 2, "traversal must be 1 or 2");
  BF_CHECK_MSG(num_blocks >= 1 && num_blocks <= seq_len / kB,
               "invalid strip width");
  AddressSpace mem;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(cols_) * static_cast<std::uint64_t>(cols_);
  ref_base_ = mem.alloc(cells * 4);
  matrix_base_ = mem.alloc(cells * 4);
}

std::string NwDiagonalKernel::name() const {
  return traversal_ == 1 ? "needle_cuda_shared_1" : "needle_cuda_shared_2";
}

LaunchGeometry NwDiagonalKernel::geometry() const {
  LaunchGeometry g;
  g.grid_x = blocks_;
  g.block_x = kB;
  // temp[17][17] + ref[16][16] ints.
  g.shared_mem_per_block = (17 * 17 + 16 * 16) * 4;
  g.registers_per_thread = 28;
  return g;
}

void NwDiagonalKernel::emit_warp(int block, int /*warp*/,
                                 TraceSink& sink) const {
  // 16 threads per block: half of warp 0.
  const std::uint32_t scope = gpusim::mask_first_lanes(kB);
  const int tile_rows = seq_len_ / kB;

  // Tile coordinates along the anti-diagonal. Traversal 2 mirrors to the
  // bottom-right corner of the tile grid.
  int tr = diag_ - block;  // tile row
  int tc = block;          // tile col
  if (traversal_ == 2) {
    tr = tile_rows - 1 - tr;
    tc = tile_rows - 1 - tc;
  }
  BF_CHECK(tr >= 0 && tr < tile_rows && tc >= 0 && tc < tile_rows);

  // Cell origin of this tile within the (cols_)^2 matrices. The +1 row and
  // column of the score matrix hold the gap-penalty borders.
  const std::int64_t row0 = static_cast<std::int64_t>(tr) * kB + 1;
  const std::int64_t col0 = static_cast<std::int64_t>(tc) * kB + 1;
  const auto matrix_addr = [&](std::int64_t r, std::int64_t c) {
    return matrix_base_ + 4u * static_cast<std::uint32_t>(r * cols_ + c);
  };
  const auto ref_addr = [&](std::int64_t r, std::int64_t c) {
    return ref_base_ + 4u * static_cast<std::uint32_t>(r * cols_ + c);
  };

  // Shared layout (word offsets): temp[17][17] then ref[16][16].
  const auto temp_off = [](int y, int x) {
    return 4u * static_cast<std::uint32_t>(y * 17 + x);
  };
  const std::uint32_t ref_off0 = 4u * (17 * 17);
  const auto sref_off = [&](int y, int x) {
    return ref_off0 + 4u * static_cast<std::uint32_t>(y * 16 + x);
  };

  sink.alu(scope, 6, Op::kIAlu);  // index arithmetic

  // if (tid == 0) temp[0][0] = matrix[northwest];
  sink.branch(scope, true);
  sink.global_load(1u, lane_addrs([&](int) {
    return matrix_addr(row0 - 1, col0 - 1);
  }));
  sink.shared_store(1u, lane_addrs([&](int) { return temp_off(0, 0); }));

  // for (ty = 0..15) ref[ty][tid] = reference[row0+ty][col0+tid];
  for (int ty = 0; ty < kB; ++ty) {
    sink.global_load(scope, lane_addrs([&](int lane) {
      return ref_addr(row0 + ty, col0 + lane);
    }));
    sink.shared_store(scope, lane_addrs([&](int lane) {
      return sref_off(ty, lane);
    }));
  }
  sink.sync();

  // temp[tid+1][0] = matrix[row0+tid][col0-1];  -- west column, stride
  // cols_ between lanes: entirely uncoalesced.
  sink.global_load(scope, lane_addrs([&](int lane) {
    return matrix_addr(row0 + lane, col0 - 1);
  }));
  sink.shared_store(scope, lane_addrs([&](int lane) {
    return temp_off(lane + 1, 0);
  }));
  sink.sync();

  // temp[0][tid+1] = matrix[row0-1][col0+tid];  -- north row, coalesced.
  sink.global_load(scope, lane_addrs([&](int lane) {
    return matrix_addr(row0 - 1, col0 + lane);
  }));
  sink.shared_store(scope, lane_addrs([&](int lane) {
    return temp_off(0, lane + 1);
  }));
  sink.sync();

  // Wavefront over the tile: forward then backward anti-diagonals. Thread
  // tid computes cell (y, x) = (m - tid + 1, tid + 1) on step m.
  const auto emit_diag_step = [&](int m) {
    const std::uint32_t active = scope & gpusim::mask_first_lanes(
        std::min(kB, m + 1));
    sink.branch(scope, gpusim::mask_first_lanes(kB) != active);
    if (active == 0) return;
    const auto y = [&](int lane) { return m - lane + 1; };
    const auto x = [&](int lane) { return lane + 1; };
    // max(temp[y-1][x-1] + ref[y-1][x-1], temp[y][x-1] - p, temp[y-1][x] - p)
    sink.shared_load(active, lane_addrs([&](int lane) {
      return temp_off(y(lane) - 1, x(lane) - 1);
    }));
    sink.shared_load(active, lane_addrs([&](int lane) {
      return sref_off(y(lane) - 1, x(lane) - 1);
    }));
    sink.shared_load(active, lane_addrs([&](int lane) {
      return temp_off(y(lane), x(lane) - 1);
    }));
    sink.shared_load(active, lane_addrs([&](int lane) {
      return temp_off(y(lane) - 1, x(lane));
    }));
    sink.alu(active, 4, Op::kIAlu);  // adds + two max ops
    sink.shared_store(active, lane_addrs([&](int lane) {
      return temp_off(y(lane), x(lane));
    }));
  };

  for (int m = 0; m < kB; ++m) {
    emit_diag_step(m);
    sink.sync();
  }
  // Backward sweep: steps m = 14..0, active threads tid <= m but cells
  // mirrored to the bottom-right of the tile.
  for (int m = kB - 2; m >= 0; --m) {
    const std::uint32_t active =
        scope & gpusim::mask_first_lanes(std::min(kB, m + 1));
    sink.branch(scope, gpusim::mask_first_lanes(kB) != active);
    if (active != 0) {
      const auto y = [&](int lane) { return kB - lane; };
      const auto x = [&](int lane) { return kB - m + lane; };
      sink.shared_load(active, lane_addrs([&](int lane) {
        return temp_off(y(lane) - 1, x(lane) - 1);
      }));
      sink.shared_load(active, lane_addrs([&](int lane) {
        return sref_off(y(lane) - 1, x(lane) - 1);
      }));
      sink.shared_load(active, lane_addrs([&](int lane) {
        return temp_off(y(lane), x(lane) - 1);
      }));
      sink.shared_load(active, lane_addrs([&](int lane) {
        return temp_off(y(lane) - 1, x(lane));
      }));
      sink.alu(active, 4, Op::kIAlu);
      sink.shared_store(active, lane_addrs([&](int lane) {
        return temp_off(y(lane), x(lane));
      }));
    }
    sink.sync();
  }

  // Write the tile back: for (ty = 0..15) matrix[row0+ty][col0+tid] =
  // temp[ty+1][tid+1];
  for (int ty = 0; ty < kB; ++ty) {
    sink.shared_load(scope, lane_addrs([&](int lane) {
      return temp_off(ty + 1, lane + 1);
    }));
    sink.global_store(scope, lane_addrs([&](int lane) {
      return matrix_addr(row0 + ty, col0 + lane);
    }));
  }
}

std::vector<int> nw_reference(const std::vector<int>& reference, int n,
                              int penalty) {
  const int cols = n + 1;
  BF_CHECK_MSG(reference.size() ==
                   static_cast<std::size_t>(cols) * cols,
               "reference must be (n+1)^2");
  std::vector<int> m(reference.size(), 0);
  for (int i = 1; i <= n; ++i) m[static_cast<std::size_t>(i) * cols] = -i * penalty;
  for (int j = 1; j <= n; ++j) m[static_cast<std::size_t>(j)] = -j * penalty;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * cols + j;
      const int diag = m[idx - cols - 1] + reference[idx];
      const int west = m[idx - 1] - penalty;
      const int north = m[idx - cols] - penalty;
      m[idx] = std::max({diag, west, north});
    }
  }
  return m;
}

gpusim::AggregateResult simulate_nw(const gpusim::Device& device, int seq_len,
                                    const gpusim::RunOptions& opts) {
  const int tile_rows = seq_len / kB;
  BF_CHECK_MSG(tile_rows >= 1 && seq_len % kB == 0,
               "seq_len must be a positive multiple of " << kB);

  // Sample a ladder of strip widths; launches in between are interpolated
  // linearly in the width (strips of equal width are statistically
  // identical, and every counter is extensive in the number of blocks).
  std::vector<int> widths;
  for (int w = 1; w <= tile_rows; w *= 2) widths.push_back(w);
  if (widths.back() != tile_rows) widths.push_back(tile_rows);

  struct Sample {
    gpusim::CounterSet counters;
    double time_ms = 0.0;
  };
  const auto run_width = [&](int w, int traversal) {
    const int diag = w - 1;  // a strip of width w exists at this diagonal
    const NwDiagonalKernel kernel(seq_len, diag, w, traversal);
    const gpusim::RunResult r = device.run(kernel, opts);
    Sample s;
    s.counters = r.counters;
    s.time_ms = r.time_ms;
    return s;
  };

  gpusim::AggregateResult agg;
  for (int traversal = 1; traversal <= 2; ++traversal) {
    std::map<int, Sample> samples;
    for (int w : widths) samples[w] = run_width(w, traversal);

    const auto interpolate = [&](int w) -> Sample {
      const auto hi = samples.lower_bound(w);
      BF_CHECK(hi != samples.end());
      if (hi->first == w) return hi->second;
      auto lo = hi;
      --lo;
      const double t = static_cast<double>(w - lo->first) /
                       static_cast<double>(hi->first - lo->first);
      Sample out = lo->second;
      out.counters.scale(1.0 - t);
      gpusim::CounterSet hi_part = hi->second.counters;
      hi_part.scale(t);
      out.counters.accumulate(hi_part);
      out.time_ms = (1.0 - t) * lo->second.time_ms + t * hi->second.time_ms;
      return out;
    };

    // Traversal 1 launches strips 1..tile_rows; traversal 2 launches
    // tile_rows-1..1 (the Rodinia loop bounds).
    const int max_w = traversal == 1 ? tile_rows : tile_rows - 1;
    for (int w = 1; w <= max_w; ++w) {
      const Sample s = interpolate(w);
      gpusim::RunResult pseudo;
      pseudo.counters = s.counters;
      pseudo.time_ms = s.time_ms;
      agg.add(pseudo);
    }
  }
  return agg;
}

}  // namespace bf::kernels
