// CSR sparse matrix-vector multiply — the irregular-access workload
// class. One thread per row (the scalar CSR kernel): the gather loads
// x[col[j]] scatter across memory, and row-length variance produces
// intra-warp divergence/imbalance. Both effects are controlled by the
// synthetic sparsity pattern, so the bottleneck dial is explicit:
//   - `avg_nnz_per_row` sets the arithmetic intensity,
//   - `row_skew` in [0,1] moves nnz from uniform rows to a heavy head
//     (imbalance -> divergence, idle lanes),
//   - `locality` in [0,1] concentrates column indices near the diagonal
//     (gather coalescing/cache behaviour).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/engine.hpp"
#include "gpusim/trace.hpp"

namespace bf::kernels {

struct SpmvPattern {
  int avg_nnz_per_row = 16;
  double row_skew = 0.0;
  double locality = 0.5;
};

class SpmvCsrKernel final : public gpusim::TraceKernel {
 public:
  SpmvCsrKernel(int rows, const SpmvPattern& pattern, int block_size = 256);

  std::string name() const override { return "spmv_csr_scalar"; }
  gpusim::LaunchGeometry geometry() const override;
  void emit_warp(int block, int warp, gpusim::TraceSink& sink) const override;

  /// Synthetic pattern accessors (deterministic in the row index).
  int nnz_of_row(std::int64_t row) const;
  std::int64_t col_of(std::int64_t row, int j) const;
  std::int64_t total_nnz() const;

 private:
  int rows_;
  SpmvPattern pattern_;
  int block_;
  std::uint32_t val_base_, col_base_, rowptr_base_, x_base_, y_base_;
};

/// Functional reference for the synthetic pattern: y = A*x where
/// A[row][col_of(row,j)] = 1 for each stored element.
std::vector<double> spmv_reference(const SpmvCsrKernel& kernel, int rows,
                                   const std::vector<double>& x);

}  // namespace bf::kernels
