#include "kernels/spmv.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "kernels/kernel_base.hpp"

namespace bf::kernels {

using gpusim::LaunchGeometry;
using gpusim::Op;
using gpusim::TraceSink;

namespace {

// Deterministic 64-bit mix for the synthetic sparsity pattern.
std::uint64_t mix(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

SpmvCsrKernel::SpmvCsrKernel(int rows, const SpmvPattern& pattern,
                             int block_size)
    : rows_(rows), pattern_(pattern), block_(block_size) {
  BF_CHECK_MSG(rows >= 1, "empty matrix");
  BF_CHECK_MSG(pattern.avg_nnz_per_row >= 1 &&
                   pattern.avg_nnz_per_row <= 1024,
               "avg_nnz_per_row out of range");
  BF_CHECK_MSG(pattern.row_skew >= 0.0 && pattern.row_skew <= 1.0,
               "row_skew must be in [0,1]");
  BF_CHECK_MSG(pattern.locality >= 0.0 && pattern.locality <= 1.0,
               "locality must be in [0,1]");
  BF_CHECK_MSG(block_size >= 32 && block_size % 32 == 0,
               "block size must be a positive multiple of 32");
  AddressSpace mem;
  const std::uint64_t nnz_bound =
      static_cast<std::uint64_t>(rows) *
      static_cast<std::uint64_t>(pattern.avg_nnz_per_row) * 4ull;
  val_base_ = mem.alloc(nnz_bound * 4);
  col_base_ = mem.alloc(nnz_bound * 4);
  rowptr_base_ = mem.alloc((static_cast<std::uint64_t>(rows) + 1) * 4);
  x_base_ = mem.alloc(static_cast<std::uint64_t>(rows) * 4);
  y_base_ = mem.alloc(static_cast<std::uint64_t>(rows) * 4);
}

LaunchGeometry SpmvCsrKernel::geometry() const {
  LaunchGeometry g;
  g.grid_x = (rows_ + block_ - 1) / block_;
  g.block_x = block_;
  g.registers_per_thread = 18;
  return g;
}

int SpmvCsrKernel::nnz_of_row(std::int64_t row) const {
  // Uniform base count, with `row_skew` of the mass moved to a heavy
  // head: rows whose hash falls in the top 5% get a long row.
  const double u = unit(mix(static_cast<std::uint64_t>(row) * 2 + 1));
  const double base = pattern_.avg_nnz_per_row *
                      (1.0 - pattern_.row_skew) * (0.5 + u);
  double heavy = 0.0;
  if (u > 0.95) {
    heavy = pattern_.avg_nnz_per_row * pattern_.row_skew * 20.0;
  }
  return std::max(1, static_cast<int>(std::lround(base + heavy)));
}

std::int64_t SpmvCsrKernel::col_of(std::int64_t row, int j) const {
  const std::uint64_t h =
      mix(static_cast<std::uint64_t>(row) * 131071 +
          static_cast<std::uint64_t>(j) * 2 + 1);
  // With probability `locality`, stay within a near-diagonal band;
  // otherwise land anywhere.
  const double u = unit(h);
  if (u < pattern_.locality) {
    // A tight near-diagonal band: neighbouring rows gather from
    // overlapping cache lines, so the warp's 32 gathers coalesce well.
    constexpr std::int64_t kBand = 16;
    const std::int64_t off =
        static_cast<std::int64_t>(mix(h) %
                                  static_cast<std::uint64_t>(2 * kBand)) -
        kBand;
    return std::clamp<std::int64_t>(row + off, 0, rows_ - 1);
  }
  return static_cast<std::int64_t>(mix(h ^ 0xabcdef) %
                                   static_cast<std::uint64_t>(rows_));
}

std::int64_t SpmvCsrKernel::total_nnz() const {
  std::int64_t total = 0;
  for (int r = 0; r < rows_; ++r) total += nnz_of_row(r);
  return total;
}

void SpmvCsrKernel::emit_warp(int block, int warp, TraceSink& sink) const {
  const auto row_of = [&](int lane) {
    return static_cast<std::int64_t>(block) * block_ + warp * 32 + lane;
  };
  const std::uint32_t scope = mask_where([&](int lane) {
    return row_of(lane) < rows_;
  });
  if (scope == 0) return;

  // row_start/row_end from the CSR row pointer (coalesced).
  sink.global_load(scope, lane_addrs([&](int lane) {
    return rowptr_base_ + 4u * static_cast<std::uint32_t>(row_of(lane));
  }));
  sink.global_load(scope, lane_addrs([&](int lane) {
    return rowptr_base_ + 4u * static_cast<std::uint32_t>(row_of(lane) + 1);
  }));
  sink.alu(scope, 2, Op::kIAlu);

  // Walk the rows in lock step: lanes whose row is exhausted idle — the
  // SIMT cost of row-length imbalance.
  int longest = 0;
  std::array<int, 32> nnz{};
  std::array<std::int64_t, 32> nnz_base{};
  for (int lane = 0; lane < 32; ++lane) {
    if (((scope >> lane) & 1u) == 0) continue;
    nnz[static_cast<std::size_t>(lane)] =
        nnz_of_row(row_of(lane));
    longest = std::max(longest, nnz[static_cast<std::size_t>(lane)]);
    // Element storage offset: approximate CSR layout with a fixed
    // per-row stride (avg) — addresses only matter for coalescing.
    nnz_base[static_cast<std::size_t>(lane)] =
        row_of(lane) * pattern_.avg_nnz_per_row;
  }

  for (int j = 0; j < longest; ++j) {
    const std::uint32_t active = scope & mask_where([&](int lane) {
      return j < nnz[static_cast<std::size_t>(lane)];
    });
    sink.branch(scope, diverges(active, scope));
    if (active == 0) break;
    // val[k] and col[k]: adjacent lanes read strided CSR entries
    // (scalar-CSR's classic partially-coalesced pattern).
    sink.global_load(active, lane_addrs([&](int lane) {
      return val_base_ +
             4u * static_cast<std::uint32_t>(
                      nnz_base[static_cast<std::size_t>(lane)] + j);
    }));
    sink.global_load(active, lane_addrs([&](int lane) {
      return col_base_ +
             4u * static_cast<std::uint32_t>(
                      nnz_base[static_cast<std::size_t>(lane)] + j);
    }));
    // The gather: x[col[k]] — scattered by (1 - locality).
    sink.global_load(active, lane_addrs([&](int lane) {
      return x_base_ + 4u * static_cast<std::uint32_t>(
                               col_of(row_of(lane), j));
    }));
    sink.alu(active, 1, Op::kFAlu);  // fma into the running sum
    sink.alu(active, 1, Op::kIAlu);  // k++
  }

  // y[row] = sum (coalesced store).
  sink.global_store(scope, lane_addrs([&](int lane) {
    return y_base_ + 4u * static_cast<std::uint32_t>(row_of(lane));
  }));
}

std::vector<double> spmv_reference(const SpmvCsrKernel& kernel, int rows,
                                   const std::vector<double>& x) {
  BF_CHECK_MSG(x.size() == static_cast<std::size_t>(rows),
               "x size mismatch");
  std::vector<double> y(static_cast<std::size_t>(rows), 0.0);
  for (int r = 0; r < rows; ++r) {
    const int nnz = kernel.nnz_of_row(r);
    for (int j = 0; j < nnz; ++j) {
      y[static_cast<std::size_t>(r)] +=
          x[static_cast<std::size_t>(kernel.col_of(r, j))];
    }
  }
  return y;
}

}  // namespace bf::kernels
