// Stage 5 (results interpretation / prediction): model each retained
// counter as a function of the problem characteristics so that, for an
// unseen problem size, the counter vector can be generated and fed to the
// random forest (§4.2: "we can use the models to generate values for the
// most influential variables from an unseen problem size for which the
// execution time will be predicted by the random forest").
//
// Trivial counters get generalised linear models; gnarlier ones get MARS,
// matching the paper's use of glm for MM and earth for NW.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/linear_model.hpp"
#include "ml/mars.hpp"

namespace bf::core {

enum class CounterModelKind {
  kGlm,
  kMars,
  /// Fit both, keep whichever has the better training R^2 (with a small
  /// parsimony bonus for the GLM).
  kAuto,
};

struct CounterModelOptions {
  CounterModelKind kind = CounterModelKind::kAuto;
  /// Input columns (problem and/or machine characteristics).
  std::vector<std::string> inputs = {"size"};
  /// Model in log2(input+1) space. GPU counters are power laws in the
  /// problem size (O(n^2) data, O(n^3) work, ...), which become low-degree
  /// polynomials in log space and extrapolate far more safely.
  bool log_inputs = true;
  /// Fit log2(response) when the counter is strictly positive and spans
  /// more than two decades; predictions are mapped back with exp2. This
  /// keeps wide-range count counters positive and accurate.
  bool auto_log_response = true;
  ml::GlmParams glm;
  ml::MarsParams mars;
};

/// Quality record for one fitted counter model.
struct CounterModelInfo {
  std::string counter;
  CounterModelKind chosen = CounterModelKind::kGlm;
  double r2 = 0.0;
  double residual_deviance = 0.0;  ///< GLM-style RSS on the response scale
};

class CounterModels {
 public:
  /// Fit one model per name in `counters` from the rows of `ds`.
  static CounterModels fit(const ml::Dataset& ds,
                           const std::vector<std::string>& counters,
                           const CounterModelOptions& options = {});

  /// Predict every modelled counter at the given input values (same order
  /// as options.inputs); returns pairs (counter, value).
  std::vector<std::pair<std::string, double>> predict(
      const std::vector<double>& inputs) const;

  /// Predict a full feature dataset over a vector of problem sizes
  /// (single-input convenience; includes the input column itself).
  ml::Dataset predict_features(const std::vector<double>& sizes) const;

  const std::vector<CounterModelInfo>& info() const { return info_; }
  const std::vector<std::string>& inputs() const { return inputs_; }
  /// Mean training R^2 across counters (the paper quotes 0.99 for NW).
  double average_r2() const;

 private:
  struct Entry {
    std::string counter;
    CounterModelKind kind = CounterModelKind::kGlm;
    bool log_response = false;
    ml::Glm glm;
    ml::Mars mars;
  };

  double predict_entry(const Entry& entry,
                       const std::vector<double>& inputs) const;

  std::vector<std::string> inputs_;
  bool log_inputs_ = true;
  std::vector<Entry> entries_;
  std::vector<CounterModelInfo> info_;
};

}  // namespace bf::core
