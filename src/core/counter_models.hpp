// Stage 5 (results interpretation / prediction): model each retained
// counter as a function of the problem characteristics so that, for an
// unseen problem size, the counter vector can be generated and fed to the
// random forest (§4.2: "we can use the models to generate values for the
// most influential variables from an unseen problem size for which the
// execution time will be predicted by the random forest").
//
// Trivial counters get generalised linear models; gnarlier ones get MARS,
// matching the paper's use of glm for MM and earth for NW. With
// fit_fallback_chain enabled each counter additionally carries simpler
// fallback models (log-log linear, power-law through the last two
// points), ranked by k-fold CV error; the guard layer demotes along the
// chain at predict time when the chosen model's output violates sanity
// bounds. Every prediction leaves through one clamped exit point, so no
// model can feed a negative counter value to the forest.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/linear_model.hpp"
#include "ml/mars.hpp"

namespace bf::core {

enum class CounterModelKind {
  kGlm,
  kMars,
  /// Fit both, keep whichever has the better training R^2 (with a small
  /// parsimony bonus for the GLM).
  kAuto,
  /// Degree-1 GLM on the (log) basis — the classic log-log linear fit
  /// that extrapolates power laws safely.
  kLogLinear,
  /// Power law c * size^e through the last two training points; immune
  /// to hinge explosion, the terminal fallback of every chain.
  kPowerLaw,
};

/// Short stable name ("glm", "mars", "loglin", "powerlaw") for reports.
const char* counter_model_name(CounterModelKind kind);

struct CounterModelOptions {
  CounterModelKind kind = CounterModelKind::kAuto;
  /// Input columns (problem and/or machine characteristics).
  std::vector<std::string> inputs = {"size"};
  /// Model in log2(input+1) space. GPU counters are power laws in the
  /// problem size (O(n^2) data, O(n^3) work, ...), which become low-degree
  /// polynomials in log space and extrapolate far more safely.
  bool log_inputs = true;
  /// Fit log2(response) when the counter is strictly positive and spans
  /// more than two decades; predictions are mapped back with exp2. This
  /// keeps wide-range count counters positive and accurate.
  bool auto_log_response = true;
  /// Also fit the fallback models (log-log linear, power-law) and rank
  /// the demotion order by k-fold CV error. The *primary* selection is
  /// unchanged (the legacy RSS rule), so predictions stay bit-identical
  /// until a guard actually demotes.
  bool fit_fallback_chain = false;
  std::size_t cv_folds = 5;
  std::uint64_t cv_seed = 17;
  ml::GlmParams glm;
  ml::MarsParams mars;
};

/// Quality record for one fitted counter model.
struct CounterModelInfo {
  std::string counter;
  CounterModelKind chosen = CounterModelKind::kGlm;
  double r2 = 0.0;
  double residual_deviance = 0.0;  ///< GLM-style RSS on the response scale
  /// K-fold CV RMSE of the chosen model (0 when the chain was not fit).
  double cv_rmse = 0.0;
  /// Demotion order, chosen model first (single entry without a chain).
  std::vector<CounterModelKind> chain;
};

class CounterModels {
 public:
  /// Fit one model per name in `counters` from the rows of `ds`.
  static CounterModels fit(const ml::Dataset& ds,
                           const std::vector<std::string>& counters,
                           const CounterModelOptions& options = {});

  /// Predict every modelled counter at the given input values (same order
  /// as options.inputs); returns pairs (counter, value).
  std::vector<std::pair<std::string, double>> predict(
      const std::vector<double>& inputs) const;

  /// Predict a full feature dataset over a vector of problem sizes
  /// (single-input convenience; includes the input column itself).
  ml::Dataset predict_features(const std::vector<double>& sizes) const;

  /// Predict counter `entry` with one specific model from its chain
  /// (the guard layer's demotion primitive). When `negative_clamped` is
  /// non-null it reports whether the raw model output was negative
  /// before the exit-point clamp.
  double predict_kind(std::size_t entry, CounterModelKind kind,
                      const std::vector<double>& inputs,
                      bool* negative_clamped = nullptr) const;

  /// Allocation-free form of predict_kind for the serving hot path: the
  /// inputs arrive as a span and the log-space transform writes into a
  /// caller-reused scratch buffer instead of a per-call temporary.
  double predict_kind(std::size_t entry, CounterModelKind kind,
                      std::span<const double> inputs,
                      std::vector<double>& scratch,
                      bool* negative_clamped = nullptr) const;

  std::size_t num_entries() const { return entries_.size(); }
  const std::string& entry_counter(std::size_t entry) const;
  /// Demotion order of one entry, primary first.
  const std::vector<CounterModelKind>& entry_chain(std::size_t entry) const;

  const std::vector<CounterModelInfo>& info() const { return info_; }
  const std::vector<std::string>& inputs() const { return inputs_; }
  /// Mean training R^2 across counters (the paper quotes 0.99 for NW).
  double average_r2() const;

  /// Serialise every fitted entry (primary + fallback chain) and its
  /// quality record; a reloaded CounterModels predicts bit-identically.
  void save(std::ostream& os) const;
  static CounterModels load(std::istream& is);

 private:
  struct Entry {
    std::string counter;
    CounterModelKind kind = CounterModelKind::kGlm;
    bool log_response = false;
    /// Training data was non-negative, so predictions are clamped >= 0
    /// at the exit point (true for every real GPU counter).
    bool clamp_negative = true;
    ml::Glm glm;
    ml::Mars mars;
    // ---- fallback chain (fit_fallback_chain) ----
    ml::Glm loglin;
    /// Power law y = pl_scale * s^pl_exp on the first input; when the
    /// anchor points are non-positive a linear segment through the last
    /// two points is used instead.
    bool has_fallbacks = false;
    bool pl_is_linear = false;
    double pl_scale = 0.0;
    double pl_exp = 0.0;
    double pl_x0 = 0.0;
    double pl_y0 = 0.0;
    std::vector<CounterModelKind> chain;
  };

  double predict_entry(const Entry& entry, std::span<const double> inputs,
                       std::vector<double>& scratch) const;
  double predict_entry_kind(const Entry& entry, CounterModelKind kind,
                            std::span<const double> inputs,
                            std::vector<double>& scratch,
                            bool* negative_clamped) const;

  std::vector<std::string> inputs_;
  bool log_inputs_ = true;
  std::vector<Entry> entries_;
  std::vector<CounterModelInfo> info_;
};

}  // namespace bf::core
