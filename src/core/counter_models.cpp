#include "core/counter_models.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "ml/cv.hpp"
#include "ml/metrics.hpp"

namespace bf::core {
namespace {

double log_input(double v) { return std::log2(std::max(0.0, v) + 1.0); }

linalg::Matrix transform_inputs(const linalg::Matrix& x, bool log_inputs) {
  if (!log_inputs) return x;
  linalg::Matrix t(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      t(i, j) = log_input(x(i, j));
    }
  }
  return t;
}

/// Decide whether a response should be modelled in log space.
bool wants_log_response(const std::vector<double>& y) {
  double lo = 1e300;
  double hi = 0.0;
  for (double v : y) {
    if (v <= 0.0) return false;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi / lo > 100.0;
}

/// Power law through the two largest distinct training sizes; degrades to
/// a linear segment (or a constant) when the anchors cannot support one.
struct PowerLaw {
  bool is_linear = false;
  double scale = 0.0;
  double exponent = 0.0;
  double x0 = 0.0;
  double y0 = 0.0;

  double predict(double s) const {
    if (is_linear) return y0 + scale * (s - x0);
    return scale * std::pow(std::max(s, 0.0), exponent);
  }
};

PowerLaw fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  PowerLaw pl;
  pl.is_linear = true;
  if (xs.empty()) return pl;
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  const std::size_t i1 = order.back();
  std::size_t i0 = i1;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (xs[*it] < xs[i1]) {
      i0 = *it;
      break;
    }
  }
  if (i0 == i1) {  // single distinct size: constant model
    pl.x0 = xs[i1];
    pl.y0 = ys[i1];
    return pl;
  }
  const double xa = xs[i0], ya = ys[i0];
  const double xb = xs[i1], yb = ys[i1];
  if (xa > 0.0 && xb > 0.0 && ya > 0.0 && yb > 0.0) {
    pl.is_linear = false;
    pl.exponent = std::log(yb / ya) / std::log(xb / xa);
    pl.scale = yb / std::pow(xb, pl.exponent);
  } else {
    pl.scale = (yb - ya) / (xb - xa);
    pl.x0 = xb;
    pl.y0 = yb;
  }
  return pl;
}

}  // namespace

const char* counter_model_name(CounterModelKind kind) {
  switch (kind) {
    case CounterModelKind::kGlm:
      return "glm";
    case CounterModelKind::kMars:
      return "mars";
    case CounterModelKind::kAuto:
      return "auto";
    case CounterModelKind::kLogLinear:
      return "loglin";
    case CounterModelKind::kPowerLaw:
      return "powerlaw";
  }
  return "?";
}

CounterModels CounterModels::fit(const ml::Dataset& ds,
                                 const std::vector<std::string>& counters,
                                 const CounterModelOptions& options) {
  BF_CHECK_MSG(!counters.empty(), "no counters to model");
  BF_CHECK_MSG(!options.inputs.empty(), "no input characteristics");
  CounterModels out;
  out.inputs_ = options.inputs;
  out.log_inputs_ = options.log_inputs;

  const linalg::Matrix raw_x = ds.to_matrix(options.inputs);
  const linalg::Matrix x = transform_inputs(raw_x, options.log_inputs);

  for (const auto& counter : counters) {
    // The inputs themselves need no model; predict_features copies them.
    if (std::find(options.inputs.begin(), options.inputs.end(), counter) !=
        options.inputs.end()) {
      continue;
    }
    const std::vector<double>& y_raw = ds.column(counter);

    Entry entry;
    entry.counter = counter;
    entry.log_response = options.auto_log_response && wants_log_response(y_raw);
    // Real GPU counters (counts/ratios/throughputs) are never negative in
    // training, so their predictions are clamped at the exit point. A
    // synthetic counter that genuinely crosses zero keeps its sign.
    entry.clamp_negative = std::all_of(y_raw.begin(), y_raw.end(),
                                       [](double v) { return v >= 0.0; });
    std::vector<double> y = y_raw;
    if (entry.log_response) {
      for (double& v : y) v = std::log2(v);
    }

    const bool want_glm = options.kind != CounterModelKind::kMars;
    const bool want_mars = options.kind != CounterModelKind::kGlm;
    if (want_glm) {
      ml::GlmParams gp = options.glm;
      if (options.log_inputs) gp.log_terms = false;  // already in log space
      entry.glm.fit(x, y, gp);
    }
    if (want_mars) entry.mars.fit(x, y, options.mars);

    // Score both candidates on the *original* counter scale so the choice
    // (and the reported quality) reflects what the forest will consume.
    const auto score = [&](CounterModelKind kind) {
      std::vector<double> pred(y_raw.size());
      std::vector<double> row(raw_x.cols());
      std::vector<double> scratch;
      for (std::size_t i = 0; i < y_raw.size(); ++i) {
        for (std::size_t j = 0; j < raw_x.cols(); ++j) row[j] = raw_x(i, j);
        pred[i] = out.predict_entry_kind(entry, kind, row, scratch, nullptr);
      }
      double rss = 0.0;
      for (std::size_t i = 0; i < y_raw.size(); ++i) {
        rss += (y_raw[i] - pred[i]) * (y_raw[i] - pred[i]);
      }
      return rss;
    };
    const double glm_rss = want_glm ? score(CounterModelKind::kGlm) : 1e300;
    const double mars_rss =
        want_mars ? score(CounterModelKind::kMars) : 1e300;
    if (options.kind == CounterModelKind::kGlm) {
      entry.kind = CounterModelKind::kGlm;
    } else if (options.kind == CounterModelKind::kMars) {
      entry.kind = CounterModelKind::kMars;
    } else {
      // Auto: prefer the simpler GLM unless MARS is clearly better.
      entry.kind = (mars_rss < 0.95 * glm_rss) ? CounterModelKind::kMars
                                               : CounterModelKind::kGlm;
    }

    CounterModelInfo info;
    info.counter = counter;
    info.chosen = entry.kind;
    info.residual_deviance =
        entry.kind == CounterModelKind::kGlm ? glm_rss : mars_rss;
    double tss = 0.0;
    const double ybar = ml::mean(y_raw);
    for (const double v : y_raw) tss += (v - ybar) * (v - ybar);
    info.r2 = tss > 0.0 ? 1.0 - info.residual_deviance / tss : 0.0;

    entry.chain = {entry.kind};
    if (options.fit_fallback_chain) {
      // Fit the safe extrapolators. The log-log linear model is a
      // degree-1 GLM on the same (log) basis; the power law anchors on
      // the last two training points of the first input.
      ml::GlmParams lp = options.glm;
      lp.degree = 1;
      lp.link = ml::LinkFunction::kIdentity;
      if (options.log_inputs) lp.log_terms = false;
      entry.loglin.fit(x, y, lp);

      std::vector<double> first_input(y_raw.size());
      for (std::size_t i = 0; i < y_raw.size(); ++i) {
        first_input[i] = raw_x(i, 0);
      }
      const PowerLaw pl = fit_power_law(first_input, y_raw);
      entry.pl_is_linear = pl.is_linear;
      entry.pl_scale = pl.scale;
      entry.pl_exp = pl.exponent;
      entry.pl_x0 = pl.x0;
      entry.pl_y0 = pl.y0;
      entry.has_fallbacks = true;

      // Rank the demotion order by k-fold CV error on the raw counter
      // scale. Note the *primary* stays the legacy RSS choice above so
      // the untripped path is bit-identical; CV only orders fallbacks.
      std::vector<std::string> cols = options.inputs;
      cols.push_back(counter);
      const ml::Dataset sub = ds.select_columns(cols);
      const bool log_resp = entry.log_response;
      const auto cv_for = [&](CounterModelKind kind) {
        return ml::cv_rmse(
            sub, counter, options.cv_folds, options.cv_seed,
            [&, kind](const ml::Dataset& train, const ml::Dataset& test) {
              const linalg::Matrix train_raw = train.to_matrix(options.inputs);
              const linalg::Matrix test_raw = test.to_matrix(options.inputs);
              std::vector<double> ty = train.column(counter);
              std::vector<double> pred(test.num_rows());
              if (kind == CounterModelKind::kPowerLaw) {
                std::vector<double> txs(train.num_rows());
                for (std::size_t i = 0; i < txs.size(); ++i) {
                  txs[i] = train_raw(i, 0);
                }
                const PowerLaw fold_pl = fit_power_law(txs, ty);
                for (std::size_t i = 0; i < pred.size(); ++i) {
                  pred[i] = fold_pl.predict(test_raw(i, 0));
                }
                return pred;
              }
              const linalg::Matrix tx =
                  transform_inputs(train_raw, options.log_inputs);
              const linalg::Matrix qx =
                  transform_inputs(test_raw, options.log_inputs);
              if (log_resp) {
                for (double& v : ty) v = std::log2(v);
              }
              if (kind == CounterModelKind::kMars) {
                ml::Mars m;
                m.fit(tx, ty, options.mars);
                for (std::size_t i = 0; i < pred.size(); ++i) {
                  std::vector<double> row(qx.cols());
                  for (std::size_t j = 0; j < qx.cols(); ++j) row[j] = qx(i, j);
                  pred[i] = m.predict_row(  // bf-lint: allow(guarded-predict)
                      row.data(), row.size());
                }
              } else {
                ml::GlmParams gp = options.glm;
                if (options.log_inputs) gp.log_terms = false;
                if (kind == CounterModelKind::kLogLinear) {
                  gp.degree = 1;
                  gp.link = ml::LinkFunction::kIdentity;
                }
                ml::Glm g;
                g.fit(tx, ty, gp);
                for (std::size_t i = 0; i < pred.size(); ++i) {
                  std::vector<double> row(qx.cols());
                  for (std::size_t j = 0; j < qx.cols(); ++j) row[j] = qx(i, j);
                  pred[i] = g.predict_row(  // bf-lint: allow(guarded-predict)
                      row.data(), row.size());
                }
              }
              if (log_resp) {
                for (double& v : pred) {
                  v = std::exp2(std::clamp(v, -60.0, 60.0));
                }
              }
              return pred;
            });
      };

      struct Cand {
        CounterModelKind kind;
        double rmse;
      };
      std::vector<Cand> cands;
      if (want_glm) cands.push_back({CounterModelKind::kGlm, 0.0});
      if (want_mars) cands.push_back({CounterModelKind::kMars, 0.0});
      cands.push_back({CounterModelKind::kLogLinear, 0.0});
      cands.push_back({CounterModelKind::kPowerLaw, 0.0});
      for (auto& c : cands) c.rmse = cv_for(c.kind);
      for (const auto& c : cands) {
        if (c.kind == entry.kind) info.cv_rmse = c.rmse;
      }
      std::stable_sort(cands.begin(), cands.end(),
                       [](const Cand& a, const Cand& b) {
                         return a.rmse < b.rmse;
                       });
      for (const auto& c : cands) {
        if (c.kind != entry.kind) entry.chain.push_back(c.kind);
      }
    }
    info.chain = entry.chain;

    out.entries_.push_back(std::move(entry));
    out.info_.push_back(std::move(info));
  }
  return out;
}

double CounterModels::predict_entry(const Entry& entry,
                                    std::span<const double> inputs,
                                    std::vector<double>& scratch) const {
  return predict_entry_kind(entry, entry.kind, inputs, scratch, nullptr);
}

double CounterModels::predict_entry_kind(const Entry& entry,
                                         CounterModelKind kind,
                                         std::span<const double> inputs,
                                         std::vector<double>& scratch,
                                         bool* negative_clamped) const {
  double v;
  if (kind == CounterModelKind::kPowerLaw) {
    BF_CHECK_MSG(entry.has_fallbacks,
                 "power-law fallback was not fit for " << entry.counter);
    PowerLaw pl;
    pl.is_linear = entry.pl_is_linear;
    pl.scale = entry.pl_scale;
    pl.exponent = entry.pl_exp;
    pl.x0 = entry.pl_x0;
    pl.y0 = entry.pl_y0;
    v = pl.predict(inputs.empty() ? 0.0 : inputs[0]);
  } else {
    scratch.assign(inputs.begin(), inputs.end());
    if (log_inputs_) {
      for (double& u : scratch) u = log_input(u);
    }
    if (kind == CounterModelKind::kMars) {
      v = entry.mars.predict_row(scratch.data(), scratch.size());  // bf-lint: allow(guarded-predict)
    } else if (kind == CounterModelKind::kLogLinear) {
      BF_CHECK_MSG(entry.has_fallbacks,
                   "log-linear fallback was not fit for " << entry.counter);
      v = entry.loglin.predict_row(scratch.data(), scratch.size());  // bf-lint: allow(guarded-predict)
    } else {
      v = entry.glm.predict_row(scratch.data(), scratch.size());  // bf-lint: allow(guarded-predict)
    }
    if (entry.log_response) v = std::exp2(std::clamp(v, -60.0, 60.0));
  }
  if (fault::should_fire(fault::points::kCounterModelDiverge)) {
    // Simulated runaway extrapolation: the guard's sanity envelope must
    // catch this and demote down the chain.
    v *= 1e6;
  }
  // Single exit point: a counter that was non-negative in training is a
  // count/ratio/throughput and can never go negative, whatever model
  // produced it.
  if (entry.clamp_negative && v < 0.0) {
    if (negative_clamped != nullptr) *negative_clamped = true;
    v = 0.0;
  } else if (negative_clamped != nullptr) {
    *negative_clamped = false;
  }
  return v;
}

double CounterModels::predict_kind(std::size_t entry, CounterModelKind kind,
                                   const std::vector<double>& inputs,
                                   bool* negative_clamped) const {
  std::vector<double> scratch;
  return predict_kind(entry, kind, std::span<const double>(inputs), scratch,
                      negative_clamped);
}

double CounterModels::predict_kind(std::size_t entry, CounterModelKind kind,
                                   std::span<const double> inputs,
                                   std::vector<double>& scratch,
                                   bool* negative_clamped) const {
  BF_CHECK_MSG(entry < entries_.size(), "counter model index out of range");
  BF_CHECK_MSG(inputs.size() == inputs_.size(),
               "expected " << inputs_.size() << " input values");
  return predict_entry_kind(entries_[entry], kind, inputs, scratch,
                            negative_clamped);
}

const std::string& CounterModels::entry_counter(std::size_t entry) const {
  BF_CHECK_MSG(entry < entries_.size(), "counter model index out of range");
  return entries_[entry].counter;
}

const std::vector<CounterModelKind>& CounterModels::entry_chain(
    std::size_t entry) const {
  BF_CHECK_MSG(entry < entries_.size(), "counter model index out of range");
  return entries_[entry].chain;
}

std::vector<std::pair<std::string, double>> CounterModels::predict(
    const std::vector<double>& inputs) const {
  BF_CHECK_MSG(inputs.size() == inputs_.size(),
               "expected " << inputs_.size() << " input values");
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  std::vector<double> scratch;
  for (const auto& entry : entries_) {
    out.emplace_back(entry.counter, predict_entry(entry, inputs, scratch));
  }
  return out;
}

ml::Dataset CounterModels::predict_features(
    const std::vector<double>& sizes) const {
  BF_CHECK_MSG(inputs_.size() == 1,
               "predict_features requires a single-input model");
  ml::Dataset ds;
  ds.add_column(inputs_[0], sizes);
  // One reused input cell and log-transform scratch across the whole
  // size x counter grid — this is the serving hot path (every
  // predict_time call lands here), so it must not allocate per size.
  double in[1];
  std::vector<double> scratch;
  for (const auto& entry : entries_) {
    std::vector<double> col;
    col.reserve(sizes.size());
    for (const double s : sizes) {
      in[0] = s;
      col.push_back(predict_entry(entry, std::span<const double>(in), scratch));
    }
    ds.add_column(entry.counter, std::move(col));
  }
  return ds;
}

double CounterModels::average_r2() const {
  if (info_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& i : info_) acc += i.r2;
  return acc / static_cast<double>(info_.size());
}

namespace {

CounterModelKind kind_from_code(int code) {
  BF_CHECK_MSG(code >= 0 && code <= static_cast<int>(CounterModelKind::kPowerLaw),
               "bf_counter_models: bad model-kind code " << code);
  return static_cast<CounterModelKind>(code);
}

void save_chain(std::ostream& os, const std::vector<CounterModelKind>& chain) {
  os << chain.size();
  for (const CounterModelKind k : chain) os << ' ' << static_cast<int>(k);
  os << "\n";
}

std::vector<CounterModelKind> load_chain(std::istream& is) {
  std::size_t n = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> n) && n >= 1 && n <= 8,
               "bf_counter_models: bad chain length");
  std::vector<CounterModelKind> chain(n);
  for (auto& k : chain) {
    int code = 0;
    BF_CHECK_MSG(static_cast<bool>(is >> code),
                 "bf_counter_models: truncated chain");
    k = kind_from_code(code);
  }
  return chain;
}

}  // namespace

void CounterModels::save(std::ostream& os) const {
  os.precision(17);
  os << "bf_counter_models 1\n";
  os << inputs_.size();
  for (const auto& name : inputs_) os << ' ' << name;
  os << ' ' << (log_inputs_ ? 1 : 0) << "\n";
  os << "entries " << entries_.size() << "\n";
  for (const auto& e : entries_) {
    os << e.counter << ' ' << static_cast<int>(e.kind) << ' '
       << (e.log_response ? 1 : 0) << ' ' << (e.clamp_negative ? 1 : 0) << ' '
       << (e.has_fallbacks ? 1 : 0) << ' ' << (e.pl_is_linear ? 1 : 0) << ' '
       << e.pl_scale << ' ' << e.pl_exp << ' ' << e.pl_x0 << ' ' << e.pl_y0
       << "\n";
    save_chain(os, e.chain);
    e.glm.save(os);
    e.mars.save(os);
    e.loglin.save(os);
  }
  os << "info " << info_.size() << "\n";
  for (const auto& i : info_) {
    os << i.counter << ' ' << static_cast<int>(i.chosen) << ' ' << i.r2 << ' '
       << i.residual_deviance << ' ' << i.cv_rmse << "\n";
    save_chain(os, i.chain);
  }
}

CounterModels CounterModels::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_counter_models", 1);
  (void)format_version;
  CounterModels out;
  std::size_t n_inputs = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> n_inputs) && n_inputs >= 1 &&
                   n_inputs <= 64,
               "bf_counter_models: bad input count");
  out.inputs_.resize(n_inputs);
  for (auto& name : out.inputs_) {
    BF_CHECK_MSG(static_cast<bool>(is >> name),
                 "bf_counter_models: truncated inputs");
  }
  int log_inputs = 0;
  std::string tag;
  std::size_t n_entries = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> log_inputs >> tag >> n_entries) &&
                   tag == "entries" && n_entries <= 100'000,
               "bf_counter_models: malformed entries header");
  out.log_inputs_ = log_inputs != 0;
  out.entries_.resize(n_entries);
  for (auto& e : out.entries_) {
    int kind = 0;
    int log_response = 0;
    int clamp_negative = 0;
    int has_fallbacks = 0;
    int pl_is_linear = 0;
    BF_CHECK_MSG(static_cast<bool>(is >> e.counter >> kind >> log_response >>
                                   clamp_negative >> has_fallbacks >>
                                   pl_is_linear >> e.pl_scale >> e.pl_exp >>
                                   e.pl_x0 >> e.pl_y0),
                 "bf_counter_models: truncated entry");
    e.kind = kind_from_code(kind);
    e.log_response = log_response != 0;
    e.clamp_negative = clamp_negative != 0;
    e.has_fallbacks = has_fallbacks != 0;
    e.pl_is_linear = pl_is_linear != 0;
    e.chain = load_chain(is);
    BF_CHECK_MSG(e.chain.front() == e.kind,
                 "bf_counter_models: chain head disagrees with primary for "
                     << e.counter);
    e.glm = ml::Glm::load(is);
    e.mars = ml::Mars::load(is);
    e.loglin = ml::Glm::load(is);
  }
  std::size_t n_info = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n_info) && tag == "info" &&
                   n_info == n_entries,
               "bf_counter_models: malformed info header");
  out.info_.resize(n_info);
  for (auto& i : out.info_) {
    int chosen = 0;
    BF_CHECK_MSG(static_cast<bool>(is >> i.counter >> chosen >> i.r2 >>
                                   i.residual_deviance >> i.cv_rmse),
                 "bf_counter_models: truncated info record");
    i.chosen = kind_from_code(chosen);
    i.chain = load_chain(is);
  }
  return out;
}

}  // namespace bf::core
