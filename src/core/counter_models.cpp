#include "core/counter_models.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "ml/metrics.hpp"

namespace bf::core {
namespace {

double log_input(double v) { return std::log2(std::max(0.0, v) + 1.0); }

linalg::Matrix transform_inputs(const linalg::Matrix& x, bool log_inputs) {
  if (!log_inputs) return x;
  linalg::Matrix t(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      t(i, j) = log_input(x(i, j));
    }
  }
  return t;
}

/// Decide whether a response should be modelled in log space.
bool wants_log_response(const std::vector<double>& y) {
  double lo = 1e300;
  double hi = 0.0;
  for (double v : y) {
    if (v <= 0.0) return false;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi / lo > 100.0;
}

}  // namespace

CounterModels CounterModels::fit(const ml::Dataset& ds,
                                 const std::vector<std::string>& counters,
                                 const CounterModelOptions& options) {
  BF_CHECK_MSG(!counters.empty(), "no counters to model");
  BF_CHECK_MSG(!options.inputs.empty(), "no input characteristics");
  CounterModels out;
  out.inputs_ = options.inputs;
  out.log_inputs_ = options.log_inputs;

  const linalg::Matrix raw_x = ds.to_matrix(options.inputs);
  const linalg::Matrix x = transform_inputs(raw_x, options.log_inputs);

  for (const auto& counter : counters) {
    // The inputs themselves need no model; predict_features copies them.
    if (std::find(options.inputs.begin(), options.inputs.end(), counter) !=
        options.inputs.end()) {
      continue;
    }
    const std::vector<double>& y_raw = ds.column(counter);

    Entry entry;
    entry.counter = counter;
    entry.log_response = options.auto_log_response && wants_log_response(y_raw);
    std::vector<double> y = y_raw;
    if (entry.log_response) {
      for (double& v : y) v = std::log2(v);
    }

    const bool want_glm = options.kind != CounterModelKind::kMars;
    const bool want_mars = options.kind != CounterModelKind::kGlm;
    if (want_glm) {
      ml::GlmParams gp = options.glm;
      if (options.log_inputs) gp.log_terms = false;  // already in log space
      entry.glm.fit(x, y, gp);
    }
    if (want_mars) entry.mars.fit(x, y, options.mars);

    // Score both candidates on the *original* counter scale so the choice
    // (and the reported quality) reflects what the forest will consume.
    const auto score = [&](CounterModelKind kind) {
      std::vector<double> pred(y_raw.size());
      for (std::size_t i = 0; i < y_raw.size(); ++i) {
        Entry probe = entry;  // cheap: models are small
        probe.kind = kind;
        std::vector<double> row(raw_x.cols());
        for (std::size_t j = 0; j < raw_x.cols(); ++j) row[j] = raw_x(i, j);
        pred[i] = out.predict_entry(probe, row);
      }
      double rss = 0.0;
      for (std::size_t i = 0; i < y_raw.size(); ++i) {
        rss += (y_raw[i] - pred[i]) * (y_raw[i] - pred[i]);
      }
      return rss;
    };
    const double glm_rss = want_glm ? score(CounterModelKind::kGlm) : 1e300;
    const double mars_rss =
        want_mars ? score(CounterModelKind::kMars) : 1e300;
    if (options.kind == CounterModelKind::kGlm) {
      entry.kind = CounterModelKind::kGlm;
    } else if (options.kind == CounterModelKind::kMars) {
      entry.kind = CounterModelKind::kMars;
    } else {
      // Auto: prefer the simpler GLM unless MARS is clearly better.
      entry.kind = (mars_rss < 0.95 * glm_rss) ? CounterModelKind::kMars
                                               : CounterModelKind::kGlm;
    }

    CounterModelInfo info;
    info.counter = counter;
    info.chosen = entry.kind;
    info.residual_deviance =
        entry.kind == CounterModelKind::kGlm ? glm_rss : mars_rss;
    double tss = 0.0;
    const double ybar = ml::mean(y_raw);
    for (const double v : y_raw) tss += (v - ybar) * (v - ybar);
    info.r2 = tss > 0.0 ? 1.0 - info.residual_deviance / tss : 0.0;

    out.entries_.push_back(std::move(entry));
    out.info_.push_back(info);
  }
  return out;
}

double CounterModels::predict_entry(const Entry& entry,
                                    const std::vector<double>& inputs) const {
  std::vector<double> t = inputs;
  if (log_inputs_) {
    for (double& v : t) v = log_input(v);
  }
  double v;
  if (entry.kind == CounterModelKind::kGlm) {
    v = entry.glm.predict_row(t.data(), t.size());
  } else {
    v = entry.mars.predict_row(t.data(), t.size());
  }
  if (entry.log_response) v = std::exp2(std::clamp(v, -60.0, 60.0));
  return v;
}

std::vector<std::pair<std::string, double>> CounterModels::predict(
    const std::vector<double>& inputs) const {
  BF_CHECK_MSG(inputs.size() == inputs_.size(),
               "expected " << inputs_.size() << " input values");
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.emplace_back(entry.counter, predict_entry(entry, inputs));
  }
  return out;
}

ml::Dataset CounterModels::predict_features(
    const std::vector<double>& sizes) const {
  BF_CHECK_MSG(inputs_.size() == 1,
               "predict_features requires a single-input model");
  ml::Dataset ds;
  ds.add_column(inputs_[0], sizes);
  for (const auto& entry : entries_) {
    std::vector<double> col;
    col.reserve(sizes.size());
    for (const double s : sizes) {
      col.push_back(predict_entry(entry, {s}));
    }
    ds.add_column(entry.counter, std::move(col));
  }
  return ds;
}

double CounterModels::average_r2() const {
  if (info_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& i : info_) acc += i.r2;
  return acc / static_cast<double>(info_.size());
}

}  // namespace bf::core
