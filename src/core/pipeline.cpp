#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "profiling/repository.hpp"

namespace bf::core {

AnalysisOutcome run_analysis(const PipelineConfig& config) {
  BF_CHECK_MSG(!config.sizes.empty(), "no problem sizes configured");

  const gpusim::Device device(config.arch);
  AnalysisOutcome out;
  if (config.repository_root) {
    const profiling::RunRepository repo(*config.repository_root);
    out.data = repo.get_or_collect(
        config.workload.name, config.arch.name, [&] {
          return profiling::sweep(config.workload, device, config.sizes,
                                  config.sweep);
        });
  } else {
    out.data =
        profiling::sweep(config.workload, device, config.sizes, config.sweep);
  }

  out.model = BlackForestModel::fit(out.data, config.model);
  out.pca = pca_refine(out.data, config.pca);
  out.report = analyze_bottlenecks(out.model, config.workload.name,
                                   config.arch.name, config.bottleneck);
  return out;
}

}  // namespace bf::core
