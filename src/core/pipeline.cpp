#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "profiling/repository.hpp"

namespace bf::core {

AnalysisOutcome run_analysis(const PipelineConfig& config) {
  BF_CHECK_MSG(!config.sizes.empty(), "no problem sizes configured");

  const gpusim::Device device(config.arch);
  AnalysisOutcome out;
  bool collected = false;
  const auto collect = [&] {
    collected = true;
    return profiling::sweep(config.workload, device, config.sizes,
                            config.sweep, &out.sweep_report);
  };
  if (config.repository_root) {
    // Corrupt cached entries are quarantined inside load(), so a rotten
    // repository degrades to a recollection instead of an abort.
    const profiling::RunRepository repo(*config.repository_root);
    out.data = repo.get_or_collect(config.workload.name, config.arch.name,
                                   collect);
    if (!collected) {
      out.warnings.push_back("sweep loaded from repository cache under " +
                             *config.repository_root);
    }
  } else {
    out.data = collect();
  }
  if (collected && out.sweep_report.degraded()) {
    out.warnings.push_back("collection degraded: " +
                           out.sweep_report.summary());
  }

  // Resolve dropped-counter holes so the forest/PCA/GLM stages see a
  // fully-observed table; the response and the problem characteristic
  // must never be invented, so rows missing them are dropped instead.
  if (out.data.has_missing()) {
    out.missing = out.data.resolve_missing(
        config.degrade.min_column_coverage, config.degrade.min_row_coverage,
        {profiling::kTimeColumn, profiling::kSizeColumn});
    for (const auto& line : out.missing.to_lines()) {
      out.warnings.push_back(line);
    }
  }
  for (const auto& w : out.warnings) {
    BF_WARN("pipeline: " << w);
  }

  out.model = BlackForestModel::fit(out.data, config.model);
  out.pca = pca_refine(out.data, config.pca);
  out.report = analyze_bottlenecks(out.model, config.workload.name,
                                   config.arch.name, config.bottleneck);
  return out;
}

}  // namespace bf::core
