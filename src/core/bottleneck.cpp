#include "core/bottleneck.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/string_util.hpp"
#include "ml/metrics.hpp"

namespace bf::core {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kSharedBankConflicts: return "shared memory bank conflicts";
    case Pattern::kUncoalescedAccess: return "uncoalesced global accesses";
    case Pattern::kBranchDivergence: return "warp branch divergence";
    case Pattern::kLowOccupancy: return "insufficient occupancy";
    case Pattern::kMemoryBandwidth: return "memory bandwidth pressure";
    case Pattern::kInstructionReplay: return "instruction replay overhead";
    case Pattern::kComputeThroughput: return "instruction throughput";
    case Pattern::kProblemScale: return "problem scale";
    case Pattern::kUnclassified: return "unclassified";
  }
  return "?";
}

const char* pattern_remedy(Pattern p) {
  switch (p) {
    case Pattern::kSharedBankConflicts:
      return "pad shared-memory arrays or re-index so consecutive lanes "
             "touch distinct banks (e.g. tile[32][33])";
    case Pattern::kUncoalescedAccess:
      return "restructure accesses so a warp touches consecutive "
             "addresses; stage irregular patterns through shared memory";
    case Pattern::kBranchDivergence:
      return "replace per-lane conditions with contiguous-range "
             "conditions or predication; sort/partition work by branch "
             "direction";
    case Pattern::kLowOccupancy:
      return "increase resident warps: larger blocks, fewer registers per "
             "thread, less shared memory per block, or more blocks";
    case Pattern::kMemoryBandwidth:
      return "reduce DRAM traffic: exploit shared memory/L1 reuse, fuse "
             "kernels, compress data, or process more elements per thread";
    case Pattern::kInstructionReplay:
      return "eliminate replay sources: bank conflicts and uncoalesced "
             "transactions are the usual culprits";
    case Pattern::kComputeThroughput:
      return "reduce instruction count (cheaper operations, less index "
             "arithmetic, loop unrolling) or raise ILP per thread";
    case Pattern::kProblemScale:
      return "performance tracks the problem size itself (expected; not a "
             "defect)";
    case Pattern::kUnclassified:
      return "inspect this counter's partial dependence manually";
  }
  return "?";
}

Pattern classify_counter(const std::string& counter) {
  static const std::map<std::string, Pattern> table = {
      {"l1_shared_bank_conflict", Pattern::kSharedBankConflicts},
      {"shared_replay_overhead", Pattern::kSharedBankConflicts},
      {"shared_load_replay", Pattern::kSharedBankConflicts},
      {"shared_store_replay", Pattern::kSharedBankConflicts},
      {"shared_load", Pattern::kSharedBankConflicts},
      {"shared_store", Pattern::kSharedBankConflicts},
      {"l1_global_load_miss", Pattern::kUncoalescedAccess},
      {"l1_global_load_hit", Pattern::kUncoalescedAccess},
      {"gld_efficiency", Pattern::kUncoalescedAccess},
      {"gst_efficiency", Pattern::kUncoalescedAccess},
      {"divergent_branch", Pattern::kBranchDivergence},
      {"branch", Pattern::kBranchDivergence},
      {"warp_execution_efficiency", Pattern::kBranchDivergence},
      {"achieved_occupancy", Pattern::kLowOccupancy},
      {"issue_slot_utilization", Pattern::kLowOccupancy},
      {"l2_read_transactions", Pattern::kMemoryBandwidth},
      {"l2_write_transactions", Pattern::kMemoryBandwidth},
      {"l2_read_throughput", Pattern::kMemoryBandwidth},
      {"l2_write_throughput", Pattern::kMemoryBandwidth},
      {"dram_read_transactions", Pattern::kMemoryBandwidth},
      {"dram_write_transactions", Pattern::kMemoryBandwidth},
      {"dram_read_throughput", Pattern::kMemoryBandwidth},
      {"dram_write_throughput", Pattern::kMemoryBandwidth},
      {"gld_request", Pattern::kMemoryBandwidth},
      {"gst_request", Pattern::kMemoryBandwidth},
      {"gld_requested_throughput", Pattern::kMemoryBandwidth},
      {"gst_requested_throughput", Pattern::kMemoryBandwidth},
      {"gld_throughput", Pattern::kMemoryBandwidth},
      {"gst_throughput", Pattern::kMemoryBandwidth},
      {"global_store_transaction", Pattern::kMemoryBandwidth},
      {"inst_replay_overhead", Pattern::kInstructionReplay},
      {"inst_executed", Pattern::kComputeThroughput},
      {"inst_issued", Pattern::kComputeThroughput},
      {"ipc", Pattern::kComputeThroughput},
      {"flop_sp_efficiency", Pattern::kComputeThroughput},
      {"size", Pattern::kProblemScale},
  };
  const auto it = table.find(counter);
  return it == table.end() ? Pattern::kUnclassified : it->second;
}

namespace {

double trend_of(const std::vector<ml::PartialDependencePoint>& curve) {
  // Fraction of up-steps minus fraction of down-steps: +1 for a
  // monotonically increasing partial dependence, -1 for decreasing.
  if (curve.size() < 2) return 0.0;
  int up = 0;
  int down = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double d = curve[i].y - curve[i - 1].y;
    if (d > 0) ++up;
    if (d < 0) --down;  // negative count
  }
  return static_cast<double>(up + down) /
         static_cast<double>(curve.size() - 1);
}

}  // namespace

BottleneckReport analyze_bottlenecks(const BlackForestModel& model,
                                     const std::string& workload,
                                     const std::string& arch,
                                     const BottleneckOptions& options) {
  BottleneckReport report;
  report.workload = workload;
  report.arch = arch;
  report.pct_var_explained = model.pct_var_explained();

  // Correlations are taken against whatever the model's response is —
  // "time_ms" for the classic path, "power_avg_w" for bf::power.
  const auto importance = model.importance();
  const auto& y = model.train_data().column(model.response());
  std::map<Pattern, double> pattern_mass;

  for (std::size_t i = 0; i < importance.size() && i < options.top_k; ++i) {
    const auto& imp = importance[i];
    if (imp.pct_inc_mse <= 0.0) continue;  // noise variables
    BottleneckFinding f;
    f.counter = imp.name;
    f.importance = imp.pct_inc_mse;
    f.correlation =
        ml::pearson(model.train_data().column(imp.name), y);
    f.dependence_trend =
        trend_of(model.partial_dependence(imp.name, options.pd_grid));
    f.pattern = classify_counter(imp.name);
    pattern_mass[f.pattern] += f.importance;
    report.findings.push_back(std::move(f));
  }

  report.ranked_patterns.assign(pattern_mass.begin(), pattern_mass.end());
  std::sort(report.ranked_patterns.begin(), report.ranked_patterns.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return report;
}

std::string to_text(const BottleneckReport& report) {
  std::ostringstream os;
  os << "Bottleneck report: " << report.workload << " on " << report.arch
     << "\n";
  os << "  model quality: " << format_double(report.pct_var_explained, 1)
     << "% variance explained (OOB)\n";
  os << "  influential counters:\n";
  for (const auto& f : report.findings) {
    os << "    " << f.counter << "  (%IncMSE " << format_double(f.importance, 2)
       << ", corr " << format_double(f.correlation, 2) << ", trend "
       << format_double(f.dependence_trend, 2) << ") -> "
       << pattern_name(f.pattern) << "\n";
  }
  os << "  diagnosis:\n";
  for (const auto& [pattern, mass] : report.ranked_patterns) {
    if (pattern == Pattern::kProblemScale) continue;
    os << "    [" << format_double(mass, 1) << "] " << pattern_name(pattern)
       << ": " << pattern_remedy(pattern) << "\n";
  }
  return os.str();
}

}  // namespace bf::core
