// Systematic bottleneck detection (the paper's headline use case).
//
// Variable importance says *which* counters drive the execution time;
// the partial-dependence direction says *how*; this module maps the
// important counters onto the §3.2 performance patterns (bank conflicts,
// uncoalesced access, divergence, occupancy, bandwidth, replays) and
// attaches the textbook elimination strategy for each.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "ml/dataset.hpp"

namespace bf::core {

/// Known GPU performance patterns.
enum class Pattern {
  kSharedBankConflicts,
  kUncoalescedAccess,
  kBranchDivergence,
  kLowOccupancy,
  kMemoryBandwidth,
  kInstructionReplay,
  kComputeThroughput,
  kProblemScale,
  kUnclassified,
};

const char* pattern_name(Pattern p);
/// The textbook elimination strategy for a pattern.
const char* pattern_remedy(Pattern p);

struct BottleneckFinding {
  std::string counter;
  double importance = 0.0;     ///< %IncMSE of the counter
  double correlation = 0.0;    ///< Pearson correlation with the response
  /// Trend of the partial-dependence curve in [-1, 1]: +1 = time rises
  /// monotonically with the counter, -1 = falls.
  double dependence_trend = 0.0;
  Pattern pattern = Pattern::kUnclassified;
};

struct BottleneckReport {
  std::string workload;
  std::string arch;
  double pct_var_explained = 0.0;
  std::vector<BottleneckFinding> findings;  ///< importance-ordered
  /// Patterns ranked by accumulated importance (the actual verdict).
  std::vector<std::pair<Pattern, double>> ranked_patterns;
};

struct BottleneckOptions {
  std::size_t top_k = 8;       ///< counters examined
  std::size_t pd_grid = 15;    ///< partial-dependence resolution
};

/// Pattern classification of a single counter name.
Pattern classify_counter(const std::string& counter);

/// Analyse a fitted model against its training data.
BottleneckReport analyze_bottlenecks(const BlackForestModel& model,
                                     const std::string& workload,
                                     const std::string& arch,
                                     const BottleneckOptions& options = {});

/// Render a human-readable report.
std::string to_text(const BottleneckReport& report);

}  // namespace bf::core
