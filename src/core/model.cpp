#include "core/model.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "ml/metrics.hpp"

namespace bf::core {
namespace {

std::vector<std::string> predictor_columns(
    const ml::Dataset& ds, const std::string& response,
    const std::vector<std::string>& exclude) {
  std::vector<std::string> out;
  for (const auto& name : ds.column_names()) {
    if (name == response) continue;
    if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) {
      continue;
    }
    out.push_back(name);
  }
  BF_CHECK_MSG(!out.empty(), "no predictor columns left");
  return out;
}

}  // namespace

BlackForestModel BlackForestModel::fit(const ml::Dataset& ds,
                                       const ModelOptions& options) {
  BF_CHECK_MSG(ds.has_column(options.response),
               "dataset lacks the response column '"
                   << options.response << "'");
  BlackForestModel model;
  model.options_ = options;

  // Drop constant predictors up front: they carry no signal and distort
  // permutation importance.
  ml::Dataset clean = ds;
  clean.drop_constant_columns();
  BF_CHECK_MSG(clean.has_column(options.response),
               "response column is constant — nothing to model");

  Rng rng(options.seed);
  ml::TrainTestSplit split =
      ml::train_test_split(clean, options.test_fraction, rng);
  model.train_ = std::move(split.train);
  model.test_ = std::move(split.test);
  model.predictors_ =
      predictor_columns(model.train_, options.response, options.exclude);

  const linalg::Matrix x = model.train_.to_matrix(model.predictors_);
  const std::vector<double>& y = model.train_.column(options.response);
  ml::ForestParams params = options.forest;
  if (params.seed == ml::ForestParams{}.seed) params.seed = options.seed;
  model.forest_.fit(x, y, model.predictors_, params);
  model.flat_ = ml::FlatForest::freeze(model.forest_);

  if (model.test_.num_rows() > 0) {
    const linalg::Matrix tx = model.test_.to_matrix(model.predictors_);
    const std::vector<double> pred = model.flat_.predict(tx);
    const std::vector<double>& truth =
        model.test_.column(options.response);
    model.test_mse_ = ml::mse(truth, pred);
    model.test_explained_var_ = ml::explained_variance(truth, pred);
  }
  return model;
}

BlackForestModel BlackForestModel::refit_with(
    const std::vector<std::string>& predictors) const {
  BF_CHECK_MSG(!predictors.empty(), "refit needs at least one predictor");
  BlackForestModel model;
  model.options_ = options_;
  model.train_ = train_;
  model.test_ = test_;
  model.predictors_ = predictors;

  const linalg::Matrix x = model.train_.to_matrix(predictors);
  const std::vector<double>& y = model.train_.column(options_.response);
  ml::ForestParams params = options_.forest;
  if (params.seed == ml::ForestParams{}.seed) params.seed = options_.seed;
  model.forest_.fit(x, y, predictors, params);
  model.flat_ = ml::FlatForest::freeze(model.forest_);

  if (model.test_.num_rows() > 0) {
    const linalg::Matrix tx = model.test_.to_matrix(predictors);
    const std::vector<double> pred = model.flat_.predict(tx);
    const std::vector<double>& truth =
        model.test_.column(options_.response);
    model.test_mse_ = ml::mse(truth, pred);
    model.test_explained_var_ = ml::explained_variance(truth, pred);
  }
  return model;
}

std::vector<double> BlackForestModel::predict(const ml::Dataset& ds) const {
  const linalg::Matrix x = ds.to_matrix(predictors_);
  return flat_.predict(x);
}

void BlackForestModel::refreeze(ml::TreeLayout layout) {
  BF_CHECK_MSG(forest_.fitted(),
               "refreeze needs the training-side forest (models loaded "
               "from a flat-only record cannot change layout)");
  flat_ = ml::FlatForest::freeze(forest_, layout);
}

void BlackForestModel::save(std::ostream& os) const {
  BF_CHECK_MSG(flat_.fitted(), "save on unfitted model");
  os.precision(17);
  // Version 2 stores the frozen flat forest only: serving loads the fast
  // form directly and skips the (much larger) pointer-tree dump with its
  // retained training matrix.
  os << "bf_model 2\n";
  os << predictors_.size();
  for (const auto& p : predictors_) os << ' ' << p;
  os << "\n";
  os << test_mse_ << ' ' << test_explained_var_ << "\n";
  flat_.save(os);
}

BlackForestModel BlackForestModel::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_model", 2);
  BlackForestModel model;
  std::size_t n = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> n) && n >= 1 && n <= 100'000,
               "bf_model: bad predictor count");
  model.predictors_.resize(n);
  for (auto& p : model.predictors_) {
    BF_CHECK_MSG(static_cast<bool>(is >> p), "bf_model: truncated predictors");
  }
  BF_CHECK_MSG(
      static_cast<bool>(is >> model.test_mse_ >> model.test_explained_var_),
      "bf_model: truncated statistics");
  if (format_version == 1) {
    // Pre-flat bundle: load the pointer forest and freeze it on the spot,
    // so old artifacts serve through the same fast path as new ones.
    model.forest_ = ml::RandomForest::load(is);
    model.flat_ = ml::FlatForest::freeze(model.forest_);
  } else {
    model.flat_ = ml::FlatForest::load(is);
  }
  BF_CHECK_MSG(model.flat_.feature_names() == model.predictors_,
               "bf_model: forest features disagree with predictor list");
  return model;
}

}  // namespace bf::core
