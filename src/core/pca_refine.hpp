// Stage 4 (refinement with PCA): run PCA + varimax over the counter data
// and interpret the retained components as performance facets.
//
// The paper reads the factor loadings as facets of GPU behaviour — for
// reduce1: "PC1 is related to memory intensity of reduce1, PC2 to MIMD and
// ILP parallelism, PC3 to SIMD efficiency, and PC4 to memory subsystem
// throughput" (§5.2). We reproduce that interpretation mechanically: each
// counter belongs to a facet category, and a component is labelled by the
// category carrying the largest share of its absolute loading mass.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/pca.hpp"

namespace bf::core {

/// Performance facets used for component interpretation.
enum class Facet {
  kMemoryIntensity,      ///< request/transaction counts
  kParallelism,          ///< MIMD/ILP: ipc, issue slots, replays, occupancy
  kSimdEfficiency,       ///< warp efficiency, divergence
  kMemoryThroughput,     ///< achieved throughputs
  kProblem,              ///< problem/machine characteristics
  kOther,
};

const char* facet_name(Facet facet);

/// Facet of a single counter name.
Facet counter_facet(const std::string& counter);

struct InterpretedComponent {
  int index = 0;                 ///< 0-based component number (PC1 = 0)
  double variance_share = 0.0;   ///< fraction of total variance
  Facet facet = Facet::kOther;   ///< dominant facet
  /// Strong loadings (|loading| >= cutoff), sorted by magnitude.
  std::vector<std::pair<std::string, double>> loadings;
  std::string label;             ///< e.g. "PC2: MIMD/ILP parallelism"
};

struct PcaRefinement {
  ml::Pca pca;
  std::vector<InterpretedComponent> components;
  double variance_covered = 0.0;  ///< cumulative share of retained PCs
};

struct PcaRefineOptions {
  double variance_target = 0.97;
  std::size_t max_components = 6;
  double loading_cutoff = 0.3;
  bool varimax = true;
  /// Columns to leave out of the PCA (the response is always excluded).
  std::vector<std::string> exclude;
};

/// Run the refinement over every counter column of `ds`.
PcaRefinement pca_refine(const ml::Dataset& ds,
                         const PcaRefineOptions& options = {});

}  // namespace bf::core
