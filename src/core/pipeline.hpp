// One-call front end over the five-stage methodology (Fig. 1 of the
// paper): data collection -> random forest construction & validation ->
// variable importance analysis -> PCA refinement -> interpretation
// (bottleneck report / predictors).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bottleneck.hpp"
#include "core/model.hpp"
#include "core/pca_refine.hpp"
#include "gpusim/arch.hpp"
#include "profiling/profiler.hpp"
#include "profiling/sweep.hpp"

namespace bf::core {

struct PipelineConfig {
  profiling::Workload workload;
  gpusim::ArchSpec arch;
  std::vector<double> sizes;
  profiling::SweepOptions sweep;
  ModelOptions model;
  PcaRefineOptions pca;
  BottleneckOptions bottleneck;
  /// Optional repository root: when set, sweeps are cached on disk.
  std::optional<std::string> repository_root;
};

struct AnalysisOutcome {
  ml::Dataset data;
  BlackForestModel model;
  PcaRefinement pca;
  BottleneckReport report;
};

/// Run collection + modelling + importance + PCA + bottleneck analysis.
AnalysisOutcome run_analysis(const PipelineConfig& config);

}  // namespace bf::core
