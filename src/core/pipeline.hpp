// One-call front end over the five-stage methodology (Fig. 1 of the
// paper): data collection -> random forest construction & validation ->
// variable importance analysis -> PCA refinement -> interpretation
// (bottleneck report / predictors).
//
// Collection is the flaky stage on real machines, so the pipeline
// degrades gracefully instead of aborting: sweeps retry and tolerate
// partial results (profiling::SweepOptions policy), corrupt repository
// entries are quarantined and recollected, and missing counter cells are
// dropped/imputed under the DegradeOptions coverage thresholds. Every
// degradation is recorded in the AnalysisOutcome.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bottleneck.hpp"
#include "core/model.hpp"
#include "core/pca_refine.hpp"
#include "gpusim/arch.hpp"
#include "guard/guard.hpp"
#include "ml/dataset.hpp"
#include "profiling/profiler.hpp"
#include "profiling/sweep.hpp"

namespace bf::core {

/// How far the statistical stages may degrade a faulty collection before
/// the pipeline gives up (see ml::Dataset::resolve_missing).
struct DegradeOptions {
  /// Counter columns observed in fewer than this fraction of rows are
  /// dropped from the model instead of imputed.
  double min_column_coverage = 0.5;
  /// Rows with fewer than this fraction of surviving counters are
  /// dropped instead of imputed.
  double min_row_coverage = 0.5;
};

struct PipelineConfig {
  profiling::Workload workload;
  gpusim::ArchSpec arch;
  std::vector<double> sizes;
  profiling::SweepOptions sweep;
  DegradeOptions degrade;
  ModelOptions model;
  PcaRefineOptions pca;
  BottleneckOptions bottleneck;
  /// Optional repository root: when set, sweeps are cached on disk.
  std::optional<std::string> repository_root;
};

struct AnalysisOutcome {
  /// The modelled dataset (after missing-value resolution). The raw
  /// degraded sweep — NaN cells included — is what the repository caches.
  ml::Dataset data;
  BlackForestModel model;
  PcaRefinement pca;
  BottleneckReport report;
  /// Collection diary; default-empty when the sweep came from the
  /// repository cache instead of a fresh collection.
  profiling::SweepReport sweep_report;
  /// What missing-value resolution dropped/imputed (empty when the
  /// collection was fully observed).
  ml::MissingValueReport missing;
  /// Model-health report of the prediction stage (disabled/empty until a
  /// predictor runs; bf_analyze --predict fills it).
  bf::guard::GuardReport guard;
  /// Second-response analysis (bf::power): the energy-bottleneck report
  /// ranked over the power response. core never fills these — the power
  /// layer does when power analysis is enabled, so the time-only
  /// pipeline is untouched.
  bool power_enabled = false;
  BottleneckReport energy_report;
  /// Human-readable degradation warnings accumulated across stages.
  std::vector<std::string> warnings;
};

/// Run collection + modelling + importance + PCA + bottleneck analysis.
AnalysisOutcome run_analysis(const PipelineConfig& config);

}  // namespace bf::core
