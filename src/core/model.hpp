// Stage 2 + 3 of the BlackForest methodology (§4.2): random-forest
// construction over a profiled sweep, validation on a held-out split, and
// variable-importance analysis.
//
// The dataset convention follows bf::profiling::sweep: every column except
// the response is a predictor (counters, the problem characteristic
// "size", and — for hardware scaling — the Table 2 machine
// characteristics). The response defaults to "time_ms"; bf::power refits
// the same machinery with "power_avg_w" as the response.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/flat_forest.hpp"
#include "ml/forest.hpp"

namespace bf::core {

struct ModelOptions {
  /// Fraction of rows held out for validation (the paper's 80:20 split).
  double test_fraction = 0.2;
  ml::ForestParams forest;
  /// Predictor columns to exclude (besides the response).
  std::vector<std::string> exclude;
  /// Response column (profiling::kTimeColumn unless a second response
  /// variable — e.g. profiling::kPowerColumn — is being modelled).
  std::string response = "time_ms";
  std::uint64_t seed = 7;
};

/// A fitted BlackForest response model with its validation statistics.
class BlackForestModel {
 public:
  /// Split `ds` into train/test, fit the forest on the training part and
  /// evaluate on the held-out part.
  static BlackForestModel fit(const ml::Dataset& ds,
                              const ModelOptions& options = {});

  /// Refit using only the named predictors (stage 3's check that the top
  /// few variables "retain most of the predictive power").
  BlackForestModel refit_with(const std::vector<std::string>& predictors)
      const;

  /// Training-side pointer forest. Fitted models always carry it;
  /// models loaded from a version-2 "bf_model" record carry only the
  /// frozen flat form (forest().fitted() is false there) — inference
  /// goes through flat() in either case.
  const ml::RandomForest& forest() const { return forest_; }
  /// The frozen flat inference engine (always fitted on a usable model).
  const ml::FlatForest& flat() const { return flat_; }
  const std::vector<std::string>& predictors() const { return predictors_; }
  /// Name of the response column this model was fitted against
  /// ("time_ms" on models loaded from a bundle record, which carry no
  /// training data).
  const std::string& response() const { return options_.response; }
  const ml::Dataset& train_data() const { return train_; }
  const ml::Dataset& test_data() const { return test_; }

  /// OOB % variance explained (randomForest's headline statistic).
  double pct_var_explained() const { return forest_.pct_var_explained(); }
  double oob_mse() const { return forest_.oob_mse(); }
  /// Held-out MSE and explained variance.
  double test_mse() const { return test_mse_; }
  double test_explained_variance() const { return test_explained_var_; }

  std::vector<ml::VariableImportance> importance() const {
    return forest_.importance();
  }
  std::vector<std::string> top_variables(std::size_t k) const {
    return forest_.top_variables(k);
  }
  std::vector<ml::PartialDependencePoint> partial_dependence(
      const std::string& predictor, std::size_t grid = 25) const {
    return forest_.partial_dependence(predictor, grid);
  }

  /// Predict times for rows of a dataset that contains (at least) the
  /// model's predictor columns. Runs on the flat engine.
  std::vector<double> predict(const ml::Dataset& ds) const;

  /// Forest prediction with the per-tree quantile band, served by the
  /// flat engine (bit-identical to the pointer forest). The scratch form
  /// is the allocation-free hot path.
  ml::PredictionInterval predict_interval(const double* row, double alpha,
                                          ml::ForestScratch& scratch) const {
    return flat_.predict_interval(row, alpha, scratch);
  }
  std::vector<ml::PredictionInterval> predict_intervals(
      const linalg::Matrix& x, double alpha = 0.1) const {
    return flat_.predict_intervals(x, alpha);
  }

  /// Re-freeze the flat engine with a different node layout (the frozen
  /// predictions are layout-invariant; this is for benchmarking and
  /// layout experiments). Requires the training-side forest.
  void refreeze(ml::TreeLayout layout);

  /// Serialise the fitted model for .bfmodel bundles: predictor names,
  /// held-out statistics and the *frozen flat forest* (format version 2).
  /// The train/test datasets and the pointer trees are NOT stored — a
  /// loaded model predicts (bit-identically) but cannot be refit;
  /// train_data()/test_data() on it are empty. Version-1 records (full
  /// pointer-forest dump) still load and are frozen on load.
  void save(std::ostream& os) const;
  static BlackForestModel load(std::istream& is);

 private:
  ml::RandomForest forest_;
  ml::FlatForest flat_;
  std::vector<std::string> predictors_;
  ml::Dataset train_;
  ml::Dataset test_;
  ModelOptions options_;
  double test_mse_ = 0.0;
  double test_explained_var_ = 0.0;
};

}  // namespace bf::core
