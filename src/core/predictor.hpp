// Problem-scaling and hardware-scaling predictors (paper §6).
//
// Problem scaling: retain the forest's top-k variables, validate that the
// reduced forest keeps the full forest's predictive power, model the
// retained counters in terms of the problem size (GLM/MARS), and predict
// execution times for unseen sizes by feeding modelled counter values into
// the reduced forest.
//
// Hardware scaling: inject the Table 2 machine characteristics into the
// training data of the source GPU, add a calibration subset from the
// target GPU, and predict the target's test rows. When the importance
// rankings of the two architectures diverge (the paper's NW case), the
// predictor falls back to the paper's workaround: train on the union of
// the top variables of *both* architectures, restricted to counters that
// exist on both.
#pragma once

#include <string>
#include <vector>

#include "core/counter_models.hpp"
#include "core/model.hpp"
#include "ml/dataset.hpp"

namespace bf::core {

struct PredictionSeries {
  std::vector<double> sizes;
  std::vector<double> measured_ms;
  std::vector<double> predicted_ms;
  double mse = 0.0;
  double explained_variance = 0.0;  ///< 1 - mse / var(measured)
  double median_abs_pct_error = 0.0;
};

// ---- Problem scaling ----

struct ProblemScalingOptions {
  std::size_t top_k = 6;  ///< retained variables (paper: "between 6 and 8")
  ModelOptions model;
  CounterModelOptions counter_models;

  ProblemScalingOptions() {
    // Problem-scaling sweeps are small (tens of rows) with responses
    // spanning decades; finer leaves let the forest resolve individual
    // problem sizes instead of averaging across them.
    model.forest.min_node_size = 2;
  }
};

class ProblemScalingPredictor {
 public:
  /// Build from a single-architecture sweep dataset.
  static ProblemScalingPredictor build(const ml::Dataset& sweep,
                                       const ProblemScalingOptions& options =
                                           {});

  /// Predict the execution time for one unseen problem size.
  double predict_time(double size) const;

  /// Predict a series and score it against measured times.
  PredictionSeries validate(const std::vector<double>& sizes,
                            const std::vector<double>& measured_ms) const;

  /// The full-variable model (for comparison) and the reduced model.
  const BlackForestModel& full_model() const { return full_; }
  const BlackForestModel& reduced_model() const { return reduced_; }
  const CounterModels& counter_models() const { return counters_; }
  const std::vector<std::string>& retained() const { return retained_; }

 private:
  BlackForestModel full_;
  BlackForestModel reduced_;
  CounterModels counters_;
  std::vector<std::string> retained_;
};

// ---- Hardware scaling ----

struct HardwareScalingOptions {
  std::size_t top_k = 6;
  /// Fraction of the target-GPU sweep used for calibration (the paper
  /// calibrates on the target and tests on the rest).
  double calibration_fraction = 0.8;
  /// Spearman-style rank-overlap threshold below which the mixed-variable
  /// workaround is applied automatically.
  double similarity_threshold = 0.5;
  ModelOptions model;
  std::uint64_t seed = 99;

  HardwareScalingOptions() {
    model.forest.min_node_size = 2;  // see ProblemScalingOptions
  }
};

struct HardwareScalingResult {
  PredictionSeries series;     ///< predictions on the target test split
  double similarity = 0.0;     ///< importance-ranking overlap in [0,1]
  bool used_mixed_variables = false;
  std::vector<std::string> variables;  ///< predictor set actually used
  /// Top variables on source and target (for Fig. 8a/8b style reports).
  std::vector<std::string> source_top;
  std::vector<std::string> target_top;
};

class HardwareScalingPredictor {
 public:
  /// `source` and `target` are sweeps of the same workload over the same
  /// sizes on two GPUs, collected with machine characteristics injected.
  static HardwareScalingResult predict(const ml::Dataset& source,
                                       const ml::Dataset& target,
                                       const HardwareScalingOptions& options =
                                           {});

  /// Overlap of the top-k importance rankings of two fitted models,
  /// in [0,1] (the paper's "sufficiently similar hardware" test).
  static double importance_similarity(const BlackForestModel& a,
                                      const BlackForestModel& b,
                                      std::size_t k);
};

}  // namespace bf::core
