// Problem-scaling and hardware-scaling predictors (paper §6).
//
// Problem scaling: retain the forest's top-k variables, validate that the
// reduced forest keeps the full forest's predictive power, model the
// retained counters in terms of the problem size (GLM/MARS), and predict
// execution times for unseen sizes by feeding modelled counter values into
// the reduced forest.
//
// Hardware scaling: inject the Table 2 machine characteristics into the
// training data of the source GPU, add a calibration subset from the
// target GPU, and predict the target's test rows. When the importance
// rankings of the two architectures diverge (the paper's NW case), the
// predictor falls back to the paper's workaround: train on the union of
// the top variables of *both* architectures, restricted to counters that
// exist on both.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/counter_models.hpp"
#include "core/model.hpp"
#include "gpusim/arch.hpp"
#include "guard/guard.hpp"
#include "ml/dataset.hpp"

namespace bf::core {

struct PredictionSeries {
  std::vector<double> sizes;
  std::vector<double> measured_ms;
  std::vector<double> predicted_ms;
  double mse = 0.0;
  double explained_variance = 0.0;  ///< 1 - mse / var(measured)
  double median_abs_pct_error = 0.0;
  /// Model-health self-description (empty/disabled on the legacy path).
  bf::guard::GuardReport guard;
  /// Second-response rows filled by bf::power when power analysis is on:
  /// predicted average board power and derived energy per size (empty
  /// otherwise, so the time-only rendering is unchanged).
  std::vector<double> power_w;
  std::vector<double> energy_j;
  /// Per-size power guard records (grades, TDP clamps); parallel to
  /// power_w when present.
  std::vector<bf::guard::PredictionGuardRecord> power_guard;
};

// ---- Problem scaling ----

struct ProblemScalingOptions {
  std::size_t top_k = 6;  ///< retained variables (paper: "between 6 and 8")
  ModelOptions model;
  CounterModelOptions counter_models;
  /// Model-health supervision (hull checks, fallback chains, physical
  /// caps, confidence grades). guard.enabled = false restores the legacy
  /// unguarded path bit for bit.
  bf::guard::GuardOptions guard;
  /// Architecture whose physical limits cap predicted counters; without
  /// it only architecture-independent caps (ratio metrics <= 1) apply.
  std::optional<gpusim::ArchSpec> arch;

  ProblemScalingOptions() {
    // Problem-scaling sweeps are small (tens of rows) with responses
    // spanning decades; finer leaves let the forest resolve individual
    // problem sizes instead of averaging across them.
    model.forest.min_node_size = 2;
  }
};

class ProblemScalingPredictor {
 public:
  /// Build from a single-architecture sweep dataset.
  static ProblemScalingPredictor build(const ml::Dataset& sweep,
                                       const ProblemScalingOptions& options =
                                           {});

  /// Predict the response for one unseen problem size (legacy unguarded
  /// path; see predict_guarded for the supervised one). Named for the
  /// classic time response; a predictor built with another response
  /// column (e.g. profiling::kPowerColumn) returns that response.
  double predict_time(double size) const;

  /// Response column this predictor models ("time_ms" by default).
  const std::string& response() const { return response_; }

  /// Guarded prediction: hull check, counter-chain demotion, physical
  /// caps, per-tree interval and confidence grade. With no guard tripped
  /// the returned value is bit-identical to predict_time.
  bf::guard::PredictionGuardRecord predict_guarded(double size) const;

  /// Predict a series and score it against measured times. When the
  /// guard is enabled the series carries a filled GuardReport.
  PredictionSeries validate(const std::vector<double>& sizes,
                            const std::vector<double>& measured_ms) const;

  /// The full-variable model (for comparison) and the reduced model.
  const BlackForestModel& full_model() const { return full_; }
  const BlackForestModel& reduced_model() const { return reduced_; }
  const CounterModels& counter_models() const { return counters_; }
  const std::vector<std::string>& retained() const { return retained_; }
  /// Training hull of the problem size (piece 1 of the guard layer).
  const bf::guard::DomainGuard& hull() const { return hull_; }
  /// Fit-time guard skeleton (hull + per-counter chain records).
  bf::guard::GuardReport guard_report() const;

  /// Serialise the complete prediction state (reduced model, counter
  /// chains, hull, guard thresholds, sanity envelopes, architecture) —
  /// the payload of a .bfmodel bundle. The full-variable comparison
  /// model is fit-time-only and is NOT stored: a loaded predictor
  /// predicts bit-identically but full_model() is empty.
  void save(std::ostream& os) const;
  static ProblemScalingPredictor load(std::istream& is);

 private:
  BlackForestModel full_;
  BlackForestModel reduced_;
  CounterModels counters_;
  std::vector<std::string> retained_;
  std::string response_ = "time_ms";  ///< profiling::kTimeColumn
  bf::guard::DomainGuard hull_;
  bf::guard::GuardOptions guard_;
  std::optional<gpusim::ArchSpec> arch_;
  // Sanity envelope per counter entry (aligned with counters_ entries):
  // max training value, value at the largest training size, and whether
  // the counter registry marks it non-decreasing in problem size.
  std::vector<double> train_max_;
  std::vector<double> train_at_max_size_;
  std::vector<bool> monotone_;
  double max_train_size_ = 0.0;
};

// ---- Hardware scaling ----

struct HardwareScalingOptions {
  std::size_t top_k = 6;
  /// Fraction of the target-GPU sweep used for calibration (the paper
  /// calibrates on the target and tests on the rest).
  double calibration_fraction = 0.8;
  /// Spearman-style rank-overlap threshold below which the mixed-variable
  /// workaround is applied automatically.
  double similarity_threshold = 0.5;
  ModelOptions model;
  /// Hull + interval grading of the target test rows; predictions are
  /// unchanged, the guard only annotates.
  bf::guard::GuardOptions guard;
  std::uint64_t seed = 99;

  HardwareScalingOptions() {
    model.forest.min_node_size = 2;  // see ProblemScalingOptions
  }
};

struct HardwareScalingResult {
  PredictionSeries series;     ///< predictions on the target test split
  double similarity = 0.0;     ///< importance-ranking overlap in [0,1]
  bool used_mixed_variables = false;
  std::vector<std::string> variables;  ///< predictor set actually used
  /// Top variables on source and target (for Fig. 8a/8b style reports).
  std::vector<std::string> source_top;
  std::vector<std::string> target_top;
};

class HardwareScalingPredictor {
 public:
  /// `source` and `target` are sweeps of the same workload over the same
  /// sizes on two GPUs, collected with machine characteristics injected.
  static HardwareScalingResult predict(const ml::Dataset& source,
                                       const ml::Dataset& target,
                                       const HardwareScalingOptions& options =
                                           {});

  /// Overlap of the top-k importance rankings of two fitted models,
  /// in [0,1] (the paper's "sufficiently similar hardware" test).
  static double importance_similarity(const BlackForestModel& a,
                                      const BlackForestModel& b,
                                      std::size_t k);
};

}  // namespace bf::core
