#include "core/predictor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gpusim/arch.hpp"
#include "ml/metrics.hpp"
#include "profiling/sweep.hpp"

namespace bf::core {
namespace {

PredictionSeries score_series(std::vector<double> sizes,
                              std::vector<double> measured,
                              std::vector<double> predicted) {
  PredictionSeries s;
  s.sizes = std::move(sizes);
  s.measured_ms = std::move(measured);
  s.predicted_ms = std::move(predicted);
  s.mse = ml::mse(s.measured_ms, s.predicted_ms);
  s.explained_variance = ml::explained_variance(s.measured_ms, s.predicted_ms);
  s.median_abs_pct_error =
      ml::median_abs_pct_error(s.measured_ms, s.predicted_ms);
  return s;
}

std::vector<std::string> common_columns(const ml::Dataset& a,
                                        const ml::Dataset& b) {
  std::vector<std::string> out;
  for (const auto& name : a.column_names()) {
    if (b.has_column(name)) out.push_back(name);
  }
  return out;
}

}  // namespace

// ---- Problem scaling ----

ProblemScalingPredictor ProblemScalingPredictor::build(
    const ml::Dataset& sweep, const ProblemScalingOptions& options) {
  ProblemScalingPredictor p;
  p.full_ = BlackForestModel::fit(sweep, options.model);

  // Retain the top-k variables; "size" rides along so the counter models
  // and the forest agree on the input space.
  p.retained_ = p.full_.top_variables(options.top_k);
  if (std::find(p.retained_.begin(), p.retained_.end(),
                profiling::kSizeColumn) == p.retained_.end() &&
      p.full_.train_data().has_column(profiling::kSizeColumn)) {
    p.retained_.push_back(profiling::kSizeColumn);
  }
  p.reduced_ = p.full_.refit_with(p.retained_);

  CounterModelOptions cm = options.counter_models;
  cm.inputs = {profiling::kSizeColumn};
  p.counters_ = CounterModels::fit(p.full_.train_data(), p.retained_, cm);
  return p;
}

double ProblemScalingPredictor::predict_time(double size) const {
  // Generate the retained counters at this size, then query the forest.
  ml::Dataset features = counters_.predict_features({size});
  return reduced_.predict(features)[0];
}

PredictionSeries ProblemScalingPredictor::validate(
    const std::vector<double>& sizes,
    const std::vector<double>& measured_ms) const {
  BF_CHECK_MSG(sizes.size() == measured_ms.size(),
               "sizes/measured length mismatch");
  std::vector<double> predicted;
  predicted.reserve(sizes.size());
  for (const double s : sizes) predicted.push_back(predict_time(s));
  return score_series(sizes, measured_ms, std::move(predicted));
}

// ---- Hardware scaling ----

double HardwareScalingPredictor::importance_similarity(
    const BlackForestModel& a, const BlackForestModel& b, std::size_t k) {
  // Rank-tolerant overlap: a top-k variable of the source still counts as
  // shared if it appears anywhere in the target's top-2k. Collinear
  // counters shuffle arbitrarily within the leading pack (Strobl et al.,
  // which the paper cites), so exact-position comparison would be noise.
  const auto ta = a.top_variables(k);
  const auto tb = b.top_variables(2 * k);
  std::size_t overlap = 0;
  for (const auto& name : ta) {
    if (std::find(tb.begin(), tb.end(), name) != tb.end()) ++overlap;
  }
  return k == 0 ? 0.0
                : static_cast<double>(overlap) / static_cast<double>(k);
}

HardwareScalingResult HardwareScalingPredictor::predict(
    const ml::Dataset& source, const ml::Dataset& target,
    const HardwareScalingOptions& options) {
  HardwareScalingResult out;

  // Per-architecture models to compare importance rankings (Fig. 8a/8b).
  ModelOptions per_arch = options.model;
  const BlackForestModel src_model = BlackForestModel::fit(source, per_arch);
  const BlackForestModel tgt_model = BlackForestModel::fit(target, per_arch);
  out.source_top = src_model.top_variables(options.top_k);
  out.target_top = tgt_model.top_variables(options.top_k);
  out.similarity =
      importance_similarity(src_model, tgt_model, options.top_k);
  out.used_mixed_variables = out.similarity < options.similarity_threshold;

  // Columns usable across the two generations.
  const std::vector<std::string> common = common_columns(source, target);
  BF_CHECK_MSG(std::find(common.begin(), common.end(),
                         profiling::kTimeColumn) != common.end(),
               "datasets lack a common response column");

  // Machine characteristics + problem size always participate.
  std::vector<std::string> machine_cols;
  for (const auto& [name, _] :
       gpusim::machine_characteristics(gpusim::arch_registry().front())) {
    if (std::find(common.begin(), common.end(), name) != common.end()) {
      machine_cols.push_back(name);
    }
  }
  BF_CHECK_MSG(!machine_cols.empty(),
               "hardware scaling needs machine-characteristic columns; "
               "collect sweeps with machine_characteristics = true");

  std::vector<std::string> vars;
  if (out.used_mixed_variables) {
    // The paper's workaround: a mixture of important variables from both
    // architectures, restricted to counters both GPUs expose.
    for (const auto& list : {out.source_top, out.target_top}) {
      for (const auto& name : list) {
        const bool in_common =
            std::find(common.begin(), common.end(), name) != common.end();
        if (in_common &&
            std::find(vars.begin(), vars.end(), name) == vars.end()) {
          vars.push_back(name);
        }
      }
    }
  } else {
    for (const auto& name : common) {
      if (name == profiling::kTimeColumn) continue;
      const bool is_machine =
          std::find(machine_cols.begin(), machine_cols.end(), name) !=
          machine_cols.end();
      if (!is_machine) vars.push_back(name);
    }
  }
  if (std::find(vars.begin(), vars.end(), profiling::kSizeColumn) ==
          vars.end() &&
      std::find(common.begin(), common.end(), profiling::kSizeColumn) !=
          common.end()) {
    vars.push_back(profiling::kSizeColumn);
  }

  std::vector<std::string> train_cols = vars;
  for (const auto& m : machine_cols) train_cols.push_back(m);
  train_cols.push_back(profiling::kTimeColumn);

  // Calibration/test split of the target sweep; training set = all source
  // rows + the target calibration rows.
  Rng rng(options.seed);
  const ml::TrainTestSplit split = ml::train_test_split(
      target.select_columns(train_cols), 1.0 - options.calibration_fraction,
      rng);
  const ml::Dataset train = ml::Dataset::concat(
      source.select_columns(train_cols), split.train);

  ModelOptions fit_options = options.model;
  fit_options.test_fraction = 0.0;
  BlackForestModel model = BlackForestModel::fit(train, fit_options);
  out.variables = model.predictors();

  const std::vector<double> predicted = model.predict(split.test);
  out.series = score_series(split.test.column(profiling::kSizeColumn),
                            split.test.column(profiling::kTimeColumn),
                            predicted);
  return out;
}

}  // namespace bf::core
