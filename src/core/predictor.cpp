#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "gpusim/arch.hpp"
#include "guard/physical.hpp"
#include "ml/metrics.hpp"
#include "profiling/counter_registry.hpp"
#include "profiling/sweep.hpp"

namespace bf::core {
namespace {

PredictionSeries score_series(std::vector<double> sizes,
                              std::vector<double> measured,
                              std::vector<double> predicted) {
  PredictionSeries s;
  s.sizes = std::move(sizes);
  s.measured_ms = std::move(measured);
  s.predicted_ms = std::move(predicted);
  s.mse = ml::mse(s.measured_ms, s.predicted_ms);
  s.explained_variance = ml::explained_variance(s.measured_ms, s.predicted_ms);
  s.median_abs_pct_error =
      ml::median_abs_pct_error(s.measured_ms, s.predicted_ms);
  return s;
}

std::vector<std::string> common_columns(const ml::Dataset& a,
                                        const ml::Dataset& b) {
  std::vector<std::string> out;
  for (const auto& name : a.column_names()) {
    if (b.has_column(name)) out.push_back(name);
  }
  return out;
}

std::string format_clamp(const guard::ClampEvent& e) {
  std::ostringstream os;
  os << e.counter << ": " << e.from << " -> " << e.to << " (" << e.reason
     << ")";
  return os.str();
}

/// Count predict-time events belonging to one counter ("name: ..." lines).
int count_events(const std::vector<guard::PredictionGuardRecord>& recs,
                 const std::string& counter, bool clamps) {
  int n = 0;
  const std::string prefix = counter + ":";
  for (const auto& rec : recs) {
    for (const auto& line : clamps ? rec.clamps : rec.demotions) {
      if (line.rfind(prefix, 0) == 0) ++n;
    }
  }
  return n;
}

guard::PredictionGuardRecord grade_forest_row(
    const guard::DomainGuard& hull, const ml::Dataset& rows, std::size_t row,
    double size, const ml::PredictionInterval& iv,
    const guard::GuardOptions& options) {
  guard::PredictionGuardRecord rec;
  rec.size = size;
  rec.value = iv.mean;
  rec.raw_value = iv.mean;
  rec.lo = iv.lo;
  rec.hi = iv.hi;
  rec.interval_width = std::abs(iv.mean) > 0.0
                           ? (iv.hi - iv.lo) / std::abs(iv.mean)
                           : iv.hi - iv.lo;
  rec.flags = hull.check_row(rows, row);
  rec.extrapolated = !rec.flags.empty();
  rec.grade = guard::grade_prediction(rec, options);
  return rec;
}

}  // namespace

// ---- Problem scaling ----

ProblemScalingPredictor ProblemScalingPredictor::build(
    const ml::Dataset& sweep, const ProblemScalingOptions& options) {
  ProblemScalingPredictor p;
  p.response_ = options.model.response;
  p.full_ = BlackForestModel::fit(sweep, options.model);

  // Retain the top-k variables; "size" rides along so the counter models
  // and the forest agree on the input space.
  p.retained_ = p.full_.top_variables(options.top_k);
  if (std::find(p.retained_.begin(), p.retained_.end(),
                profiling::kSizeColumn) == p.retained_.end() &&
      p.full_.train_data().has_column(profiling::kSizeColumn)) {
    p.retained_.push_back(profiling::kSizeColumn);
  }
  p.reduced_ = p.full_.refit_with(p.retained_);

  CounterModelOptions cm = options.counter_models;
  cm.inputs = {profiling::kSizeColumn};
  p.guard_ = options.guard;
  p.arch_ = options.arch;
  if (p.guard_.enabled) {
    cm.fit_fallback_chain = true;
    cm.cv_folds = options.guard.cv_folds;
  }
  p.counters_ = CounterModels::fit(p.full_.train_data(), p.retained_, cm);

  // Guard fit-time state: the training hull over every retained feature
  // and the per-counter sanity envelope the fallback chain is judged by.
  const ml::Dataset& train = p.full_.train_data();
  p.hull_ = guard::DomainGuard::build(train, p.retained_, p.guard_.margin);
  const auto& size_col = train.column(profiling::kSizeColumn);
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < size_col.size(); ++i) {
    if (size_col[i] > size_col[argmax]) argmax = i;
  }
  p.max_train_size_ = size_col.empty() ? 0.0 : size_col[argmax];
  p.train_max_.reserve(p.counters_.num_entries());
  for (std::size_t e = 0; e < p.counters_.num_entries(); ++e) {
    const auto& col = train.column(p.counters_.entry_counter(e));
    p.train_max_.push_back(*std::max_element(col.begin(), col.end()));
    p.train_at_max_size_.push_back(col[argmax]);
    p.monotone_.push_back(
        profiling::counter_monotonicity(p.counters_.entry_counter(e)) ==
        profiling::Monotonicity::kNonDecreasing);
  }
  return p;
}

double ProblemScalingPredictor::predict_time(double size) const {
  // Generate the retained counters at this size, then query the forest.
  ml::Dataset features = counters_.predict_features({size});
  return reduced_.predict(features)[0];
}

guard::PredictionGuardRecord ProblemScalingPredictor::predict_guarded(
    double size) const {
  guard::PredictionGuardRecord rec;
  rec.size = size;

  // Reused buffers for the per-size hot path: counter-chain queries and
  // forest interval queries are allocation-free below this point.
  const double cm_in[1] = {size};
  const std::span<const double> cm_inputs(cm_in);
  std::vector<double> cm_scratch;
  ml::ForestScratch forest_scratch;

  // 1. Generate the retained counters, demoting down each fallback chain
  //    when a model's output violates its sanity envelope.
  ml::Dataset features;
  features.add_column(profiling::kSizeColumn, {size});
  for (std::size_t e = 0; e < counters_.num_entries(); ++e) {
    const std::string& name = counters_.entry_counter(e);
    const auto& chain = counters_.entry_chain(e);
    const bool has_chain = chain.size() > 1;
    double envelope = std::numeric_limits<double>::infinity();
    if (has_chain) {
      const double pl = counters_.predict_kind(
          e, CounterModelKind::kPowerLaw, cm_inputs, cm_scratch);
      envelope = std::max(train_max_[e], pl) * guard_.demote_slack;
    }
    const bool beyond_train = size > max_train_size_;
    double value = 0.0;
    bool accepted = false;
    std::string first_failure;
    for (const CounterModelKind kind : chain) {
      bool neg = false;
      const double v =
          counters_.predict_kind(e, kind, cm_inputs, cm_scratch, &neg);
      std::string why;
      if (!std::isfinite(v)) {
        why = "non-finite";
      } else if (neg) {
        why = "negative";
      } else if (v > envelope) {
        why = "exceeds sanity envelope";
      } else if (beyond_train && monotone_[e] &&
                 v < train_at_max_size_[e] * guard_.monotone_floor) {
        why = "breaks monotone growth";
      }
      if (!why.empty()) {
        if (first_failure.empty()) first_failure = why;
        continue;
      }
      value = v;
      accepted = true;
      if (kind != chain.front()) {
        rec.demotions.push_back(
            name + ": " + counter_model_name(chain.front()) + " -> " +
            counter_model_name(kind) + " (" + first_failure + ")");
      }
      break;
    }
    if (!accepted) {
      // Every model failed: fall back to the power law clamped into the
      // envelope — the least-wrong physically meaningful value.
      double v = has_chain
                     ? counters_.predict_kind(e, CounterModelKind::kPowerLaw,
                                              cm_inputs, cm_scratch)
                     : counters_.predict_kind(e, chain.front(), cm_inputs,
                                              cm_scratch);
      if (!std::isfinite(v)) v = train_at_max_size_[e];
      value = std::clamp(v, 0.0, std::isfinite(envelope)
                                     ? envelope
                                     : std::numeric_limits<double>::max());
      std::ostringstream os;
      os << name << ": " << v << " -> " << value
         << " (all chain models failed: " << first_failure << ")";
      rec.clamps.push_back(os.str());
    }
    features.add_column(name, {value});
  }

  // 2. Hull check over the query size and the generated counters.
  rec.flags = hull_.check_row(features, 0);
  rec.extrapolated = !rec.flags.empty();

  // 3. Static physical caps (ratio metrics, bandwidth, issue width).
  const std::vector<guard::PhysicalCap> caps =
      arch_ ? guard::static_caps(*arch_) : guard::ratio_caps();
  for (const auto& ev :
       guard::clamp_row_to_caps(features, 0, caps, guard_.cap_tolerance)) {
    rec.clamps.push_back(format_clamp(ev));
  }

  // 4. Forest query with per-tree spread, on the frozen flat engine.
  linalg::Matrix xm = features.to_matrix(reduced_.predictors());
  ml::PredictionInterval iv =
      reduced_.predict_interval(xm.row_ptr(0), 0.1, forest_scratch);
  rec.raw_value = iv.mean;

  // 5. Response-dependent caps. For the time response the predicted
  //    time bounds the counters (bandwidth x time, issue rate x time);
  //    when one fires, re-query the forest with the capped counters.
  //    For the power response the prediction itself is bounded by the
  //    board's physical envelope [idle_w, tdp_w].
  if (arch_ && response_ == profiling::kTimeColumn &&
      std::isfinite(iv.mean) && iv.mean > 0.0) {
    const auto tcaps = guard::time_caps(*arch_, iv.mean);
    const auto tev =
        guard::clamp_row_to_caps(features, 0, tcaps, guard_.cap_tolerance);
    if (!tev.empty()) {
      for (const auto& ev : tev) rec.clamps.push_back(format_clamp(ev));
      xm = features.to_matrix(reduced_.predictors());
      iv = reduced_.predict_interval(xm.row_ptr(0), 0.1, forest_scratch);
    }
  } else if (arch_ && response_ == profiling::kPowerColumn) {
    std::vector<guard::ClampEvent> pev;
    const double capped = guard::clamp_power_to_envelope(
        *arch_, iv.mean, guard_.cap_tolerance, pev);
    if (!pev.empty()) {
      for (const auto& ev : pev) rec.clamps.push_back(format_clamp(ev));
      iv.mean = capped;
      iv.lo = std::clamp(iv.lo, arch_->idle_w, arch_->tdp_w);
      iv.hi = std::clamp(iv.hi, arch_->idle_w, arch_->tdp_w);
    }
  }

  rec.value = iv.mean;
  rec.lo = iv.lo;
  rec.hi = iv.hi;
  rec.interval_width = std::abs(iv.mean) > 0.0
                           ? (iv.hi - iv.lo) / std::abs(iv.mean)
                           : iv.hi - iv.lo;
  rec.grade = guard::grade_prediction(rec, guard_);
  return rec;
}

guard::GuardReport ProblemScalingPredictor::guard_report() const {
  guard::GuardReport report;
  report.enabled = guard_.enabled;
  report.options = guard_;
  report.hull = hull_.ranges();
  for (const auto& info : counters_.info()) {
    guard::CounterGuardRecord rec;
    rec.counter = info.counter;
    rec.chosen = counter_model_name(info.chosen);
    rec.r2 = info.r2;
    rec.cv_rmse = info.cv_rmse;
    for (const CounterModelKind k : info.chain) {
      rec.chain.push_back(counter_model_name(k));
    }
    report.counters.push_back(std::move(rec));
  }
  return report;
}

PredictionSeries ProblemScalingPredictor::validate(
    const std::vector<double>& sizes,
    const std::vector<double>& measured_ms) const {
  BF_CHECK_MSG(sizes.size() == measured_ms.size(),
               "sizes/measured length mismatch");
  std::vector<double> predicted;
  predicted.reserve(sizes.size());
  if (!guard_.enabled) {
    // Legacy unguarded path, bit for bit.
    for (const double s : sizes) predicted.push_back(predict_time(s));
    return score_series(sizes, measured_ms, std::move(predicted));
  }
  std::vector<guard::PredictionGuardRecord> recs;
  recs.reserve(sizes.size());
  for (const double s : sizes) {
    recs.push_back(predict_guarded(s));
    predicted.push_back(recs.back().value);
  }
  PredictionSeries series =
      score_series(sizes, measured_ms, std::move(predicted));
  series.guard = guard_report();
  for (auto& counter : series.guard.counters) {
    counter.demotions = count_events(recs, counter.counter, false);
    counter.clamps = count_events(recs, counter.counter, true);
  }
  series.guard.predictions = std::move(recs);
  return series;
}

void ProblemScalingPredictor::save(std::ostream& os) const {
  os.precision(17);
  // Version 2 only adds the response record; predictors of the classic
  // time response keep writing version 1, so every byte of a no-power
  // export is identical to what the pre-power writer produced.
  if (response_ == profiling::kTimeColumn) {
    os << "bf_psp 1\n";
  } else {
    os << "bf_psp 2\n";
    os << "response " << response_ << "\n";
  }
  // The architecture is stored by name and re-resolved from the compiled
  // registry on load: physical caps derive from the spec, so name-based
  // lookup keeps capped predictions identical across export/reload.
  os << "arch " << (arch_ ? arch_->name : std::string("-")) << "\n";
  os << "retained " << retained_.size();
  for (const auto& name : retained_) os << ' ' << name;
  os << "\n";
  os << "envelope " << train_max_.size() << ' ' << max_train_size_ << "\n";
  for (std::size_t e = 0; e < train_max_.size(); ++e) {
    os << train_max_[e] << ' ' << train_at_max_size_[e] << ' '
       << (monotone_[e] ? 1 : 0) << "\n";
  }
  guard::save_options(os, guard_);
  hull_.save(os);
  counters_.save(os);
  reduced_.save(os);
}

ProblemScalingPredictor ProblemScalingPredictor::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_psp", 2);
  ProblemScalingPredictor p;
  std::string tag;
  if (format_version >= 2) {
    BF_CHECK_MSG(
        static_cast<bool>(is >> tag >> p.response_) && tag == "response",
        "bf_psp: malformed response record");
  }
  std::string arch_name;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> arch_name) && tag == "arch",
               "bf_psp: malformed arch record");
  if (arch_name != "-") {
    // Throws for unknown names: a bundle trained against an architecture
    // this binary does not know cannot reproduce its physical caps.
    p.arch_ = gpusim::arch_by_name(arch_name);
  }
  std::size_t n_retained = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n_retained) &&
                   tag == "retained" && n_retained >= 1 &&
                   n_retained <= 100'000,
               "bf_psp: malformed retained header");
  p.retained_.resize(n_retained);
  for (auto& name : p.retained_) {
    BF_CHECK_MSG(static_cast<bool>(is >> name),
                 "bf_psp: truncated retained list");
  }
  std::size_t n_env = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n_env >> p.max_train_size_) &&
                   tag == "envelope",
               "bf_psp: malformed envelope header");
  p.train_max_.resize(n_env);
  p.train_at_max_size_.resize(n_env);
  p.monotone_.resize(n_env);
  for (std::size_t e = 0; e < n_env; ++e) {
    int monotone = 0;
    BF_CHECK_MSG(static_cast<bool>(is >> p.train_max_[e] >>
                                   p.train_at_max_size_[e] >> monotone),
                 "bf_psp: truncated envelope");
    p.monotone_[e] = monotone != 0;
  }
  p.guard_ = guard::load_options(is);
  p.hull_ = guard::DomainGuard::load(is);
  p.counters_ = CounterModels::load(is);
  p.reduced_ = BlackForestModel::load(is);
  BF_CHECK_MSG(p.counters_.num_entries() == n_env,
               "bf_psp: envelope count disagrees with counter models");
  return p;
}

// ---- Hardware scaling ----

double HardwareScalingPredictor::importance_similarity(
    const BlackForestModel& a, const BlackForestModel& b, std::size_t k) {
  // Rank-tolerant overlap: a top-k variable of the source still counts as
  // shared if it appears anywhere in the target's top-2k. Collinear
  // counters shuffle arbitrarily within the leading pack (Strobl et al.,
  // which the paper cites), so exact-position comparison would be noise.
  const auto ta = a.top_variables(k);
  const auto tb = b.top_variables(2 * k);
  std::size_t overlap = 0;
  for (const auto& name : ta) {
    if (std::find(tb.begin(), tb.end(), name) != tb.end()) ++overlap;
  }
  return k == 0 ? 0.0
                : static_cast<double>(overlap) / static_cast<double>(k);
}

HardwareScalingResult HardwareScalingPredictor::predict(
    const ml::Dataset& source, const ml::Dataset& target,
    const HardwareScalingOptions& options) {
  HardwareScalingResult out;

  // Per-architecture models to compare importance rankings (Fig. 8a/8b).
  ModelOptions per_arch = options.model;
  const BlackForestModel src_model = BlackForestModel::fit(source, per_arch);
  const BlackForestModel tgt_model = BlackForestModel::fit(target, per_arch);
  out.source_top = src_model.top_variables(options.top_k);
  out.target_top = tgt_model.top_variables(options.top_k);
  out.similarity =
      importance_similarity(src_model, tgt_model, options.top_k);
  out.used_mixed_variables = out.similarity < options.similarity_threshold;

  // Columns usable across the two generations.
  const std::vector<std::string> common = common_columns(source, target);
  BF_CHECK_MSG(std::find(common.begin(), common.end(),
                         profiling::kTimeColumn) != common.end(),
               "datasets lack a common response column");

  // Machine characteristics + problem size always participate.
  std::vector<std::string> machine_cols;
  for (const auto& [name, _] :
       gpusim::machine_characteristics(gpusim::arch_registry().front())) {
    if (std::find(common.begin(), common.end(), name) != common.end()) {
      machine_cols.push_back(name);
    }
  }
  BF_CHECK_MSG(!machine_cols.empty(),
               "hardware scaling needs machine-characteristic columns; "
               "collect sweeps with machine_characteristics = true");

  std::vector<std::string> vars;
  if (out.used_mixed_variables) {
    // The paper's workaround: a mixture of important variables from both
    // architectures, restricted to counters both GPUs expose.
    for (const auto& list : {out.source_top, out.target_top}) {
      for (const auto& name : list) {
        const bool in_common =
            std::find(common.begin(), common.end(), name) != common.end();
        if (in_common &&
            std::find(vars.begin(), vars.end(), name) == vars.end()) {
          vars.push_back(name);
        }
      }
    }
  } else {
    for (const auto& name : common) {
      if (name == profiling::kTimeColumn) continue;
      const bool is_machine =
          std::find(machine_cols.begin(), machine_cols.end(), name) !=
          machine_cols.end();
      if (!is_machine) vars.push_back(name);
    }
  }
  if (std::find(vars.begin(), vars.end(), profiling::kSizeColumn) ==
          vars.end() &&
      std::find(common.begin(), common.end(), profiling::kSizeColumn) !=
          common.end()) {
    vars.push_back(profiling::kSizeColumn);
  }

  std::vector<std::string> train_cols = vars;
  for (const auto& m : machine_cols) train_cols.push_back(m);
  train_cols.push_back(profiling::kTimeColumn);

  // Calibration/test split of the target sweep; training set = all source
  // rows + the target calibration rows.
  Rng rng(options.seed);
  const ml::TrainTestSplit split = ml::train_test_split(
      target.select_columns(train_cols), 1.0 - options.calibration_fraction,
      rng);
  const ml::Dataset train = ml::Dataset::concat(
      source.select_columns(train_cols), split.train);

  ModelOptions fit_options = options.model;
  fit_options.test_fraction = 0.0;
  BlackForestModel model = BlackForestModel::fit(train, fit_options);
  out.variables = model.predictors();

  const std::vector<double> predicted = model.predict(split.test);
  out.series = score_series(split.test.column(profiling::kSizeColumn),
                            split.test.column(profiling::kTimeColumn),
                            predicted);

  if (options.guard.enabled) {
    // Annotate (never alter) the test predictions: hull membership of
    // each test row w.r.t. the calibrated training set, plus per-tree
    // spread grading. Cross-architecture prediction is exactly where the
    // model silently leaves its domain (paper §6.2's NW divergence).
    const guard::DomainGuard hull = guard::DomainGuard::build(
        train, model.predictors(), options.guard.margin);
    const linalg::Matrix xm = split.test.to_matrix(model.predictors());
    const auto intervals = model.predict_intervals(xm);
    out.series.guard.enabled = true;
    out.series.guard.options = options.guard;
    out.series.guard.hull = hull.ranges();
    const auto& test_sizes = out.series.sizes;
    for (std::size_t r = 0; r < intervals.size(); ++r) {
      out.series.guard.predictions.push_back(grade_forest_row(
          hull, split.test, r, test_sizes[r], intervals[r], options.guard));
    }
  }
  return out;
}

}  // namespace bf::core
