#include "core/pca_refine.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "profiling/sweep.hpp"

namespace bf::core {

const char* facet_name(Facet facet) {
  switch (facet) {
    case Facet::kMemoryIntensity: return "memory intensity";
    case Facet::kParallelism: return "MIMD/ILP parallelism";
    case Facet::kSimdEfficiency: return "SIMD efficiency";
    case Facet::kMemoryThroughput: return "memory subsystem throughput";
    case Facet::kProblem: return "problem/machine characteristics";
    case Facet::kOther: return "other";
  }
  return "?";
}

Facet counter_facet(const std::string& counter) {
  static const std::vector<std::pair<std::string, Facet>> exact = {
      {"gld_request", Facet::kMemoryIntensity},
      {"gst_request", Facet::kMemoryIntensity},
      {"l1_global_load_hit", Facet::kMemoryIntensity},
      {"l1_global_load_miss", Facet::kMemoryIntensity},
      {"global_store_transaction", Facet::kMemoryIntensity},
      {"l2_read_transactions", Facet::kMemoryIntensity},
      {"l2_write_transactions", Facet::kMemoryIntensity},
      {"dram_read_transactions", Facet::kMemoryIntensity},
      {"dram_write_transactions", Facet::kMemoryIntensity},
      {"shared_load", Facet::kMemoryIntensity},
      {"shared_store", Facet::kMemoryIntensity},
      {"ipc", Facet::kParallelism},
      {"inst_executed", Facet::kParallelism},
      {"inst_issued", Facet::kParallelism},
      {"issue_slot_utilization", Facet::kParallelism},
      {"achieved_occupancy", Facet::kParallelism},
      {"inst_replay_overhead", Facet::kParallelism},
      {"shared_replay_overhead", Facet::kParallelism},
      {"l1_shared_bank_conflict", Facet::kParallelism},
      {"shared_load_replay", Facet::kParallelism},
      {"shared_store_replay", Facet::kParallelism},
      {"warp_execution_efficiency", Facet::kSimdEfficiency},
      {"branch", Facet::kSimdEfficiency},
      {"divergent_branch", Facet::kSimdEfficiency},
      {"flop_sp_efficiency", Facet::kParallelism},
      {"power_avg_w", Facet::kOther},
      {"size", Facet::kProblem},
      {"wsched", Facet::kProblem},
      {"freq", Facet::kProblem},
      {"smp", Facet::kProblem},
      {"rco", Facet::kProblem},
      {"mbw", Facet::kProblem},
      {"regs", Facet::kProblem},
      {"l2c", Facet::kProblem},
  };
  for (const auto& [name, facet] : exact) {
    if (name == counter) return facet;
  }
  if (counter.find("throughput") != std::string::npos ||
      counter.find("efficiency") != std::string::npos) {
    return Facet::kMemoryThroughput;
  }
  return Facet::kOther;
}

PcaRefinement pca_refine(const ml::Dataset& ds,
                         const PcaRefineOptions& options) {
  // Assemble the variable set: all columns except the response and the
  // exclusions, with constants removed (they break standardisation).
  ml::Dataset vars = ds.drop_columns({profiling::kTimeColumn});
  vars = vars.drop_columns(options.exclude);
  vars.drop_constant_columns();
  BF_CHECK_MSG(vars.num_cols() >= 2, "PCA needs at least 2 varying counters");

  PcaRefinement out;
  ml::PcaParams params;
  params.scale = true;
  params.variance_target = options.variance_target;
  params.max_components = options.max_components;
  out.pca.fit(vars.to_matrix(vars.column_names()), vars.column_names(),
              params);
  if (options.varimax) out.pca.varimax();

  const auto proportions = out.pca.variance_proportion();
  const auto strong = out.pca.strong_loadings(options.loading_cutoff);
  const std::size_t k = out.pca.num_retained();

  for (std::size_t c = 0; c < k; ++c) {
    InterpretedComponent comp;
    comp.index = static_cast<int>(c);
    comp.variance_share = proportions[c];
    comp.loadings = strong[c];

    // Dominant facet by |loading| mass.
    std::array<double, 6> mass{};
    for (const auto& [name, loading] : comp.loadings) {
      mass[static_cast<std::size_t>(counter_facet(name))] +=
          std::fabs(loading);
    }
    std::size_t best = 5;  // kOther
    for (std::size_t f = 0; f < mass.size(); ++f) {
      if (mass[f] > mass[best]) best = f;
    }
    comp.facet = static_cast<Facet>(best);
    comp.label = "PC" + std::to_string(c + 1) + ": " +
                 facet_name(comp.facet) + " (" +
                 format_double(100.0 * comp.variance_share, 1) + "% var)";
    out.components.push_back(std::move(comp));
    out.variance_covered += proportions[c];
  }
  return out;
}

}  // namespace bf::core
