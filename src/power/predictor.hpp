// bf::power — energy/power prediction as a second response variable
// (paper §7: "our method is not limited to predicting execution time -
// one could use other metrics of interest, such as power, as response
// variable"; Braun et al. 2020 show counter-based power prediction works
// with exactly this feature set).
//
// PowerPredictor reuses the whole problem-scaling stack — RF over the
// retained counters, GLM/MARS/log-lin/power-law fallback chains per
// counter, hull checks and A/B/C grading — with profiling::kPowerColumn
// as the response and "time_ms" excluded from the predictors, so the
// power model never leans on the very quantity the time model predicts.
// Energy is derived, not modelled: energy_j = power_w x predicted time,
// graded no better than the worse of its two factors.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "guard/guard.hpp"
#include "ml/dataset.hpp"
#include "profiling/sweep.hpp"

namespace bf::power {

struct PowerPredictorOptions {
  /// The underlying problem-scaling configuration. The constructor
  /// pins the response to the power label and excludes the time column;
  /// callers may tune forests/guards but should leave those two alone.
  core::ProblemScalingOptions scaling;

  PowerPredictorOptions() {
    scaling.model.response = profiling::kPowerColumn;
    scaling.model.exclude = {profiling::kTimeColumn};
  }
};

/// One guarded power/energy prediction.
struct PowerPrediction {
  double size = 0.0;
  double power_w = 0.0;   ///< guarded average board power (W)
  double energy_j = 0.0;  ///< power_w x predicted time; 0 without a time
  /// The power-side guard record (TDP/idle clamps, hull flags, grade).
  bf::guard::PredictionGuardRecord record;
  /// Grade of the derived energy figure: the worse of the power grade
  /// and the time prediction's grade (kA when no time was supplied).
  bf::guard::Grade energy_grade = bf::guard::Grade::kA;
};

/// Worse of two confidence grades (C beats B beats A).
bf::guard::Grade worse_grade(bf::guard::Grade a, bf::guard::Grade b);

class PowerPredictor {
 public:
  /// Build from a sweep dataset carrying the power label column.
  static PowerPredictor build(const ml::Dataset& sweep,
                              const PowerPredictorOptions& options = {});

  /// Unguarded scalar power query (the legacy-style raw exit; serving
  /// and tools should use predict_guarded).
  double predict_power(double size) const;

  /// Guarded power prediction: counter-chain demotion, hull check,
  /// board-envelope clamp ([idle_w, tdp_w]) and A/B/C grade.
  PowerPrediction predict_guarded(double size) const;

  /// Guarded power + energy: combines with the time predictor's guarded
  /// record so energy_j = power_w x time and the energy grade is the
  /// worse of the two sides.
  PowerPrediction predict_guarded(
      double size, const bf::guard::PredictionGuardRecord& time_rec) const;

  /// The underlying problem-scaling predictor (response = power).
  const core::ProblemScalingPredictor& scaling() const { return psp_; }

  /// Serialise as a "bf_power" record (wraps the psp payload). Loaded
  /// predictors predict bit-identically.
  void save(std::ostream& os) const;
  static PowerPredictor load(std::istream& is);

 private:
  core::ProblemScalingPredictor psp_;
};

/// Fill the power rows of a prediction series from guarded per-size
/// power queries; energy derives from the series' predicted times.
void annotate_series(core::PredictionSeries& series,
                     const PowerPredictor& predictor);

}  // namespace bf::power
