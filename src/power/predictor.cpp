#include "power/predictor.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/io.hpp"

namespace bf::power {

guard::Grade worse_grade(guard::Grade a, guard::Grade b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

PowerPredictor PowerPredictor::build(const ml::Dataset& sweep,
                                     const PowerPredictorOptions& options) {
  BF_CHECK_MSG(sweep.has_column(profiling::kPowerColumn),
               "sweep lacks the power label column '"
                   << profiling::kPowerColumn
                   << "' (collect with a power-aware profiler)");
  core::ProblemScalingOptions scaling = options.scaling;
  // The two invariants of the power path, restated in case a caller
  // rebuilt the options struct from scratch.
  scaling.model.response = profiling::kPowerColumn;
  if (scaling.model.exclude.empty()) {
    scaling.model.exclude = {profiling::kTimeColumn};
  }
  PowerPredictor p;
  p.psp_ = core::ProblemScalingPredictor::build(sweep, scaling);
  return p;
}

double PowerPredictor::predict_power(double size) const {
  // The wrapped psp models the power response, so its scalar query
  // returns watts, not milliseconds. This IS the unguarded entry point
  // the lint rule polices; predict_guarded wraps it with the envelope.
  return psp_.predict_time(size);  // bf-lint: allow(guarded-predict)
}

PowerPrediction PowerPredictor::predict_guarded(double size) const {
  PowerPrediction out;
  out.size = size;
  out.record = psp_.predict_guarded(size);
  out.power_w = out.record.value;
  out.energy_grade = out.record.grade;
  return out;
}

PowerPrediction PowerPredictor::predict_guarded(
    double size, const guard::PredictionGuardRecord& time_rec) const {
  PowerPrediction out = predict_guarded(size);
  if (std::isfinite(time_rec.value) && time_rec.value > 0.0) {
    out.energy_j = out.power_w * time_rec.value * 1e-3;
    out.energy_grade = worse_grade(out.record.grade, time_rec.grade);
  }
  return out;
}

void PowerPredictor::save(std::ostream& os) const {
  os << "bf_power 1\n";
  psp_.save(os);
}

PowerPredictor PowerPredictor::load(std::istream& is) {
  (void)read_format_version(is, "bf_power", 1);
  PowerPredictor p;
  p.psp_ = core::ProblemScalingPredictor::load(is);
  BF_CHECK_MSG(p.psp_.response() == profiling::kPowerColumn,
               "bf_power: wrapped predictor models '"
                   << p.psp_.response() << "', not the power response");
  return p;
}

void annotate_series(core::PredictionSeries& series,
                     const PowerPredictor& predictor) {
  series.power_w.clear();
  series.energy_j.clear();
  series.power_guard.clear();
  series.power_w.reserve(series.sizes.size());
  series.energy_j.reserve(series.sizes.size());
  series.power_guard.reserve(series.sizes.size());
  for (std::size_t i = 0; i < series.sizes.size(); ++i) {
    PowerPrediction pred = predictor.predict_guarded(series.sizes[i]);
    const double time_ms =
        i < series.predicted_ms.size() ? series.predicted_ms[i] : 0.0;
    series.power_w.push_back(pred.power_w);
    series.energy_j.push_back(time_ms > 0.0 ? pred.power_w * time_ms * 1e-3
                                            : 0.0);
    series.power_guard.push_back(std::move(pred.record));
  }
}

}  // namespace bf::power
