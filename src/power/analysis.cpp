#include "power/analysis.hpp"

#include "common/error.hpp"

namespace bf::power {

core::BottleneckReport analyze_energy_bottlenecks(
    const ml::Dataset& data, const std::string& workload,
    const std::string& arch, const EnergyAnalysisOptions& options) {
  BF_CHECK_MSG(data.has_column(profiling::kPowerColumn),
               "dataset lacks the power label column '"
                   << profiling::kPowerColumn << "'");
  const core::BlackForestModel model =
      core::BlackForestModel::fit(data, options.model);
  return core::analyze_bottlenecks(model, workload, arch,
                                   options.bottleneck);
}

}  // namespace bf::power
