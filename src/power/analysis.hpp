// Energy-bottleneck analysis: stage 3 of the methodology (permutation
// importance + partial dependence) run against the power response, so
// bf_analyze can rank *energy* bottlenecks next to time bottlenecks.
#pragma once

#include <string>

#include "core/bottleneck.hpp"
#include "core/model.hpp"
#include "ml/dataset.hpp"
#include "profiling/sweep.hpp"

namespace bf::power {

struct EnergyAnalysisOptions {
  /// Forest configuration for the power-response model. The constructor
  /// pins response = power and excludes the time column.
  core::ModelOptions model;
  core::BottleneckOptions bottleneck;

  EnergyAnalysisOptions() {
    model.response = profiling::kPowerColumn;
    model.exclude = {profiling::kTimeColumn};
    model.forest.min_node_size = 2;  // see core::ProblemScalingOptions
  }
};

/// Fit a power-response forest over `data` and rank the counters driving
/// board power (the same permutation-importance + partial-dependence
/// report core::analyze_bottlenecks produces for time).
core::BottleneckReport analyze_energy_bottlenecks(
    const ml::Dataset& data, const std::string& workload,
    const std::string& arch, const EnergyAnalysisOptions& options = {});

}  // namespace bf::power
