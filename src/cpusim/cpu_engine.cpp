#include "cpusim/cpu_engine.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "gpusim/cache.hpp"

namespace bf::cpusim {
namespace {

/// Per-core accumulation while replaying one core's chunks.
struct CoreState {
  gpusim::Cache l1;
  gpusim::Cache l2;
  gpusim::Cache llc;

  double instructions = 0;
  double simd_ops = 0;
  double l1d_loads = 0;
  double l1d_misses = 0;
  double l2_misses = 0;
  double llc_misses = 0;
  double branches = 0;
  double branch_misses = 0;
  double dram_read_bytes = 0;
  double dram_write_bytes = 0;
  double issue_cycles = 0;
  double stall_cycles = 0;

  /// Hardware stream-prefetcher state: recent miss streams (line
  /// addresses). A miss adjacent to a tracked stream is considered
  /// prefetched — it still consumes DRAM bandwidth but hides its latency.
  std::array<std::uint64_t, 8> stream_heads{};
  std::size_t stream_next = 0;

  explicit CoreState(const CpuSpec& s)
      : l1(static_cast<std::int64_t>(s.l1d_size_kb) * 1024, s.l1_line_bytes,
           s.l1_assoc),
        l2(static_cast<std::int64_t>(s.l2_size_kb) * 1024, s.l1_line_bytes,
           s.l2_assoc),
        llc(s.llc_slice_bytes(), s.l1_line_bytes, s.llc_assoc) {
    stream_heads.fill(~0ull);
  }

  /// True (and the stream advances) when `line` continues a tracked
  /// sequential stream; otherwise the line seeds a new stream.
  bool prefetch_hit(std::uint64_t line) {
    for (auto& head : stream_heads) {
      if (line >= head && line <= head + 2) {
        head = line + 1;
        return true;
      }
    }
    stream_heads[stream_next] = line + 1;
    stream_next = (stream_next + 1) % stream_heads.size();
    return false;
  }

  double cycles() const { return issue_cycles + stall_cycles; }
};

void replay(const CpuSpec& spec, const CpuTrace& trace, CoreState& core) {
  const double issue_cost = 1.0 / spec.issue_width;
  // Average overlap of outstanding misses: dependent streams rarely reach
  // the full MLP; halfway is the classic approximation.
  const double overlap = std::max(1.0, spec.mlp / 2.0);

  for (const CInstr& in : trace) {
    core.instructions += 1;
    core.issue_cycles += issue_cost;
    switch (in.op) {
      case COp::kScalar:
        break;
      case COp::kSimd:
        core.simd_ops += 1;
        break;
      case COp::kBranch:
        core.branches += 1;
        if (in.mispredict) {
          core.branch_misses += 1;
          core.stall_cycles += spec.branch_miss_penalty;
        }
        break;
      case COp::kLoad:
      case COp::kStore: {
        const bool is_load = in.op == COp::kLoad;
        if (is_load) core.l1d_loads += 1;
        const bool write = !is_load;
        const auto l1r = core.l1.access(in.addr, write);
        if (l1r.hit) break;
        if (is_load) core.l1d_misses += 1;
        const auto l2r = core.l2.access(in.addr, write);
        if (l2r.hit) {
          core.stall_cycles +=
              (spec.l2_latency - spec.l1_latency) / overlap;
          break;
        }
        core.l2_misses += 1;
        const auto llcr = core.llc.access(in.addr, write);
        if (llcr.writeback) {
          core.dram_write_bytes += spec.l1_line_bytes;
        }
        if (llcr.hit) {
          core.stall_cycles +=
              (spec.llc_latency - spec.l1_latency) / overlap;
          break;
        }
        core.llc_misses += 1;
        core.dram_read_bytes += spec.l1_line_bytes;
        // A sequential miss is covered by the hardware prefetcher: the
        // bandwidth is still spent, the latency mostly is not.
        const std::uint64_t line =
            in.addr / static_cast<std::uint64_t>(spec.l1_line_bytes);
        if (core.prefetch_hit(line)) {
          core.stall_cycles +=
              (spec.l2_latency - spec.l1_latency) / overlap;
        } else {
          core.stall_cycles +=
              (spec.dram_latency - spec.l1_latency) / overlap;
        }
        break;
      }
    }
  }
}

}  // namespace

CpuRunResult CpuDevice::run(const CpuKernel& kernel,
                            const CpuRunOptions& opts) const {
  const std::int64_t total = kernel.num_chunks();
  BF_CHECK_MSG(total >= 1, "kernel has no work chunks");

  // Sample chunks evenly, rounded to a whole number per core.
  std::int64_t want = total;
  if (opts.max_sampled_chunks > 0 && total > opts.max_sampled_chunks) {
    const std::int64_t per_core =
        std::max<std::int64_t>(2, opts.max_sampled_chunks / spec_.cores);
    want = std::min(total, per_core * spec_.cores);
  }

  std::vector<CoreState> cores;
  cores.reserve(static_cast<std::size_t>(spec_.cores));
  for (int c = 0; c < spec_.cores; ++c) cores.emplace_back(spec_);

  CpuTrace trace;
  for (std::int64_t i = 0; i < want; ++i) {
    const std::int64_t chunk = i * total / want;
    trace.clear();
    CpuTraceSink sink(trace);
    kernel.emit_chunk(chunk, sink);
    replay(spec_, trace,
           cores[static_cast<std::size_t>(i %
                                          static_cast<std::int64_t>(
                                              spec_.cores))]);
  }

  const double scale =
      static_cast<double>(total) / static_cast<double>(want);

  CpuRunResult out;
  out.chunks_total = total;
  out.chunks_simulated = want;

  double max_cycles = 0;
  CoreState sum(spec_);
  for (const auto& core : cores) {
    max_cycles = std::max(max_cycles, core.cycles());
    sum.instructions += core.instructions;
    sum.simd_ops += core.simd_ops;
    sum.l1d_loads += core.l1d_loads;
    sum.l1d_misses += core.l1d_misses;
    sum.l2_misses += core.l2_misses;
    sum.llc_misses += core.llc_misses;
    sum.branches += core.branches;
    sum.branch_misses += core.branch_misses;
    sum.dram_read_bytes += core.dram_read_bytes;
    sum.dram_write_bytes += core.dram_write_bytes;
    sum.issue_cycles += core.issue_cycles;
    sum.stall_cycles += core.stall_cycles;
  }

  const double latency_time_s =
      max_cycles * scale / (spec_.clock_ghz * 1e9);
  const double dram_bytes =
      (sum.dram_read_bytes + sum.dram_write_bytes) * scale;
  const double bw_time_s = dram_bytes / (spec_.mem_bandwidth_gbs * 1e9);
  double time_s = latency_time_s;
  if (bw_time_s > time_s) {
    time_s = bw_time_s;
    out.bandwidth_bound = true;
  }
  BF_CHECK_MSG(time_s > 0.0, "kernel executed no timed work");
  out.time_ms = time_s * 1e3;

  auto& m = out.counters;
  m["instructions"] = sum.instructions * scale;
  m["simd_ops"] = sum.simd_ops * scale;
  m["l1d_loads"] = sum.l1d_loads * scale;
  m["l1d_load_misses"] = sum.l1d_misses * scale;
  m["l2_misses"] = sum.l2_misses * scale;
  m["llc_misses"] = sum.llc_misses * scale;
  m["branches"] = sum.branches * scale;
  m["branch_misses"] = sum.branch_misses * scale;
  m["dram_read_bytes"] = sum.dram_read_bytes * scale;
  m["dram_write_bytes"] = sum.dram_write_bytes * scale;
  m["stall_cycles"] = sum.stall_cycles * scale;
  const double chip_cycles = time_s * spec_.clock_ghz * 1e9;
  m["cpu_cycles"] = chip_cycles;
  m["ipc"] = chip_cycles > 0
                 ? sum.instructions * scale / (chip_cycles * spec_.cores)
                 : 0.0;
  m["mem_bw_utilization"] =
      dram_bytes / std::max(time_s, 1e-12) / (spec_.mem_bandwidth_gbs * 1e9);
  return out;
}

}  // namespace bf::cpusim
