// CPU trace representation and timing engine.
//
// Mirrors the GPU side at a coarser grain: a kernel partitions its work
// into chunks (parallel loop blocks); each chunk emits a stream of
// micro-ops (scalar/SIMD arithmetic, loads, stores, branches with
// mispredict flags). Chunks are scheduled round-robin over cores; each
// core runs an issue-width-limited pipeline with a private L1/L2, a slice
// of the shared LLC (reusing the gpusim cache model), MLP-overlapped miss
// latency and a branch-miss penalty. A DRAM bandwidth roofline caps the
// whole chip, exactly as on the GPU side. Large problems are handled by
// chunk sampling with counter extrapolation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cpusim/cpu_arch.hpp"

namespace bf::cpusim {

enum class COp : std::uint8_t {
  kScalar,  ///< scalar ALU/FPU op
  kSimd,    ///< one SIMD op over simd_width lanes
  kLoad,
  kStore,
  kBranch,
};

struct CInstr {
  COp op = COp::kScalar;
  std::uint64_t addr = 0;   ///< for loads/stores
  std::uint8_t bytes = 4;   ///< access width for loads/stores
  bool mispredict = false;  ///< for branches
};

using CpuTrace = std::vector<CInstr>;

/// Builder through which CPU kernels emit a chunk's micro-ops.
class CpuTraceSink {
 public:
  explicit CpuTraceSink(CpuTrace& out) : out_(out) {}

  void scalar(int count = 1) { push(COp::kScalar, count); }
  void simd(int count = 1) { push(COp::kSimd, count); }
  void load(std::uint64_t addr, std::uint8_t bytes = 4) {
    CInstr in;
    in.op = COp::kLoad;
    in.addr = addr;
    in.bytes = bytes;
    out_.push_back(in);
  }
  void store(std::uint64_t addr, std::uint8_t bytes = 4) {
    CInstr in;
    in.op = COp::kStore;
    in.addr = addr;
    in.bytes = bytes;
    out_.push_back(in);
  }
  void branch(bool mispredict = false) {
    CInstr in;
    in.op = COp::kBranch;
    in.mispredict = mispredict;
    out_.push_back(in);
  }

 private:
  void push(COp op, int count) {
    CInstr in;
    in.op = op;
    for (int i = 0; i < count; ++i) out_.push_back(in);
  }

  CpuTrace& out_;
};

/// The interface CPU kernels implement.
class CpuKernel {
 public:
  virtual ~CpuKernel() = default;
  virtual std::string name() const = 0;
  /// Number of independent work chunks (parallel loop blocks).
  virtual std::int64_t num_chunks() const = 0;
  virtual void emit_chunk(std::int64_t chunk, CpuTraceSink& sink) const = 0;
};

struct CpuRunOptions {
  /// Upper bound on simulated chunks (0 = all).
  std::int64_t max_sampled_chunks = 256;
};

struct CpuRunResult {
  /// perf-style counters: instructions, cpu_cycles, ipc, l1d_loads,
  /// l1d_load_misses, l2_misses, llc_misses, dram_read_bytes,
  /// dram_write_bytes, branches, branch_misses, simd_ops, stall_cycles.
  std::map<std::string, double> counters;
  double time_ms = 0.0;
  std::int64_t chunks_total = 0;
  std::int64_t chunks_simulated = 0;
  bool bandwidth_bound = false;
};

class CpuDevice {
 public:
  explicit CpuDevice(CpuSpec spec) : spec_(std::move(spec)) {}
  const CpuSpec& spec() const { return spec_; }

  CpuRunResult run(const CpuKernel& kernel,
                   const CpuRunOptions& opts = {}) const;

 private:
  CpuSpec spec_;
};

}  // namespace bf::cpusim
