#include "cpusim/cpu_workloads.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bf::cpusim {
namespace {

constexpr int kRowBlock = 8;   // rows per matmul chunk
constexpr int kKBlock = 64;    // k-iterations per matmul chunk
constexpr std::int64_t kTriadChunk = 4096;  // elements per triad chunk

std::uint64_t align_up(std::uint64_t v) { return (v + 255) & ~255ull; }

}  // namespace

// ---- blocked matmul ----

CpuMatMulKernel::CpuMatMulKernel(int n, const CpuSpec& spec)
    : n_(n), simd_(spec.simd_width), line_bytes_(spec.l1_line_bytes) {
  BF_CHECK_MSG(n >= kRowBlock && n % kRowBlock == 0,
               "n must be a positive multiple of " << kRowBlock);
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * n * 4;
  a_base_ = 256;
  b_base_ = align_up(a_base_ + bytes);
  c_base_ = align_up(b_base_ + bytes);
}

std::int64_t CpuMatMulKernel::num_chunks() const {
  const std::int64_t kblocks = (n_ + kKBlock - 1) / kKBlock;
  return static_cast<std::int64_t>(n_ / kRowBlock) * kblocks;
}

void CpuMatMulKernel::emit_chunk(std::int64_t chunk,
                                 CpuTraceSink& sink) const {
  const std::int64_t kblocks = (n_ + kKBlock - 1) / kKBlock;
  const int ib = static_cast<int>(chunk / kblocks) * kRowBlock;
  const int kb = static_cast<int>(chunk % kblocks) * kKBlock;
  const int k_end = std::min(n_, kb + kKBlock);
  const int floats_per_line = line_bytes_ / 4;

  for (int i = ib; i < ib + kRowBlock; ++i) {
    for (int k = kb; k < k_end; ++k) {
      // Load A[i][k] (scalar, reused across the j loop).
      sink.load(a_base_ + 4ull * (static_cast<std::uint64_t>(i) * n_ + k));
      sink.scalar();  // broadcast
      // SIMD j-loop over the B row / C row, touched at line granularity.
      for (int j = 0; j < n_; j += floats_per_line) {
        sink.load(b_base_ +
                  4ull * (static_cast<std::uint64_t>(k) * n_ + j));
        sink.load(c_base_ +
                  4ull * (static_cast<std::uint64_t>(i) * n_ + j));
        // floats_per_line / simd fused multiply-adds per line.
        sink.simd(std::max(1, floats_per_line / simd_));
        sink.store(c_base_ +
                   4ull * (static_cast<std::uint64_t>(i) * n_ + j));
      }
      sink.branch(false);  // k-loop back edge, well predicted
    }
  }
}

// ---- STREAM triad ----

CpuTriadKernel::CpuTriadKernel(std::int64_t n, const CpuSpec& spec)
    : n_(n), simd_(spec.simd_width), line_bytes_(spec.l1_line_bytes) {
  BF_CHECK_MSG(n >= kTriadChunk, "triad needs at least "
                                     << kTriadChunk << " elements");
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * 4;
  a_base_ = 256;
  b_base_ = align_up(a_base_ + bytes);
  c_base_ = align_up(b_base_ + bytes);
}

std::int64_t CpuTriadKernel::num_chunks() const {
  return (n_ + kTriadChunk - 1) / kTriadChunk;
}

void CpuTriadKernel::emit_chunk(std::int64_t chunk,
                                CpuTraceSink& sink) const {
  const std::int64_t lo = chunk * kTriadChunk;
  const std::int64_t hi = std::min(n_, lo + kTriadChunk);
  const int floats_per_line = line_bytes_ / 4;
  for (std::int64_t e = lo; e < hi; e += floats_per_line) {
    sink.load(b_base_ + 4ull * static_cast<std::uint64_t>(e));
    sink.load(c_base_ + 4ull * static_cast<std::uint64_t>(e));
    sink.simd(std::max(1, floats_per_line / simd_));
    sink.store(a_base_ + 4ull * static_cast<std::uint64_t>(e));
  }
  sink.branch(false);
}

// ---- Needleman-Wunsch ----

CpuNwKernel::CpuNwKernel(int len) : len_(len) {
  BF_CHECK_MSG(len >= 16, "sequence too short");
  const std::uint64_t cells =
      static_cast<std::uint64_t>(len + 1) * (len + 1) * 4;
  ref_base_ = 256;
  mat_base_ = align_up(ref_base_ + cells);
}

std::int64_t CpuNwKernel::num_chunks() const { return len_; }

void CpuNwKernel::emit_chunk(std::int64_t chunk, CpuTraceSink& sink) const {
  // One matrix row: north/west/northwest loads + max chain + store. The
  // two max() branches are data-dependent and mispredict often (~20%).
  const std::int64_t cols = len_ + 1;
  const std::int64_t row = chunk + 1;
  for (std::int64_t j = 1; j <= len_; ++j) {
    const std::uint64_t idx =
        static_cast<std::uint64_t>(row) * cols + static_cast<std::uint64_t>(j);
    sink.load(mat_base_ + 4ull * (idx - cols - 1));  // northwest
    sink.load(mat_base_ + 4ull * (idx - cols));      // north
    sink.load(mat_base_ + 4ull * (idx - 1));         // west (L1 hit)
    sink.load(ref_base_ + 4ull * idx);               // substitution score
    sink.scalar(3);                                  // adds + compare
    sink.branch(j % 5 == 0);                         // ~20% mispredicts
    sink.branch(j % 7 == 0);
    sink.store(mat_base_ + 4ull * idx);
  }
}

// ---- workload registry & sweep ----

CpuWorkload cpu_matmul_workload() {
  CpuWorkload w;
  w.name = "cpu_matmul";
  w.make = [](double size, const CpuSpec& spec) {
    return std::make_unique<CpuMatMulKernel>(
        static_cast<int>(std::llround(size)), spec);
  };
  return w;
}

CpuWorkload cpu_triad_workload() {
  CpuWorkload w;
  w.name = "cpu_triad";
  w.make = [](double size, const CpuSpec& spec) {
    return std::make_unique<CpuTriadKernel>(
        static_cast<std::int64_t>(std::llround(size)), spec);
  };
  return w;
}

CpuWorkload cpu_nw_workload() {
  CpuWorkload w;
  w.name = "cpu_nw";
  w.make = [](double size, const CpuSpec&) {
    return std::make_unique<CpuNwKernel>(
        static_cast<int>(std::llround(size)));
  };
  return w;
}

ml::Dataset cpu_sweep(const CpuWorkload& workload, const CpuDevice& device,
                      const std::vector<double>& sizes,
                      const CpuSweepOptions& options) {
  BF_CHECK_MSG(!sizes.empty(), "empty size sweep");
  Rng rng(options.seed);
  const auto jitter = [&](double v, double sd) {
    if (sd <= 0.0 || v == 0.0) return v;
    return v * std::clamp(rng.normal(1.0, sd), 0.5, 1.5);
  };

  ml::Dataset ds;
  bool schema_ready = false;
  std::vector<std::string> counter_names;
  for (const double size : sizes) {
    const auto kernel = workload.make(size, device.spec());
    CpuRunResult r = device.run(*kernel, options.run);
    for (auto& [name, value] : r.counters) {
      value = jitter(value, options.counter_noise_sd);
    }
    r.time_ms = jitter(r.time_ms, options.time_noise_sd);

    if (!schema_ready) {
      ds.add_column("size", {});
      for (const auto& [name, _] : r.counters) {
        counter_names.push_back(name);
        ds.add_column(name, {});
      }
      if (options.machine_characteristics) {
        for (const auto& [name, _] :
             cpu_machine_characteristics(device.spec())) {
          ds.add_column(name, {});
        }
      }
      ds.add_column("time_ms", {});
      schema_ready = true;
    }
    std::vector<double> row;
    row.push_back(size);
    for (const auto& name : counter_names) {
      row.push_back(r.counters.at(name));
    }
    if (options.machine_characteristics) {
      for (const auto& [_, value] :
           cpu_machine_characteristics(device.spec())) {
        row.push_back(value);
      }
    }
    row.push_back(r.time_ms);
    ds.add_row(row);
  }
  return ds;
}

}  // namespace bf::cpusim
