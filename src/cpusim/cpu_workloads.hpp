// CPU kernels and the sweep adapter for the heterogeneous extension.
//
// Kernels are the CPU-side analogues of the paper's workloads: blocked
// SIMD matrix multiply, STREAM triad, and a row-parallel Needleman-
// Wunsch. The sweep adapter produces the same kind of ml::Dataset the
// GPU profiler produces (counters + "size" + "time_ms"), so the entire
// BlackForest core runs unchanged on CPU data — the unified-modelling
// claim of §7.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cpusim/cpu_engine.hpp"
#include "ml/dataset.hpp"

namespace bf::cpusim {

/// Blocked single-precision matmul with SIMD inner loops (row-block x
/// k-block chunks).
class CpuMatMulKernel final : public CpuKernel {
 public:
  explicit CpuMatMulKernel(int n, const CpuSpec& spec);
  std::string name() const override { return "cpu_matmul"; }
  std::int64_t num_chunks() const override;
  void emit_chunk(std::int64_t chunk, CpuTraceSink& sink) const override;

 private:
  int n_;
  int simd_;
  int line_bytes_;
  std::uint64_t a_base_, b_base_, c_base_;
};

/// STREAM triad a[i] = b[i] + s*c[i] over n floats.
class CpuTriadKernel final : public CpuKernel {
 public:
  explicit CpuTriadKernel(std::int64_t n, const CpuSpec& spec);
  std::string name() const override { return "cpu_triad"; }
  std::int64_t num_chunks() const override;
  void emit_chunk(std::int64_t chunk, CpuTraceSink& sink) const override;

 private:
  std::int64_t n_;
  int simd_;
  int line_bytes_;
  std::uint64_t a_base_, b_base_, c_base_;
};

/// Row-parallel Needleman-Wunsch score-matrix fill (scalar, branchy).
class CpuNwKernel final : public CpuKernel {
 public:
  explicit CpuNwKernel(int len);
  std::string name() const override { return "cpu_nw"; }
  std::int64_t num_chunks() const override;
  void emit_chunk(std::int64_t chunk, CpuTraceSink& sink) const override;

 private:
  int len_;
  std::uint64_t ref_base_, mat_base_;
};

/// A CPU workload: named factory from problem size to kernel.
struct CpuWorkload {
  std::string name;
  std::function<std::unique_ptr<CpuKernel>(double size,
                                           const CpuSpec& spec)>
      make;
};

CpuWorkload cpu_matmul_workload();
CpuWorkload cpu_triad_workload();
CpuWorkload cpu_nw_workload();

struct CpuSweepOptions {
  double time_noise_sd = 0.02;
  double counter_noise_sd = 0.003;
  std::uint64_t seed = 555;
  bool machine_characteristics = false;
  CpuRunOptions run;
};

/// Profile `workload` across sizes into a BlackForest-ready dataset
/// ("size" + perf counters + "time_ms").
ml::Dataset cpu_sweep(const CpuWorkload& workload, const CpuDevice& device,
                      const std::vector<double>& sizes,
                      const CpuSweepOptions& options = {});

}  // namespace bf::cpusim
