#include "cpusim/cpu_arch.hpp"

namespace bf::cpusim {

CpuSpec xeon_e5_2620() {
  CpuSpec s;
  s.name = "xeon_e5_2620";
  s.cores = 6;
  s.clock_ghz = 2.0;
  s.issue_width = 4;
  s.simd_width = 8;  // AVX
  s.l1d_size_kb = 32;
  s.l2_size_kb = 256;
  s.llc_size_kb = 15 * 1024;
  s.mem_bandwidth_gbs = 42.6;
  return s;
}

CpuSpec core_i7_4770k() {
  CpuSpec s;
  s.name = "i7_4770k";
  s.cores = 4;
  s.clock_ghz = 3.5;
  s.issue_width = 4;
  s.simd_width = 8;  // AVX2
  s.l1d_size_kb = 32;
  s.l2_size_kb = 256;
  s.llc_size_kb = 8 * 1024;
  s.llc_latency = 36;
  s.mem_bandwidth_gbs = 25.6;
  s.mlp = 10;
  return s;
}

std::vector<std::pair<std::string, double>> cpu_machine_characteristics(
    const CpuSpec& spec) {
  return {
      {"cores", static_cast<double>(spec.cores)},
      {"freq", spec.clock_ghz},
      {"simd_width", static_cast<double>(spec.simd_width)},
      {"llc_kb", static_cast<double>(spec.llc_size_kb)},
      {"mbw", spec.mem_bandwidth_gbs},
  };
}

}  // namespace bf::cpusim
