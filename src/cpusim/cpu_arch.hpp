// CPU architecture descriptions for the §7 heterogeneous extension.
//
// The paper closes with: "we believe our approach is very useful in the
// context of emerging CPU+GPUs heterogeneous systems … As BF is equally
// applicable for all processing units in the platform, we can provide a
// unified modeling approach … We plan to empirically validate this
// assumption, by first proving BF's usability on CPUs." This module
// supplies the CPU substrate for that validation: a multicore model with
// a three-level cache hierarchy and perf-style hardware counters.
#pragma once

#include <string>
#include <vector>

namespace bf::cpusim {

struct CpuSpec {
  std::string name;

  int cores = 6;
  double clock_ghz = 2.0;
  /// Superscalar issue width (instructions per cycle per core).
  int issue_width = 4;
  /// SIMD lanes in single precision (8 = AVX/AVX2).
  int simd_width = 8;

  // Per-core private caches.
  int l1d_size_kb = 32;
  int l1_line_bytes = 64;
  int l1_assoc = 8;
  int l1_latency = 4;
  int l2_size_kb = 256;
  int l2_assoc = 8;
  int l2_latency = 12;
  // Shared last-level cache (modelled as per-core slices).
  int llc_size_kb = 15 * 1024;
  int llc_assoc = 16;
  int llc_latency = 40;

  int dram_latency = 200;
  double mem_bandwidth_gbs = 42.6;

  /// Outstanding misses a core can overlap (memory-level parallelism).
  int mlp = 8;
  /// Branch misprediction penalty in cycles.
  int branch_miss_penalty = 15;

  int llc_slice_bytes() const {
    return llc_size_kb * 1024 / (cores > 0 ? cores : 1);
  }
};

/// Sandy-Bridge-class server part (Xeon E5-2620).
CpuSpec xeon_e5_2620();
/// Haswell-class desktop part (Core i7-4770K).
CpuSpec core_i7_4770k();

/// Machine characteristics injected for heterogeneous/hardware scaling.
std::vector<std::pair<std::string, double>> cpu_machine_characteristics(
    const CpuSpec& spec);

}  // namespace bf::cpusim
