#include "profiling/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "gpusim/arch.hpp"

namespace bf::profiling {
namespace {

void backoff_sleep(const SweepOptions& options, int attempt) {
  if (options.backoff_initial_ms <= 0.0) return;
  const double delay = std::min(
      options.backoff_max_ms,
      options.backoff_initial_ms * std::exp2(static_cast<double>(attempt - 1)));
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay));
}

/// Reject replicates whose time deviates from the median by more than
/// `threshold` scaled MADs. Returns the number rejected. With fewer than
/// 3 replicates there is no robust spread estimate, so nothing happens.
int reject_time_outliers(std::vector<ProfileResult>& reps,
                         double threshold) {
  if (threshold <= 0.0 || reps.size() < 3) return 0;
  std::vector<double> times;
  times.reserve(reps.size());
  for (const auto& r : reps) times.push_back(r.time_ms);
  const double med = ml::nan_median(times);
  std::vector<double> dev;
  dev.reserve(times.size());
  for (const double t : times) dev.push_back(std::fabs(t - med));
  const double mad = ml::nan_median(dev);
  if (!(mad > 0.0)) return 0;
  const double cut = threshold * 1.4826 * mad;  // ~sigma for normal data
  const std::size_t before = reps.size();
  reps.erase(std::remove_if(reps.begin(), reps.end(),
                            [&](const ProfileResult& r) {
                              return std::fabs(r.time_ms - med) > cut;
                            }),
             reps.end());
  return static_cast<int>(before - reps.size());
}

}  // namespace

std::string SweepReport::summary() const {
  std::ostringstream os;
  os << sizes_ok << "/" << sizes.size() << " sizes ok, "
     << retried_attempts << " retried attempt(s), " << missing_cells
     << " missing cell(s)";
  return os.str();
}

std::string SweepReport::to_text() const {
  std::ostringstream os;
  os << "sweep report: " << summary() << "\n";
  for (const auto& so : sizes) {
    const bool noteworthy = !so.ok || so.attempts > so.replicates_ok ||
                            !so.dropped_counters.empty() ||
                            so.outliers_rejected > 0;
    if (!noteworthy) continue;
    os << "  size " << so.size << ": ";
    if (!so.ok) {
      os << "FAILED after " << so.attempts << " attempt(s)";
      if (!so.errors.empty()) os << " (" << so.errors.back() << ")";
    } else {
      os << so.attempts << " attempt(s), " << so.replicates_ok
         << " replicate(s)";
      if (so.outliers_rejected > 0) {
        os << ", " << so.outliers_rejected << " outlier(s) rejected";
      }
      if (!so.dropped_counters.empty()) {
        os << ", dropped [";
        for (std::size_t i = 0; i < so.dropped_counters.size(); ++i) {
          os << (i ? " " : "") << so.dropped_counters[i];
        }
        os << "]";
      }
    }
    os << "\n";
  }
  return os.str();
}

ml::Dataset sweep(const Workload& workload, const gpusim::Device& device,
                  const std::vector<double>& sizes,
                  const SweepOptions& options, SweepReport* report) {
  BF_CHECK_MSG(!sizes.empty(), "empty size sweep");
  BF_CHECK_MSG(options.replicates >= 1, "replicates must be >= 1");
  BF_CHECK_MSG(options.max_attempts >= 1, "max_attempts must be >= 1");
  BF_CHECK_MSG(options.min_success_fraction >= 0.0 &&
                   options.min_success_fraction <= 1.0,
               "min_success_fraction must be in [0,1]");
  Profiler profiler(options.profiler);

  SweepReport local;
  SweepReport& rep = report != nullptr ? *report : local;
  rep = SweepReport{};

  ml::Dataset ds;
  bool schema_ready = false;
  std::vector<std::string> counter_names;

  for (const double size : sizes) {
    SizeOutcome so;
    so.size = size;

    // Collect up to `replicates` successful runs, each with retry.
    std::vector<ProfileResult> reps;
    for (int k = 0; k < options.replicates; ++k) {
      bool got = false;
      for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
        ++so.attempts;
        if (attempt > 1) ++rep.retried_attempts;
        try {
          reps.push_back(profiler.profile(workload, device, size));
          got = true;
          break;
        } catch (const Error& e) {
          so.errors.emplace_back(e.what());
          if (attempt < options.max_attempts) {
            backoff_sleep(options, attempt);
          }
        }
      }
      if (got) {
        ++so.replicates_ok;
      } else {
        ++so.replicates_failed;
      }
    }
    rep.total_attempts += static_cast<std::size_t>(so.attempts);

    if (reps.empty()) {
      ++rep.sizes_failed;
      BF_WARN("sweep: size " << size << " of '" << workload.name
                             << "' failed all " << so.attempts
                             << " attempt(s)");
      rep.sizes.push_back(std::move(so));
      continue;
    }

    if (!schema_ready) {
      counter_names.clear();
      for (const auto& [name, _] : reps.front().counters) {
        counter_names.push_back(name);
      }
      ds.add_column(kSizeColumn, {});
      for (const auto& name : counter_names) ds.add_column(name, {});
      if (options.machine_characteristics) {
        for (const auto& [name, _] :
             gpusim::machine_characteristics(device.arch())) {
          ds.add_column(name, {});
        }
      }
      ds.add_column(kTimeColumn, {});
      schema_ready = true;
    }

    so.outliers_rejected =
        reject_time_outliers(reps, options.outlier_mad_threshold);

    // Aggregate the surviving replicates into one row. With a single
    // replicate the median is the value itself, so the classic sweep is
    // reproduced bit for bit.
    std::vector<double> row;
    row.reserve(ds.num_cols());
    row.push_back(size);
    for (const auto& name : counter_names) {
      std::vector<double> values;
      values.reserve(reps.size());
      for (const auto& r : reps) {
        const auto it = r.counters.find(name);
        if (it != r.counters.end()) values.push_back(it->second);
      }
      const double cell = ml::nan_median(values);
      if (!std::isfinite(cell)) {
        so.dropped_counters.push_back(name);
        ++rep.missing_cells;
        row.push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        row.push_back(cell);
      }
    }
    if (options.machine_characteristics) {
      for (const auto& [_, value] :
           gpusim::machine_characteristics(device.arch())) {
        row.push_back(value);
      }
    }
    {
      std::vector<double> times;
      times.reserve(reps.size());
      for (const auto& r : reps) times.push_back(r.time_ms);
      row.push_back(ml::nan_median(times));
    }
    ds.add_row(row);
    so.ok = true;
    ++rep.sizes_ok;
    rep.sizes.push_back(std::move(so));
  }

  if (rep.sizes_ok == 0) {
    BF_FAIL("sweep of '" << workload.name << "' collected no data ("
                         << rep.sizes.front().errors.back() << ")");
  }
  const double success = static_cast<double>(rep.sizes_ok) /
                         static_cast<double>(sizes.size());
  BF_CHECK_MSG(success + 1e-12 >= options.min_success_fraction,
               "sweep of '" << workload.name << "' degraded below policy: "
                            << rep.summary() << " (min_success_fraction="
                            << options.min_success_fraction << ")");
  return ds;
}

std::vector<double> log2_sizes(double lo, double hi, int count,
                               std::int64_t multiple) {
  BF_CHECK_MSG(lo >= 1 && hi > lo && count >= 2, "invalid log2 size range");
  BF_CHECK_MSG(multiple >= 1, "invalid multiple");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  const double llo = std::log2(lo);
  const double lhi = std::log2(hi);
  for (int i = 0; i < count; ++i) {
    const double l = llo + (lhi - llo) * i / (count - 1);
    std::int64_t v = static_cast<std::int64_t>(std::llround(std::exp2(l)));
    v = std::max<std::int64_t>(multiple,
                               (v / multiple) * multiple);  // round down
    out.push_back(static_cast<double>(v));
  }
  // Deduplicate after rounding: coarse `multiple` values over small
  // ranges collide, and a repeated size would double-weight its row in
  // every model trained from the sweep.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<double> linear_sizes(double lo, double hi, double step) {
  BF_CHECK_MSG(step > 0 && hi >= lo, "invalid linear size range");
  std::vector<double> out;
  for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
  return out;
}

}  // namespace bf::profiling
