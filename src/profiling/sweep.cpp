#include "profiling/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gpusim/arch.hpp"

namespace bf::profiling {

ml::Dataset sweep(const Workload& workload, const gpusim::Device& device,
                  const std::vector<double>& sizes,
                  const SweepOptions& options) {
  BF_CHECK_MSG(!sizes.empty(), "empty size sweep");
  Profiler profiler(options.profiler);

  ml::Dataset ds;
  bool schema_ready = false;
  std::vector<std::string> counter_names;

  for (const double size : sizes) {
    const ProfileResult r = profiler.profile(workload, device, size);
    if (!schema_ready) {
      counter_names.clear();
      for (const auto& [name, _] : r.counters) counter_names.push_back(name);
      ds.add_column(kSizeColumn, {});
      for (const auto& name : counter_names) ds.add_column(name, {});
      if (options.machine_characteristics) {
        for (const auto& [name, _] :
             gpusim::machine_characteristics(device.arch())) {
          ds.add_column(name, {});
        }
      }
      ds.add_column(kTimeColumn, {});
      schema_ready = true;
    }
    std::vector<double> row;
    row.reserve(ds.num_cols());
    row.push_back(size);
    for (const auto& name : counter_names) {
      const auto it = r.counters.find(name);
      BF_CHECK_MSG(it != r.counters.end(),
                   "counter " << name << " missing from run");
      row.push_back(it->second);
    }
    if (options.machine_characteristics) {
      for (const auto& [_, value] :
           gpusim::machine_characteristics(device.arch())) {
        row.push_back(value);
      }
    }
    row.push_back(r.time_ms);
    ds.add_row(row);
  }
  return ds;
}

std::vector<double> log2_sizes(double lo, double hi, int count,
                               std::int64_t multiple) {
  BF_CHECK_MSG(lo >= 1 && hi > lo && count >= 2, "invalid log2 size range");
  BF_CHECK_MSG(multiple >= 1, "invalid multiple");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  const double llo = std::log2(lo);
  const double lhi = std::log2(hi);
  for (int i = 0; i < count; ++i) {
    const double l = llo + (lhi - llo) * i / (count - 1);
    std::int64_t v = static_cast<std::int64_t>(std::llround(std::exp2(l)));
    v = std::max<std::int64_t>(multiple,
                               (v / multiple) * multiple);  // round down
    out.push_back(static_cast<double>(v));
  }
  // Deduplicate after rounding (small ranges can collide).
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<double> linear_sizes(double lo, double hi, double step) {
  BF_CHECK_MSG(step > 0 && hi >= lo, "invalid linear size range");
  std::vector<double> out;
  for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
  return out;
}

}  // namespace bf::profiling
