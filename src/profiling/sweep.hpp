// Sweep driver: profile a workload across problem sizes (and optionally
// architectures) into an ml::Dataset ready for the statistical pipeline.
//
// This produces exactly the table the paper's modelling consumes: one row
// per run, one column per counter, plus the problem characteristics
// ("size"), optional machine characteristics (Table 2 columns, for
// hardware scaling) and the "time_ms" response.
#pragma once

#include <string>
#include <vector>

#include "gpusim/engine.hpp"
#include "ml/dataset.hpp"
#include "profiling/profiler.hpp"

namespace bf::profiling {

/// Column name of the response variable in sweep datasets.
inline constexpr const char* kTimeColumn = "time_ms";
/// Column name of the problem-characteristic column.
inline constexpr const char* kSizeColumn = "size";

struct SweepOptions {
  /// Inject the Table 2 machine characteristics (wsched, freq, smp, rco,
  /// mbw, regs, l2c) as extra columns — required for hardware scaling.
  bool machine_characteristics = false;
  ProfilerOptions profiler;
};

/// Run `workload` once per entry of `sizes` on `device`. All runs share
/// the same counter schema (determined by the architecture generation).
ml::Dataset sweep(const Workload& workload, const gpusim::Device& device,
                  const std::vector<double>& sizes,
                  const SweepOptions& options = {});

/// Log-spaced (base-2) problem sizes from `lo` to `hi` inclusive,
/// `count` of them, rounded to multiples of `multiple`.
std::vector<double> log2_sizes(double lo, double hi, int count,
                               std::int64_t multiple = 1);

/// Linear sizes lo, lo+step, ..., hi (the paper's NW sweep: 64..8192
/// step 64).
std::vector<double> linear_sizes(double lo, double hi, double step);

}  // namespace bf::profiling
