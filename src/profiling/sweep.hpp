// Sweep driver: profile a workload across problem sizes (and optionally
// architectures) into an ml::Dataset ready for the statistical pipeline.
//
// This produces exactly the table the paper's modelling consumes: one row
// per run, one column per counter, plus the problem characteristics
// ("size"), optional machine characteristics (Table 2 columns, for
// hardware scaling) and the "time_ms" response.
//
// On real hardware the collection stage is the flaky one, so the driver
// carries a first-class failure policy: per-size retry with bounded
// exponential backoff, k-replicate collection with median aggregation and
// MAD outlier rejection, NaN cells for dropped counters, and a
// min_success_fraction partial-sweep gate. Every decision is recorded in
// a SweepReport. The defaults reproduce the classic strict single-run
// sweep bit for bit.
#pragma once

#include <string>
#include <vector>

#include "gpusim/engine.hpp"
#include "ml/dataset.hpp"
#include "profiling/profiler.hpp"

namespace bf::profiling {

/// Column name of the response variable in sweep datasets.
inline constexpr const char* kTimeColumn = "time_ms";
/// Column name of the problem-characteristic column.
inline constexpr const char* kSizeColumn = "size";
/// Column name of the estimated board-power label (the alternative
/// response variable bf::power trains on).
inline constexpr const char* kPowerColumn = "power_avg_w";

struct SweepOptions {
  /// Inject the Table 2 machine characteristics (wsched, freq, smp, rco,
  /// mbw, regs, l2c) as extra columns — required for hardware scaling.
  bool machine_characteristics = false;
  ProfilerOptions profiler;

  // ---- failure policy (defaults = classic strict sweep) ----
  /// Profiled runs aggregated (median) into each row. 1 = use the single
  /// run verbatim; >= 3 enables outlier rejection.
  int replicates = 1;
  /// Attempts per replicate before it counts as failed (1 = no retry).
  int max_attempts = 3;
  /// First retry delay; doubles per attempt, capped at backoff_max_ms.
  /// 0 disables sleeping (the default, so tests stay fast).
  double backoff_initial_ms = 0.0;
  double backoff_max_ms = 50.0;
  /// Required fraction of sizes yielding at least one replicate; below
  /// it the sweep throws bf::Error instead of returning a partial
  /// dataset. 1.0 = any fully-failed size aborts (classic behaviour).
  double min_success_fraction = 1.0;
  /// Replicates whose time deviates from the median by more than this
  /// many (scaled) MADs are rejected before aggregation; <= 0 disables.
  double outlier_mad_threshold = 3.5;
};

/// Collection diary for one problem size.
struct SizeOutcome {
  double size = 0.0;
  int attempts = 0;            ///< total profiler invocations
  int replicates_ok = 0;
  int replicates_failed = 0;   ///< exhausted max_attempts
  int outliers_rejected = 0;   ///< replicates discarded by the MAD gate
  std::vector<std::string> errors;            ///< one per failed attempt
  std::vector<std::string> dropped_counters;  ///< NaN cells in the row
  bool ok = false;             ///< a row was produced for this size
};

/// What the sweep survived: per-size attempts/failures/drops plus
/// aggregate counts, carried into core::AnalysisOutcome.
struct SweepReport {
  std::vector<SizeOutcome> sizes;
  std::size_t sizes_ok = 0;
  std::size_t sizes_failed = 0;
  std::size_t total_attempts = 0;
  std::size_t retried_attempts = 0;  ///< attempts beyond the first
  std::size_t missing_cells = 0;     ///< NaN cells in the dataset

  bool degraded() const {
    return sizes_failed > 0 || missing_cells > 0 || retried_attempts > 0;
  }
  /// One-line summary, e.g. "38/40 sizes ok, 3 retries, 5 missing cells".
  std::string summary() const;
  /// Full rendering: summary plus one line per degraded size.
  std::string to_text() const;
};

/// Run `workload` across `sizes` on `device` under the failure policy in
/// `options`. All runs share the same counter schema (determined by the
/// architecture generation). When `report` is non-null it receives the
/// collection diary. Throws bf::Error when fewer than
/// `min_success_fraction` of the sizes produced data.
ml::Dataset sweep(const Workload& workload, const gpusim::Device& device,
                  const std::vector<double>& sizes,
                  const SweepOptions& options = {},
                  SweepReport* report = nullptr);

/// Log-spaced (base-2) problem sizes from `lo` to `hi` inclusive,
/// `count` of them, rounded to multiples of `multiple`. Duplicates
/// created by the rounding are removed, so the result may hold fewer
/// than `count` sizes (repeated sizes would double-weight rows in
/// training).
std::vector<double> log2_sizes(double lo, double hi, int count,
                               std::int64_t multiple = 1);

/// Linear sizes lo, lo+step, ..., hi (the paper's NW sweep: 64..8192
/// step 64).
std::vector<double> linear_sizes(double lo, double hi, double step);

}  // namespace bf::profiling
