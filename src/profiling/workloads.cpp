#include "profiling/workloads.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "kernels/matmul.hpp"
#include "kernels/misc.hpp"
#include "kernels/nw.hpp"
#include "kernels/reduce.hpp"
#include "kernels/spmv.hpp"

namespace bf::profiling {
namespace {

std::int64_t as_count(double problem_size) {
  BF_CHECK_MSG(problem_size >= 1.0 && std::isfinite(problem_size),
               "invalid problem size " << problem_size);
  return static_cast<std::int64_t>(std::llround(problem_size));
}

gpusim::AggregateResult single_launch(const gpusim::Device& device,
                                      const gpusim::TraceKernel& kernel) {
  gpusim::AggregateResult agg;
  agg.add(device.run(kernel));
  return agg;
}

}  // namespace

Workload reduce_workload(int variant, int block_size) {
  Workload w;
  w.name = "reduce" + std::to_string(variant);
  w.run = [variant, block_size](const gpusim::Device& device,
                                double problem_size) {
    return kernels::simulate_reduction(device, variant,
                                       as_count(problem_size), block_size);
  };
  return w;
}

Workload matmul_workload(int tile) {
  Workload w;
  w.name = "matrixMul";
  w.run = [tile](const gpusim::Device& device, double problem_size) {
    return kernels::simulate_matmul(
        device, static_cast<int>(as_count(problem_size)), tile);
  };
  return w;
}

Workload nw_workload() {
  Workload w;
  w.name = "needle";
  w.run = [](const gpusim::Device& device, double problem_size) {
    return kernels::simulate_nw(device,
                                static_cast<int>(as_count(problem_size)));
  };
  return w;
}

Workload vecadd_workload(int block_size) {
  Workload w;
  w.name = "vecAdd";
  w.run = [block_size](const gpusim::Device& device, double problem_size) {
    const kernels::VecAddKernel kernel(as_count(problem_size), block_size);
    return single_launch(device, kernel);
  };
  return w;
}

Workload transpose_workload(const std::string& variant) {
  kernels::TransposeVariant v;
  if (variant == "naive") {
    v = kernels::TransposeVariant::kNaive;
  } else if (variant == "tiled") {
    v = kernels::TransposeVariant::kTiled;
  } else if (variant == "padded") {
    v = kernels::TransposeVariant::kTiledPadded;
  } else {
    BF_FAIL("unknown transpose variant: " << variant);
  }
  Workload w;
  w.name = "transpose_" + variant;
  w.run = [v](const gpusim::Device& device, double problem_size) {
    const kernels::TransposeKernel kernel(
        static_cast<int>(as_count(problem_size)), v);
    return single_launch(device, kernel);
  };
  return w;
}

Workload stencil_workload(int block_size) {
  Workload w;
  w.name = "stencil5";
  w.run = [block_size](const gpusim::Device& device, double problem_size) {
    const kernels::Stencil5Kernel kernel(
        static_cast<int>(as_count(problem_size)), block_size);
    return single_launch(device, kernel);
  };
  return w;
}

Workload spmv_workload(int avg_nnz, double row_skew, double locality) {
  Workload w;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "spmv_n%d_s%02d_l%02d", avg_nnz,
                static_cast<int>(row_skew * 100),
                static_cast<int>(locality * 100));
  w.name = buf;
  w.run = [avg_nnz, row_skew, locality](const gpusim::Device& device,
                                        double problem_size) {
    kernels::SpmvPattern pattern;
    pattern.avg_nnz_per_row = avg_nnz;
    pattern.row_skew = row_skew;
    pattern.locality = locality;
    const kernels::SpmvCsrKernel kernel(
        static_cast<int>(as_count(problem_size)), pattern);
    return single_launch(device, kernel);
  };
  return w;
}

Workload histogram_workload(double skew, int bins) {
  Workload w;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "histogram_s%02d", 
                static_cast<int>(skew * 100));
  w.name = buf;
  w.run = [skew, bins](const gpusim::Device& device, double problem_size) {
    const kernels::HistogramKernel kernel(as_count(problem_size), bins,
                                          skew);
    return single_launch(device, kernel);
  };
  return w;
}

std::vector<Workload> all_workloads() {
  std::vector<Workload> out;
  for (int v = 0; v <= 6; ++v) out.push_back(reduce_workload(v));
  out.push_back(matmul_workload());
  out.push_back(nw_workload());
  out.push_back(vecadd_workload());
  out.push_back(transpose_workload("naive"));
  out.push_back(transpose_workload("tiled"));
  out.push_back(transpose_workload("padded"));
  out.push_back(stencil_workload());
  out.push_back(histogram_workload(0.0));
  out.push_back(histogram_workload(0.9));
  out.push_back(spmv_workload());
  return out;
}

Workload workload_by_name(const std::string& name) {
  std::vector<std::string> known;
  for (auto& w : all_workloads()) {
    if (w.name == name) return w;
    known.push_back(w.name);
  }
  BF_FAIL("unknown workload: '" << name << "' (valid: " << join(known, ", ")
                                << ")");
}

}  // namespace bf::profiling
