#include "profiling/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/check.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "gpusim/power.hpp"
#include "profiling/counter_registry.hpp"

namespace bf::profiling {

using gpusim::Event;

Profiler::Profiler(ProfilerOptions options)
    : options_(options), rng_(options.seed) {}

std::map<std::string, double> Profiler::derive_metrics(
    const gpusim::ArchSpec& arch, const gpusim::CounterSet& c,
    double time_ms) {
  BF_CHECK_MSG(time_ms > 0.0, "non-positive elapsed time");
  const double time_s = time_ms * 1e-3;
  const double gbps = 1e-9 / time_s;  // bytes -> GB/s factor

  std::map<std::string, double> m;
  // ---- raw events ----
  m["inst_executed"] = c.get(Event::kInstExecuted);
  m["inst_issued"] = c.get(Event::kInstIssued);
  m["branch"] = c.get(Event::kBranch);
  m["divergent_branch"] = c.get(Event::kDivergentBranch);
  m["gld_request"] = c.get(Event::kGldRequest);
  m["gst_request"] = c.get(Event::kGstRequest);
  m["l1_global_load_hit"] = c.get(Event::kL1GlobalLoadHit);
  m["l1_global_load_miss"] = c.get(Event::kL1GlobalLoadMiss);
  m["global_store_transaction"] = c.get(Event::kGlobalStoreTransaction);
  m["l2_read_transactions"] = c.get(Event::kL2ReadTransactions);
  m["l2_write_transactions"] = c.get(Event::kL2WriteTransactions);
  m["dram_read_transactions"] = c.get(Event::kDramReadTransactions);
  m["dram_write_transactions"] = c.get(Event::kDramWriteTransactions);
  m["shared_load"] = c.get(Event::kSharedLoad);
  m["shared_store"] = c.get(Event::kSharedStore);
  m["l1_shared_bank_conflict"] = c.get(Event::kSharedBankConflict);
  m["shared_load_replay"] = c.get(Event::kSharedLoadReplay);
  m["shared_store_replay"] = c.get(Event::kSharedStoreReplay);

  // ---- derived metrics ----
  const double executed = std::max(1.0, c.get(Event::kInstExecuted));
  const double active_cycles = c.get(Event::kActiveCycles);
  m["ipc"] = active_cycles > 0 ? c.get(Event::kInstExecuted) / active_cycles
                               : 0.0;
  const double slots = c.get(Event::kIssueSlotsTotal);
  m["issue_slot_utilization"] =
      slots > 0 ? c.get(Event::kInstIssued) / slots : 0.0;
  m["achieved_occupancy"] =
      active_cycles > 0
          ? c.get(Event::kActiveWarpCycles) /
                (active_cycles * arch.max_warps_per_sm)
          : 0.0;
  m["warp_execution_efficiency"] =
      c.get(Event::kThreadInstExecuted) / (executed * arch.warp_size);
  m["inst_replay_overhead"] =
      (c.get(Event::kInstIssued) - c.get(Event::kInstExecuted)) / executed;
  m["shared_replay_overhead"] =
      c.get(Event::kSharedBankConflict) / executed;

  const double gld_seg_bytes = arch.l1_caches_global_loads
                                   ? arch.l1_transaction_bytes
                                   : arch.l2_transaction_bytes;
  const double gld_actual_bytes =
      c.get(Event::kGlobalLoadTransaction) * gld_seg_bytes;
  const double gst_actual_bytes =
      c.get(Event::kGlobalStoreTransaction) * arch.l2_transaction_bytes;
  m["gld_requested_throughput"] =
      c.get(Event::kGlobalLoadBytesRequested) * gbps;
  m["gst_requested_throughput"] =
      c.get(Event::kGlobalStoreBytesRequested) * gbps;
  m["gld_throughput"] = gld_actual_bytes * gbps;
  m["gst_throughput"] = gst_actual_bytes * gbps;
  m["gld_efficiency"] =
      gld_actual_bytes > 0
          ? c.get(Event::kGlobalLoadBytesRequested) / gld_actual_bytes
          : 0.0;
  m["gst_efficiency"] =
      gst_actual_bytes > 0
          ? c.get(Event::kGlobalStoreBytesRequested) / gst_actual_bytes
          : 0.0;
  m["l2_read_throughput"] =
      c.get(Event::kL2ReadTransactions) * arch.l2_transaction_bytes * gbps;
  m["l2_write_throughput"] =
      c.get(Event::kL2WriteTransactions) * arch.l2_transaction_bytes * gbps;
  m["dram_read_throughput"] = c.get(Event::kDramReadTransactions) *
                              arch.l2_transaction_bytes * gbps;
  m["dram_write_throughput"] = c.get(Event::kDramWriteTransactions) *
                               arch.l2_transaction_bytes * gbps;

  const double peak_flops =
      arch.flops_per_sm_cycle() * arch.sm_count * arch.clock_ghz * 1e9;
  m["flop_sp_efficiency"] =
      peak_flops > 0 ? c.get(Event::kFlopCount) / time_s / peak_flops : 0.0;
  m["power_avg_w"] = gpusim::estimate_power(arch, c, time_ms).total_w;

  // Keep only counters that exist on this architecture generation.
  std::map<std::string, double> filtered;
  for (const auto& [name, value] : m) {
    if (counter_available(name, arch.generation)) {
      filtered.emplace(name, value);
    }
  }
  return filtered;
}

ProfileResult Profiler::profile(const Workload& workload,
                                const gpusim::Device& device,
                                double problem_size) {
  BF_CHECK_MSG(static_cast<bool>(workload.run),
               "workload '" << workload.name << "' has no run function");
  // Injected driver crash: the run aborts before the workload executes
  // (see bf::fault; unarmed points cost one atomic load).
  if (fault::should_fire(fault::points::kProfilerRunCrash)) {
    throw Error("injected fault: profiler run of '" + workload.name +
                "' crashed");
  }
  const gpusim::AggregateResult agg =
      workload.run(device, problem_size);
  // Injected timeout: the run completed but took too long; its data is
  // discarded exactly as a watchdog kill would.
  if (fault::should_fire(fault::points::kProfilerRunTimeout)) {
    throw Error("injected fault: profiler run of '" + workload.name +
                "' timed out");
  }
  BF_CHECK_MSG(agg.time_ms > 0.0,
               "workload '" << workload.name << "' reported zero time");

  ProfileResult out;
  out.workload = workload.name;
  out.arch = device.arch().name;
  out.problem["size"] = problem_size;
  out.counters = derive_metrics(device.arch(), agg.counters, agg.time_ms);

  // Measurement noise: multiplicative Gaussian, clamped so a wild draw
  // can never flip a value's sign.
  const auto jitter = [&](double v, double sd) {
    if (sd <= 0.0 || v == 0.0) return v;
    const double f = std::clamp(rng_.normal(1.0, sd), 0.5, 1.5);
    return v * f;
  };
  for (auto& [name, value] : out.counters) {
    value = jitter(value, options_.counter_noise_sd);
  }
  // Ratio metrics have hard physical caps a real profiler never exceeds;
  // keep the jitter from crossing them.
  for (const char* capped :
       {"achieved_occupancy", "warp_execution_efficiency",
        "issue_slot_utilization", "gld_efficiency", "gst_efficiency"}) {
    const auto it = out.counters.find(capped);
    if (it != out.counters.end()) it->second = std::min(it->second, 1.0);
  }
  out.time_ms = jitter(agg.time_ms, options_.time_noise_sd);

  // Injected counter dropout: nvprof-style multiplexing loses individual
  // events; the counter stays in the schema but its value is NaN.
  if (fault::active()) {
    for (auto& [name, value] : out.counters) {
      (void)name;
      if (fault::should_fire(fault::points::kProfilerCounterDropout)) {
        value = std::numeric_limits<double>::quiet_NaN();
      }
    }
    // Injected noise spike: background interference inflates this
    // replicate's measured time (median aggregation should reject it).
    if (fault::should_fire(fault::points::kProfilerNoiseSpike)) {
      out.time_ms *= 4.0;
    }
    // Injected power-label spike: a power-rail sensor glitch inflates
    // this replicate's derived power label 5x; median aggregation
    // should reject it and the TDP check rule catches a leak.
    if (fault::should_fire(fault::points::kPowerLabelSpike)) {
      const auto it = out.counters.find("power_avg_w");
      if (it != out.counters.end() && std::isfinite(it->second)) {
        it->second *= 5.0;
      }
    }
  }

  if (options_.validate) {
    auto metrics = out.counters;
    metrics["time_ms"] = out.time_ms;
    // Validation-only energy mirror: recompute the breakdown at the
    // reported time so energy = power x time is checked on one
    // consistent basis (noise cancels); a unit slip inside
    // estimate_power still shifts energy_j by 1000x and fires the rule.
    if (metrics.count("power_avg_w") != 0) {
      const gpusim::PowerBreakdown pb =
          gpusim::estimate_power(device.arch(), agg.counters, out.time_ms);
      metrics["power_total_w"] = pb.total_w;
      metrics["energy_j"] = pb.energy_j;
    }
    check::throw_if_errors(
        check::validate_metrics(metrics, device.arch()),
        "profiled run of '" + workload.name + "' on " + out.arch);
  }
  return out;
}

}  // namespace bf::profiling
