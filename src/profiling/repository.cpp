#include "profiling/repository.hpp"

#include <algorithm>
#include <filesystem>

#include "common/error.hpp"
#include "gpusim/arch.hpp"

namespace fs = std::filesystem;

namespace bf::profiling {
namespace {

// Keep keys filesystem-safe.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  BF_CHECK_MSG(!out.empty(), "empty repository key");
  return out;
}

}  // namespace

RunRepository::RunRepository(std::string root, RepositoryOptions options)
    : root_(std::move(root)), options_(options) {
  BF_CHECK_MSG(!root_.empty(), "empty repository root");
  fs::create_directories(root_);
}

std::string RunRepository::path_for(const std::string& workload,
                                    const std::string& arch) const {
  return root_ + "/" + sanitize(workload) + "__" + sanitize(arch) + ".csv";
}

void RunRepository::save(const std::string& workload, const std::string& arch,
                         const ml::Dataset& ds) const {
  ds.to_csv().save(path_for(workload, arch));
}

std::optional<ml::Dataset> RunRepository::load(const std::string& workload,
                                               const std::string& arch) const {
  const std::string path = path_for(workload, arch);
  if (!fs::exists(path)) return std::nullopt;
  ml::Dataset ds = ml::Dataset::from_csv(CsvTable::load(path));
  if (options_.validate_on_load) {
    // Keys that do not name a registered architecture (foreign data sets)
    // cannot be checked against machine constants; load them as-is.
    const gpusim::ArchSpec* spec = nullptr;
    try {
      spec = &gpusim::arch_by_name(arch);
    } catch (const Error&) {
    }
    if (spec != nullptr) {
      check::throw_if_errors(
          check::validate_dataset(ds, *spec, options_.check_options),
          "repository sweep " + path);
    }
  }
  return ds;
}

bool RunRepository::contains(const std::string& workload,
                             const std::string& arch) const {
  return fs::exists(path_for(workload, arch));
}

std::vector<std::pair<std::string, std::string>> RunRepository::keys() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const std::string stem = entry.path().stem().string();
    const std::size_t sep = stem.find("__");
    if (sep == std::string::npos) continue;
    out.emplace_back(stem.substr(0, sep), stem.substr(sep + 2));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bf::profiling
