#include "profiling/repository.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"
#include "gpusim/arch.hpp"

namespace fs = std::filesystem;

namespace bf::profiling {
namespace {

// Keep keys filesystem-safe.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  BF_CHECK_MSG(!out.empty(), "empty repository key");
  return out;
}

// Content checksum footer, last line of every entry. The hash covers
// every byte before the footer, so truncation, bit rot and torn writes
// are all detected on load.
constexpr const char* kChecksumPrefix = "#checksum,fnv1a64,";

std::string with_footer(const std::string& payload) {
  return payload + kChecksumPrefix + to_hex64(fnv1a64(payload)) + "\n";
}

/// Split a stored entry into payload + verified footer. Returns the
/// payload, or an error reason via `why`.
std::optional<std::string> verify_footer(const std::string& content,
                                         std::string& why) {
  if (content.empty()) {
    why = "file is empty";
    return std::nullopt;
  }
  const std::size_t pos = content.rfind(kChecksumPrefix);
  if (pos == std::string::npos ||
      (pos != 0 && content[pos - 1] != '\n')) {
    why = "missing checksum footer";
    return std::nullopt;
  }
  const std::string payload = content.substr(0, pos);
  const std::string footer =
      std::string(trim(std::string_view(content).substr(pos)));
  const std::string expected =
      kChecksumPrefix + to_hex64(fnv1a64(payload));
  if (footer != expected) {
    why = "checksum mismatch (stored " + footer.substr(footer.rfind(',') + 1) +
          ", computed " + expected.substr(expected.rfind(',') + 1) + ")";
    return std::nullopt;
  }
  return payload;
}

/// Post-save disk-rot fault points (see bf::fault): a torn write leaves
/// a truncated entry; bit rot flips one byte mid-file.
void inject_storage_faults(const std::string& path) {
  if (!fault::active()) return;
  if (fault::should_fire(fault::points::kRepoTornWrite)) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec && size > 1) fs::resize_file(path, size / 2, ec);
  }
  if (fault::should_fire(fault::points::kRepoBitrot)) {
    if (auto content = read_file(path); content && !content->empty()) {
      (*content)[content->size() / 2] ^= 0x20;
      atomic_write_file(path, *content);
    }
  }
}

}  // namespace

RunRepository::RunRepository(std::string root, RepositoryOptions options)
    : root_(std::move(root)), options_(options) {
  BF_CHECK_MSG(!root_.empty(), "empty repository root");
  fs::create_directories(root_);
}

std::string RunRepository::path_for(const std::string& workload,
                                    const std::string& arch) const {
  return root_ + "/" + sanitize(workload) + "__" + sanitize(arch) + ".csv";
}

void RunRepository::save(const std::string& workload, const std::string& arch,
                         const ml::Dataset& ds) const {
  const std::string path = path_for(workload, arch);
  std::ostringstream os;
  ds.to_csv().write(os);
  atomic_write_file(path, with_footer(os.str()));
  inject_storage_faults(path);
}

std::optional<ml::Dataset> RunRepository::handle_corrupt(
    const std::string& path, const std::string& reason) const {
  if (!options_.quarantine_on_corrupt) {
    BF_FAIL("corrupt repository entry " << path << ": " << reason);
  }
  const std::string quarantined = path + ".quarantined";
  std::error_code ec;
  fs::rename(path, quarantined, ec);
  if (ec) {
    // Cannot move it aside; remove so the entry is recollected anyway.
    fs::remove(path, ec);
  }
  BF_WARN("repository entry " << path << " is corrupt (" << reason
                              << "); quarantined to " << quarantined
                              << " — the sweep will be recollected");
  return std::nullopt;
}

std::optional<ml::Dataset> RunRepository::load(const std::string& workload,
                                               const std::string& arch) const {
  const std::string path = path_for(workload, arch);
  if (!fs::exists(path)) return std::nullopt;

  const std::optional<std::string> content = read_file(path);
  if (!content) return handle_corrupt(path, "file cannot be read");
  std::string why;
  const std::optional<std::string> payload = verify_footer(*content, why);
  if (!payload) return handle_corrupt(path, why);

  ml::Dataset ds;
  try {
    std::istringstream is(*payload);
    ds = ml::Dataset::from_csv(CsvTable::read(is));
  } catch (const Error& e) {
    return handle_corrupt(path, e.what());
  }

  if (options_.validate_on_load) {
    // Keys that do not name a registered architecture (foreign data sets)
    // cannot be checked against machine constants; load them as-is.
    const gpusim::ArchSpec* spec = nullptr;
    try {
      spec = &gpusim::arch_by_name(arch);
    } catch (const Error&) {
    }
    if (spec != nullptr) {
      const auto violations =
          check::validate_dataset(ds, *spec, options_.check_options);
      if (!violations.empty() && options_.quarantine_on_invalid) {
        return handle_corrupt(
            path, "counter-invariant violations:\n" +
                      check::to_string(violations));
      }
      check::throw_if_errors(violations, "repository sweep " + path);
    }
  }
  return ds;
}

bool RunRepository::contains(const std::string& workload,
                             const std::string& arch) const {
  return fs::exists(path_for(workload, arch));
}

std::vector<std::pair<std::string, std::string>> RunRepository::keys() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    // Quarantined/temp leftovers are not entries.
    if (entry.path().extension() != ".csv") continue;
    const std::string stem = entry.path().stem().string();
    const std::size_t sep = stem.find("__");
    if (sep == std::string::npos) continue;
    out.emplace_back(stem.substr(0, sep), stem.substr(sep + 2));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bf::profiling
