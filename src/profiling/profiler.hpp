// The nvprof analogue: run an application on a (simulated) device, derive
// the nvprof-style metric set from the raw events, and return a named
// counter vector plus the measured execution time.
//
// This is the paper's data-collection stage (§4.2): "We perform data
// collection by running the application multiple times on the architecture
// of interest, with different problem characteristics … Performance
// counter data are collected using nvprof."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/engine.hpp"

namespace bf::profiling {

/// An application under study: named, and runnable for a given problem
/// size on a given device. Multi-launch applications aggregate internally.
struct Workload {
  std::string name;
  std::function<gpusim::AggregateResult(const gpusim::Device&,
                                        double problem_size)>
      run;
};

/// One profiled run: the problem characteristics, every counter/metric
/// available on the architecture, and the measured time.
struct ProfileResult {
  std::string workload;
  std::string arch;
  std::map<std::string, double> problem;   ///< e.g. {"size": 1024}
  std::map<std::string, double> counters;  ///< nvprof counter -> value
  double time_ms = 0.0;
};

struct ProfilerOptions {
  /// Multiplicative Gaussian noise applied to the measured time
  /// (run-to-run variation of a real GPU; nvprof counters themselves are
  /// nearly exact, so they receive `counter_noise_sd` only).
  double time_noise_sd = 0.02;
  double counter_noise_sd = 0.003;
  std::uint64_t seed = 1234;
  /// Validate every profiled metric set against the bf::check counter
  /// invariants (measured tolerance); throws bf::Error on violation.
  bool validate = false;
};

class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  /// Profile one run of `workload` at `problem_size` on `device`.
  ProfileResult profile(const Workload& workload,
                        const gpusim::Device& device, double problem_size);

  /// Derive the architecture's full nvprof metric set from raw events.
  /// Exposed for tests; `time_ms` must be the (noise-free) elapsed time.
  static std::map<std::string, double> derive_metrics(
      const gpusim::ArchSpec& arch, const gpusim::CounterSet& counters,
      double time_ms);

 private:
  ProfilerOptions options_;
  Rng rng_;
};

}  // namespace bf::profiling
