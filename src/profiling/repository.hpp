// On-disk run repository: the paper stores profiler output "in either a
// database or a structured repository (we used the latter)". Sweeps are
// stored as CSV files under a root directory, keyed by workload and
// architecture, so expensive collections can be reused across analyses.
//
// Stored entries are written atomically (temp file + rename, see
// bf::atomic_write_file) and carry a FNV-1a checksum footer. A corrupt
// entry — truncated, bit-rotted, garbage, or missing its footer — is
// quarantined on load (renamed to "<entry>.quarantined") and reported as
// absent, so get_or_collect() transparently recollects instead of
// aborting the analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "ml/dataset.hpp"

namespace bf::profiling {

struct RepositoryOptions {
  /// Validate every loaded sweep against the bf::check counter
  /// invariants when its arch key resolves to a known architecture;
  /// throws bf::Error listing the violations. A repository entry that
  /// breaks a conservation law would silently poison every model trained
  /// from it, so this is on by default.
  bool validate_on_load = true;
  check::Options check_options = check::measured_tolerance();
  /// Quarantine corrupt files (bad checksum, truncated, unparseable)
  /// instead of throwing: the entry is renamed to "<entry>.quarantined"
  /// and load() returns nullopt so the sweep is recollected. When false,
  /// corruption throws bf::Error (strict mode).
  bool quarantine_on_corrupt = true;
  /// Extend quarantine semantics to counter-invariant violations too
  /// (validate_on_load failures). Off by default: invariant-breaking
  /// data is semantically wrong rather than damaged, and deserves a loud
  /// failure unless the caller opted into degraded operation.
  bool quarantine_on_invalid = false;
};

class RunRepository {
 public:
  /// Creates `root` if it does not exist.
  explicit RunRepository(std::string root, RepositoryOptions options = {});

  /// Store a sweep dataset under (workload, arch); overwrites. The write
  /// is atomic and checksummed.
  void save(const std::string& workload, const std::string& arch,
            const ml::Dataset& ds) const;

  /// Load a stored sweep; std::nullopt when absent or quarantined.
  std::optional<ml::Dataset> load(const std::string& workload,
                                  const std::string& arch) const;

  bool contains(const std::string& workload, const std::string& arch) const;

  /// All (workload, arch) keys present, sorted. Quarantined entries are
  /// excluded.
  std::vector<std::pair<std::string, std::string>> keys() const;

  /// Load if present, else compute via `producer`, save, and return. A
  /// throwing producer leaves no trace in the repository (saves are
  /// atomic), and a corrupt cached entry is quarantined and recollected.
  template <typename Producer>
  ml::Dataset get_or_collect(const std::string& workload,
                             const std::string& arch,
                             Producer&& producer) const {
    if (auto existing = load(workload, arch)) return *std::move(existing);
    ml::Dataset ds = producer();
    save(workload, arch, ds);
    return ds;
  }

  const std::string& root() const { return root_; }

 private:
  std::string path_for(const std::string& workload,
                       const std::string& arch) const;
  /// Move a damaged entry aside and report; returns nullopt (the load
  /// result) or rethrows in strict mode.
  std::optional<ml::Dataset> handle_corrupt(const std::string& path,
                                            const std::string& reason) const;

  std::string root_;
  RepositoryOptions options_;
};

}  // namespace bf::profiling
