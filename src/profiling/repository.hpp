// On-disk run repository: the paper stores profiler output "in either a
// database or a structured repository (we used the latter)". Sweeps are
// stored as CSV files under a root directory, keyed by workload and
// architecture, so expensive collections can be reused across analyses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace bf::profiling {

class RunRepository {
 public:
  /// Creates `root` if it does not exist.
  explicit RunRepository(std::string root);

  /// Store a sweep dataset under (workload, arch); overwrites.
  void save(const std::string& workload, const std::string& arch,
            const ml::Dataset& ds) const;

  /// Load a stored sweep; std::nullopt when absent.
  std::optional<ml::Dataset> load(const std::string& workload,
                                  const std::string& arch) const;

  bool contains(const std::string& workload, const std::string& arch) const;

  /// All (workload, arch) keys present, sorted.
  std::vector<std::pair<std::string, std::string>> keys() const;

  /// Load if present, else compute via `producer`, save, and return.
  template <typename Producer>
  ml::Dataset get_or_collect(const std::string& workload,
                             const std::string& arch,
                             Producer&& producer) const {
    if (auto existing = load(workload, arch)) return *std::move(existing);
    ml::Dataset ds = producer();
    save(workload, arch, ds);
    return ds;
  }

  const std::string& root() const { return root_; }

 private:
  std::string path_for(const std::string& workload,
                       const std::string& arch) const;

  std::string root_;
};

}  // namespace bf::profiling
