// On-disk run repository: the paper stores profiler output "in either a
// database or a structured repository (we used the latter)". Sweeps are
// stored as CSV files under a root directory, keyed by workload and
// architecture, so expensive collections can be reused across analyses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "ml/dataset.hpp"

namespace bf::profiling {

struct RepositoryOptions {
  /// Validate every loaded sweep against the bf::check counter
  /// invariants when its arch key resolves to a known architecture;
  /// throws bf::Error listing the violations. A repository entry that
  /// breaks a conservation law would silently poison every model trained
  /// from it, so this is on by default.
  bool validate_on_load = true;
  check::Options check_options = check::measured_tolerance();
};

class RunRepository {
 public:
  /// Creates `root` if it does not exist.
  explicit RunRepository(std::string root, RepositoryOptions options = {});

  /// Store a sweep dataset under (workload, arch); overwrites.
  void save(const std::string& workload, const std::string& arch,
            const ml::Dataset& ds) const;

  /// Load a stored sweep; std::nullopt when absent.
  std::optional<ml::Dataset> load(const std::string& workload,
                                  const std::string& arch) const;

  bool contains(const std::string& workload, const std::string& arch) const;

  /// All (workload, arch) keys present, sorted.
  std::vector<std::pair<std::string, std::string>> keys() const;

  /// Load if present, else compute via `producer`, save, and return.
  template <typename Producer>
  ml::Dataset get_or_collect(const std::string& workload,
                             const std::string& arch,
                             Producer&& producer) const {
    if (auto existing = load(workload, arch)) return *std::move(existing);
    ml::Dataset ds = producer();
    save(workload, arch, ds);
    return ds;
  }

  const std::string& root() const { return root_; }

 private:
  std::string path_for(const std::string& workload,
                       const std::string& arch) const;

  std::string root_;
  RepositoryOptions options_;
};

}  // namespace bf::profiling
