#include "profiling/counter_registry.hpp"

#include "common/error.hpp"

namespace bf::profiling {

const std::vector<CounterInfo>& counter_registry() {
  using K = CounterKind;
  static const std::vector<CounterInfo> registry = [] {
    std::vector<CounterInfo> r = {
      // ---- instruction events ----
      {"inst_executed", "warp instructions executed (no replays)",
       K::kEvent, true, true},
      {"inst_issued", "instructions issued including replays", K::kEvent,
       true, true},
      {"branch", "branch instructions executed, per warp", K::kEvent, true,
       true},
      {"divergent_branch", "branches where the warp diverged", K::kEvent,
       true, true},
      // ---- global memory events ----
      {"gld_request", "executed global load instructions, per warp",
       K::kEvent, true, true},
      {"gst_request", "executed global store instructions, per warp",
       K::kEvent, true, true},
      {"l1_global_load_hit",
       "cache lines that hit in L1 for global loads", K::kEvent, true,
       true},
      {"l1_global_load_miss",
       "cache lines that miss in L1 for global loads", K::kEvent, true,
       true},
      {"global_store_transaction",
       "global store transactions (32-128 byte segments)", K::kEvent, true,
       true},
      {"l2_read_transactions", "32 B read transactions at L2", K::kEvent,
       true, true},
      {"l2_write_transactions", "32 B write transactions at L2", K::kEvent,
       true, true},
      {"dram_read_transactions", "32 B reads reaching device memory",
       K::kEvent, true, true},
      {"dram_write_transactions", "32 B writes reaching device memory",
       K::kEvent, true, true},
      // ---- shared memory events ----
      {"shared_load", "executed shared load instructions, per warp",
       K::kEvent, true, true},
      {"shared_store", "executed shared store instructions, per warp",
       K::kEvent, true, true},
      {"l1_shared_bank_conflict",
       "replays due to shared memory bank conflicts (Fermi only)",
       K::kEvent, true, false},
      {"shared_load_replay",
       "shared load replays due to bank conflicts (Kepler only)", K::kEvent,
       false, true},
      {"shared_store_replay",
       "shared store replays due to bank conflicts (Kepler only)",
       K::kEvent, false, true},
      // ---- derived metrics ----
      {"ipc", "instructions executed per active cycle per SM", K::kMetric,
       true, true},
      {"issue_slot_utilization",
       "fraction of issue slots that issued an instruction", K::kMetric,
       true, true},
      {"achieved_occupancy",
       "average active warps per active cycle / max warps per SM",
       K::kMetric, true, true},
      {"warp_execution_efficiency",
       "average active threads per warp / warp size", K::kMetric, true,
       true},
      {"inst_replay_overhead",
       "average replays per executed instruction", K::kMetric, true, true},
      {"shared_replay_overhead",
       "average shared-conflict replays per executed instruction",
       K::kMetric, true, true},
      {"gld_requested_throughput",
       "requested global load throughput (GB/s)", K::kMetric, true, true},
      {"gst_requested_throughput",
       "requested global store throughput (GB/s)", K::kMetric, true, true},
      {"gld_throughput", "actual global load throughput (GB/s)", K::kMetric,
       true, true},
      {"gst_throughput", "actual global store throughput (GB/s)",
       K::kMetric, true, true},
      {"gld_efficiency",
       "requested / actual global load throughput", K::kMetric, true, true},
      {"gst_efficiency",
       "requested / actual global store throughput", K::kMetric, true,
       true},
      {"l2_read_throughput", "read throughput at L2 (GB/s)", K::kMetric,
       true, true},
      {"l2_write_throughput", "write throughput at L2 (GB/s)", K::kMetric,
       true, true},
      {"dram_read_throughput", "device memory read throughput (GB/s)",
       K::kMetric, true, true},
      {"dram_write_throughput", "device memory write throughput (GB/s)",
       K::kMetric, true, true},
      {"flop_sp_efficiency",
       "achieved / peak single-precision FLOP rate", K::kMetric, true,
       true},
      {"power_avg_w", "estimated average board power (W)", K::kMetric, true,
       true},
    };
    // Raw event counts (instructions, transactions, requests, replays)
    // can only grow with the problem size; derived ratios and
    // throughputs carry no such constraint.
    for (auto& c : r) {
      if (c.kind == K::kEvent) c.monotone = Monotonicity::kNonDecreasing;
    }
    return r;
  }();
  return registry;
}

const CounterInfo& counter_info(const std::string& name) {
  for (const auto& c : counter_registry()) {
    if (c.name == name) return c;
  }
  BF_FAIL("unknown counter: " << name);
}

bool counter_available(const std::string& name, gpusim::Generation gen) {
  const CounterInfo& info = counter_info(name);
  return gen == gpusim::Generation::kFermi ? info.on_fermi : info.on_kepler;
}

Monotonicity counter_monotonicity(const std::string& name) {
  for (const auto& c : counter_registry()) {
    if (c.name == name) return c.monotone;
  }
  return Monotonicity::kNone;
}

std::vector<std::string> counters_for(gpusim::Generation gen) {
  std::vector<std::string> out;
  for (const auto& c : counter_registry()) {
    const bool ok =
        gen == gpusim::Generation::kFermi ? c.on_fermi : c.on_kepler;
    if (ok) out.push_back(c.name);
  }
  return out;
}

}  // namespace bf::profiling
