// Prebuilt Workload adapters for the kernel library, so benches, examples
// and tests can refer to the paper's applications by name.
#pragma once

#include <string>
#include <vector>

#include "profiling/profiler.hpp"

namespace bf::profiling {

/// reduceN (N in [0,6]) over `size` input elements (multi-launch).
Workload reduce_workload(int variant, int block_size = 256);

/// Tiled matrix multiply; problem size is the matrix dimension n.
Workload matmul_workload(int tile = 16);

/// Needleman-Wunsch; problem size is the sequence length.
Workload nw_workload();

/// Streaming vector add; problem size is the element count.
Workload vecadd_workload(int block_size = 256);

/// Matrix transpose; problem size is the matrix dimension n.
/// `variant` in {"naive", "tiled", "padded"}.
Workload transpose_workload(const std::string& variant);

/// 5-point stencil; problem size is the grid dimension n.
Workload stencil_workload(int block_size = 256);

/// Shared-atomic histogram; problem size is the element count. `skew` in
/// [0,1] collapses that fraction of elements into bin 0 (atomic
/// contention).
Workload histogram_workload(double skew = 0.0, int bins = 256);

/// CSR SpMV; problem size is the row count. Pattern knobs control the
/// irregularity (see kernels::SpmvPattern).
Workload spmv_workload(int avg_nnz = 16, double row_skew = 0.0,
                       double locality = 0.5);

/// Every named workload above (reduce0..6, matrixMul, needle, vecAdd,
/// transpose variants, stencil5).
std::vector<Workload> all_workloads();

/// Look up by workload name; throws bf::Error for unknown names.
Workload workload_by_name(const std::string& name);

}  // namespace bf::profiling
