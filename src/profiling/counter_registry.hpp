// Registry of nvprof-style counters and metrics (the paper's Table 1 plus
// the rest of the working set), with per-generation availability.
//
// Counter availability differences between Fermi and Kepler are load-
// bearing for the paper: §7 calls out that l1_shared_bank_conflict exists
// only on Fermi while shared_load_replay / shared_store_replay exist only
// on Kepler, which complicates hardware scaling. The registry encodes
// exactly that.
#pragma once

#include <string>
#include <vector>

#include "gpusim/arch.hpp"

namespace bf::profiling {

enum class CounterKind {
  kEvent,   ///< raw hardware event count
  kMetric,  ///< derived metric (ratio, percentage or throughput)
};

struct CounterInfo {
  std::string name;
  std::string description;
  CounterKind kind = CounterKind::kEvent;
  bool on_fermi = true;
  bool on_kepler = true;
};

/// All counters/metrics the profiler can produce, in a stable order.
const std::vector<CounterInfo>& counter_registry();

/// Metadata for one counter; throws bf::Error for unknown names.
const CounterInfo& counter_info(const std::string& name);

/// True if `name` is produced on the given architecture generation.
bool counter_available(const std::string& name, gpusim::Generation gen);

/// Names available on a generation, in registry order.
std::vector<std::string> counters_for(gpusim::Generation gen);

}  // namespace bf::profiling
