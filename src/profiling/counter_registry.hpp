// Registry of nvprof-style counters and metrics (the paper's Table 1 plus
// the rest of the working set), with per-generation availability.
//
// Counter availability differences between Fermi and Kepler are load-
// bearing for the paper: §7 calls out that l1_shared_bank_conflict exists
// only on Fermi while shared_load_replay / shared_store_replay exist only
// on Kepler, which complicates hardware scaling. The registry encodes
// exactly that.
#pragma once

#include <string>
#include <vector>

#include "gpusim/arch.hpp"

namespace bf::profiling {

enum class CounterKind {
  kEvent,   ///< raw hardware event count
  kMetric,  ///< derived metric (ratio, percentage or throughput)
};

/// Expected behaviour of a counter as the problem size grows. The
/// prediction guard uses this to sanity-check extrapolated counter
/// models: a non-decreasing counter predicted *below* its value at the
/// largest training size signals a diverging model.
enum class Monotonicity {
  kNone,           ///< no constraint (ratios, throughputs, occupancy)
  kNonDecreasing,  ///< raw event counts grow with the problem size
};

struct CounterInfo {
  std::string name;
  std::string description;
  CounterKind kind = CounterKind::kEvent;
  bool on_fermi = true;
  bool on_kepler = true;
  Monotonicity monotone = Monotonicity::kNone;
};

/// All counters/metrics the profiler can produce, in a stable order.
const std::vector<CounterInfo>& counter_registry();

/// Metadata for one counter; throws bf::Error for unknown names.
const CounterInfo& counter_info(const std::string& name);

/// True if `name` is produced on the given architecture generation.
bool counter_available(const std::string& name, gpusim::Generation gen);

/// Names available on a generation, in registry order.
std::vector<std::string> counters_for(gpusim::Generation gen);

/// Monotonicity hint for `name`; kNone for names the registry does not
/// know (problem characteristics, CPU counters, ...), so guard code can
/// query arbitrary dataset columns safely.
Monotonicity counter_monotonicity(const std::string& name);

}  // namespace bf::profiling
