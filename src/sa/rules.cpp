#include "sa/rules.hpp"

#include <set>
#include <string>

namespace bf::sa {
namespace {

// Documentation order: the migrated legacy nine, then the include-graph
// family, then the concurrency family, then the meta rules the
// framework itself emits.
const std::vector<RuleSpec> kRegistry = {
    {"pragma-once", Severity::kError, "headers must contain #pragma once"},
    {"raw-new", Severity::kError,
     "raw new outside RAII (use std::make_unique / containers)"},
    {"raw-delete", Severity::kError,
     "raw delete (owning types must use RAII; = delete is fine)"},
    {"no-rand", Severity::kError,
     "rand()/srand()/drand48()/random_shuffle are unseeded (use bf::Rng)"},
    {"float-literal", Severity::kError,
     "float literals (1.0f) in double-precision statistical code"},
    {"unchecked-parse", Severity::kError,
     "atof/atoi/stod/... swallow trailing garbage (use bf::parse_double)"},
    {"atomic-write", Severity::kError,
     "direct ofstream in the repository layer tears entries on crash "
     "(use bf::atomic_write_file)"},
    {"guarded-predict", Severity::kError,
     "direct model query in core/power/tools bypasses the guard layer"},
    {"flat-predict", Severity::kError,
     "serve-layer per-row tree walk bypasses the flat inference engine"},
    {"registry-swap", Severity::kError,
     "serve-layer raw model pointer can dangle across a hot-reload swap "
     "(pin the generation with a shared_ptr)"},
    {"artifact-version", Severity::kError,
     "serialized-struct reader must check the format version first"},
    {"include-cycle", Severity::kError,
     "#include cycle between project headers"},
    {"layer-dag", Severity::kError,
     "#include edge violates the module layer DAG"},
    {"duplicate-include", Severity::kError,
     "the same project header is included twice in one file"},
    {"capture-escape", Severity::kError,
     "by-reference lambda capture escapes into ThreadPool::submit / "
     "std::thread"},
    {"mutable-global", Severity::kError,
     "mutable non-const namespace-scope variable (data race magnet)"},
    {"lock-order", Severity::kError,
     "inconsistent lock-acquisition order across a mutex pair in one TU"},
    {"unused-suppression", Severity::kError,
     "a bf-lint: allow(...) comment that silences nothing"},
    {"stale-baseline", Severity::kError,
     "a baseline entry that matches no current finding"},
    {"baseline-format", Severity::kError,
     "a baseline entry without a justification comment"},
    {"io", Severity::kError, "a file under analysis could not be read"},
};

}  // namespace

const std::vector<RuleSpec>& rule_registry() { return kRegistry; }

bool is_known_rule(const std::string& id) {
  for (const auto& r : kRegistry) {
    if (id == r.id) return true;
  }
  return false;
}

Severity rule_severity(const std::string& id) {
  for (const auto& r : kRegistry) {
    if (id == r.id) return r.severity;
  }
  return Severity::kError;
}

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

const std::set<std::string>& rand_tokens() {
  static const std::set<std::string> kSet = {"rand", "srand", "drand48",
                                             "random_shuffle"};
  return kSet;
}

const std::set<std::string>& parse_tokens() {
  static const std::set<std::string> kSet = {"atof",   "atoi", "atol",
                                             "strtod", "strtof", "stod",
                                             "stof",   "stoi",   "stol"};
  return kSet;
}

}  // namespace

void run_token_rules(const LexedFile& file, const std::string& rel,
                     std::vector<Finding>& out) {
  const auto report = [&](int line, const char* rule, std::string message,
                          std::string detail = "") {
    Finding f;
    f.file = rel;
    f.line = line;
    f.rule = rule;
    f.severity = rule_severity(rule);
    f.message = std::move(message);
    f.detail = std::move(detail);
    out.push_back(std::move(f));
  };

  const bool is_header = ends_with(rel, ".hpp");
  const bool is_source = ends_with(rel, ".cpp");

  const std::vector<Token>& toks = file.tokens;

  if (is_header) {
    bool has_pragma_once = false;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text == "#" && toks[i].at_line_start &&
          toks[i + 1].text == "pragma" && toks[i + 2].text == "once") {
        has_pragma_once = true;
        break;
      }
    }
    if (!has_pragma_once) {
      report(1, "pragma-once", "header is missing #pragma once");
    }
  }

  // The run repository must never be written through a bare ofstream: a
  // crash mid-write leaves a torn entry behind. Everything under the
  // profiling layer goes through bf::atomic_write_file instead.
  const std::string filename =
      rel.substr(rel.find_last_of('/') == std::string::npos
                     ? 0
                     : rel.find_last_of('/') + 1);
  const bool repository_layer =
      rel.find("/profiling/") != std::string::npos ||
      rel.find("src/profiling/") == 0 ||
      filename.find("repository") != std::string::npos;

  // Prediction consumers (the core pipeline and the CLI tools) must go
  // through the guard layer's supervised entry points; the few audited
  // raw-query exits carry explicit allow() suppressions.
  const bool guard_scope = rel.find("/core/") != std::string::npos ||
                           rel.find("src/core/") == 0 ||
                           rel.find("/power/") != std::string::npos ||
                           rel.find("src/power/") == 0 ||
                           rel.find("/tools/") != std::string::npos ||
                           rel.find("tools/") == 0;

  // The serving hot path predicts through the frozen flat engine
  // (ml::FlatForest via the bundle's predictor); a pointer-tree
  // predict_row in serve code reintroduces the per-node cache-miss walk
  // the freeze exists to eliminate.
  const bool serve_scope = rel.find("/serve/") != std::string::npos ||
                           rel.find("src/serve/") == 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kNumber) {
      if (is_float_literal(t.text)) {
        report(t.line, "float-literal",
               "float literal '" + t.text +
                   "' in double-precision code (drop the f suffix)");
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "new") {
      report(t.line, "raw-new", "raw new (use std::make_unique / containers)");
    } else if (t.text == "delete") {
      const bool deleted_member = i > 0 && toks[i - 1].text == "=";
      if (!deleted_member) {
        report(t.line, "raw-delete", "raw delete (owning types must use RAII)");
      }
    } else if (rand_tokens().count(t.text) != 0) {
      report(t.line, "no-rand",
             "'" + t.text + "' is unseeded/non-reproducible (use bf::Rng)");
    } else if (parse_tokens().count(t.text) != 0) {
      report(t.line, "unchecked-parse",
             "'" + t.text +
                 "' swallows trailing garbage (use bf::parse_double / "
                 "bf::parse_int / CsvTable)");
    } else if (repository_layer && t.text == "ofstream") {
      report(t.line, "atomic-write",
             "direct ofstream write in the repository layer can tear "
             "entries on crash (use bf::atomic_write_file)");
    } else if (serve_scope && t.text == "predict_row") {
      report(t.line, "flat-predict",
             "per-row tree walk in the serving layer (route predictions "
             "through the frozen ml::FlatForest engine)");
    } else if (serve_scope &&
               (t.text == "ModelBundle" || t.text == "LoadedModel" ||
                t.text == "BundleModel") &&
               i + 1 < toks.size() && toks[i + 1].text == "*") {
      // Hot reload swaps generations under readers; a raw pointer held
      // across a batch boundary dangles the moment the old generation's
      // last shared_ptr drops. Only shared_ptr pins are allowed.
      report(t.line, "registry-swap",
             "raw " + t.text +
                 "* in the serving layer can dangle across a hot-reload "
                 "swap (pin the generation with "
                 "std::shared_ptr<const LoadedModel>)");
    } else if (guard_scope && t.text == "predict_row") {
      report(t.line, "guarded-predict",
             "direct per-row model query bypasses the guard layer (use "
             "ProblemScalingPredictor::predict_guarded / "
             "CounterModels::predict_kind)");
    } else if (guard_scope && t.text == "predict" && i >= 2 &&
               toks[i - 1].text == "." &&
               (toks[i - 2].text == "forest_" ||
                (i >= 4 && toks[i - 2].text == ")" &&
                 toks[i - 3].text == "(" && toks[i - 4].text == "forest"))) {
      report(t.line, "guarded-predict",
             "direct forest prediction bypasses the guard layer (use "
             "ProblemScalingPredictor::predict_guarded)");
    } else if ((guard_scope || serve_scope) &&
               (t.text == "predict_time" || t.text == "predict_power") &&
               i >= 1 &&
               (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      // The legacy unguarded scalar entry points: a member call drops
      // hull checks, physical caps and the A/B/C grade. Declarations and
      // definitions (no member-access prefix) stay clean; the deliberate
      // --no-guard exits carry allow() suppressions.
      report(t.line, "guarded-predict",
             "unguarded '" + t.text +
                 "' call drops hull checks, physical caps and grades "
                 "(use predict_guarded)");
    } else if (is_source && t.text == "load" && i + 1 < toks.size() &&
               toks[i + 1].text == "(") {
      // A reader definition: `load(` with an istream parameter close by
      // (declarations live in headers, call sites pass a value, so only
      // .cpp definitions match). The function must consult the format
      // version before parsing any field.
      bool is_reader = false;
      for (std::size_t j = i + 2; j < toks.size() && j <= i + 6; ++j) {
        if (toks[j].text == "istream") {
          is_reader = true;
          break;
        }
      }
      if (is_reader) {
        bool versioned = false;
        for (std::size_t j = i; j < toks.size() && j <= i + 200; ++j) {
          if (toks[j].text == "read_format_version" ||
              toks[j].text == "format_version") {
            versioned = true;
            break;
          }
        }
        if (!versioned) {
          report(t.line, "artifact-version",
                 "serialized-struct reader does not check the format "
                 "version before parsing (call bf::read_format_version "
                 "first)");
        }
      }
    }
  }
}

}  // namespace bf::sa
