// bf::sa rule registry and the token-based per-file rules.
//
// Every rule the analyzer can emit is declared here with a stable id,
// a severity and a one-line summary; drivers use the registry for
// --help style listings and the test suite asserts the fixture corpus
// trips every registered rule. The nine legacy bf_lint regex rules live
// on as token-based passes over the shared lexer (see run_token_rules),
// so string/comment false-positive handling happens exactly once.
#pragma once

#include <vector>

#include "sa/findings.hpp"
#include "sa/lexer.hpp"

namespace bf::sa {

struct RuleSpec {
  const char* id;
  Severity severity;
  const char* summary;
};

/// All rules any pass can emit, in documentation order.
const std::vector<RuleSpec>& rule_registry();

/// True if `id` names a registered rule.
bool is_known_rule(const std::string& id);

/// Severity for a rule id (kError when unknown — unknown ids cannot be
/// emitted, but the lookup must totalise).
Severity rule_severity(const std::string& id);

/// Run the per-file token rules (the migrated legacy nine) over one
/// lexed file, appending raw findings (suppressions/baseline are
/// applied later by the analyzer). `repo_relative` is the normalized
/// path used for scope decisions (profiling layer, core/tools guard
/// scope) and for the finding's file field.
void run_token_rules(const LexedFile& file, const std::string& repo_relative,
                     std::vector<Finding>& out);

}  // namespace bf::sa
