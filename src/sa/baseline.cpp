#include "sa/baseline.hpp"

#include <algorithm>

#include "common/string_util.hpp"
#include "sa/rules.hpp"

namespace bf::sa {

Baseline parse_baseline(std::string path, const std::string& content) {
  Baseline b;
  b.path = std::move(path);
  int line_no = 0;
  for (const auto& raw_line : bf::split(content, '\n')) {
    ++line_no;
    const std::string_view line = bf::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    BaselineEntry e;
    e.line = line_no;
    const auto hash = line.find(" #");
    if (hash == std::string_view::npos) {
      e.key = std::string(bf::trim(line));
    } else {
      e.key = std::string(bf::trim(line.substr(0, hash)));
      e.justification = std::string(bf::trim(line.substr(hash + 2)));
    }
    b.entries.push_back(std::move(e));
  }
  return b;
}

void apply_baseline(const Baseline& baseline, std::vector<Finding>& findings,
                    ReportStats& stats) {
  if (baseline.path.empty()) return;
  std::vector<bool> used(baseline.entries.size(), false);
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& f : findings) {
    const std::string key = finding_key(f);
    bool matched = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (baseline.entries[i].key == key) {
        used[i] = true;
        matched = true;
      }
    }
    if (matched) {
      ++stats.baselined;
    } else {
      kept.push_back(std::move(f));
    }
  }
  findings = std::move(kept);
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    const BaselineEntry& e = baseline.entries[i];
    if (e.justification.empty()) {
      Finding f;
      f.file = baseline.path;
      f.line = e.line;
      f.rule = "baseline-format";
      f.severity = rule_severity("baseline-format");
      f.message = "baseline entry '" + e.key +
                  "' has no justification (append ' # reason')";
      f.detail = e.key;
      findings.push_back(std::move(f));
    }
    if (!used[i]) {
      Finding f;
      f.file = baseline.path;
      f.line = e.line;
      f.rule = "stale-baseline";
      f.severity = rule_severity("stale-baseline");
      f.message = "baseline entry '" + e.key +
                  "' matches no current finding (delete the line)";
      f.detail = e.key;
      findings.push_back(std::move(f));
    }
  }
}

}  // namespace bf::sa
