// bf::sa baseline — grandfathered findings, committed with justifications.
//
// Format (one entry per line):
//
//   <rule>|<file>|<detail>  # why this finding is accepted
//
// The key is a finding's stable identity (line numbers excluded, so
// unrelated edits never invalidate entries). Blank lines and lines
// starting with '#' are comments. Every entry MUST carry a ' # reason'
// trailer — an entry without one is itself a finding
// (baseline-format), and an entry matching no current finding is a
// finding too (stale-baseline): the baseline can only shrink.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sa/findings.hpp"

namespace bf::sa {

struct BaselineEntry {
  std::string key;            // rule|file|detail
  std::string justification;  // text after '#'
  int line = 0;               // line in the baseline file
};

struct Baseline {
  std::string path;  // as given; "" when no baseline is in use
  std::vector<BaselineEntry> entries;
};

/// Parse a baseline file's content. Malformed entries are reported by
/// apply_baseline (the parse itself never fails).
Baseline parse_baseline(std::string path, const std::string& content);

/// Drop findings matched by the baseline (counting them in
/// stats.baselined); append baseline-format findings for entries
/// without a justification and stale-baseline findings for entries that
/// matched nothing.
void apply_baseline(const Baseline& baseline, std::vector<Finding>& findings,
                    ReportStats& stats);

}  // namespace bf::sa
