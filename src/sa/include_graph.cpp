#include "sa/include_graph.hpp"

#include <algorithm>
#include <set>

#include "sa/rules.hpp"

namespace bf::sa {
namespace {

/// Collapse "." and ".." components of a '/'-separated path.
std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  const auto flush = [&] {
    if (cur.empty() || cur == ".") {
      cur.clear();
      return;
    }
    if (cur == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (const char c : path) {
    if (c == '/') {
      flush();
    } else {
      cur.push_back(c);
    }
  }
  flush();
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.push_back('/');
    out += parts[i];
  }
  return out;
}

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

const std::vector<LayerSpec>& layer_table() {
  // A module may include itself plus the listed modules; "*" allows
  // everything (the executable roots). Order is documentation order,
  // lowest layer first.
  static const std::vector<LayerSpec> kTable = {
      {"common", {}},
      {"sa", {"common"}},
      {"linalg", {"common"}},
      {"gpusim", {"common"}},
      {"cpusim", {"common", "gpusim"}},
      {"kernels", {"common", "gpusim"}},
      {"ml", {"common", "linalg"}},
      {"check", {"common", "linalg", "ml", "gpusim"}},
      {"guard", {"common", "linalg", "ml", "gpusim"}},
      {"profiling",
       {"common", "linalg", "ml", "gpusim", "cpusim", "kernels", "check"}},
      {"core",
       {"common", "linalg", "ml", "gpusim", "cpusim", "kernels", "check",
        "guard", "profiling"}},
      {"power",
       {"common", "linalg", "ml", "gpusim", "cpusim", "kernels", "check",
        "guard", "profiling", "core"}},
      {"report",
       {"common", "linalg", "ml", "gpusim", "check", "guard", "profiling",
        "core"}},
      {"serve",
       {"common", "linalg", "ml", "gpusim", "check", "guard", "profiling",
        "core", "power"}},
      {"tools", {"*"}},
      {"tests", {"*"}},
      {"bench", {"*"}},
      {"examples", {"*"}},
  };
  return kTable;
}

std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) == 0) {
    const auto slash = rel.find('/', 4);
    if (slash != std::string::npos) return rel.substr(4, slash - 4);
    return "";  // a file directly under src/ belongs to no module
  }
  const auto slash = rel.find('/');
  if (slash == std::string::npos) return "";
  const std::string root = rel.substr(0, slash);
  if (root == "tools" || root == "tests" || root == "bench" ||
      root == "examples") {
    return root;
  }
  return "";
}

std::vector<IncludeEdge> extract_includes(
    const LexedFile& file, const std::string& rel,
    const std::map<std::string, const LexedFile*>& known_files) {
  std::vector<IncludeEdge> edges;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(toks[i].text == "#" && toks[i].at_line_start)) continue;
    if (toks[i + 1].text != "include") continue;
    const Token& target = toks[i + 2];
    if (target.kind != TokKind::kString) continue;  // <...> or macro
    if (target.text.size() < 2) continue;
    const std::string spelled =
        target.text.substr(1, target.text.size() - 2);
    // Resolution mirrors the build: quoted includes are relative to the
    // including file's directory first, then to the src/ include root.
    std::string resolved;
    const std::string sibling =
        normalize_path(dir_of(rel).empty() ? spelled
                                           : dir_of(rel) + "/" + spelled);
    if (known_files.count(sibling) != 0) {
      resolved = sibling;
    } else if (known_files.count(normalize_path("src/" + spelled)) != 0) {
      resolved = normalize_path("src/" + spelled);
    } else if (known_files.count(normalize_path(spelled)) != 0) {
      resolved = normalize_path(spelled);
    } else {
      continue;  // outside the scanned set (system / third-party)
    }
    IncludeEdge e;
    e.from = rel;
    e.to = resolved;
    e.spelled = spelled;
    e.line = target.line;
    edges.push_back(std::move(e));
  }
  return edges;
}

namespace {

const LayerSpec* layer_for(const std::string& module) {
  for (const auto& l : layer_table()) {
    if (module == l.module) return &l;
  }
  return nullptr;
}

bool edge_allowed(const std::string& from_mod, const std::string& to_mod) {
  if (from_mod.empty() || to_mod.empty()) return true;  // outside the DAG
  if (from_mod == to_mod) return true;
  const LayerSpec* spec = layer_for(from_mod);
  if (spec == nullptr) return true;  // unknown module: not enforced
  for (const char* allowed : spec->allowed) {
    if (to_mod == allowed || std::string(allowed) == "*") return true;
  }
  return false;
}

/// Iterative DFS cycle detection over the file-level graph. Each
/// distinct cycle is reported once, keyed by its canonical rotation.
void find_cycles(const std::map<std::string, std::vector<IncludeEdge>>& graph,
                 std::vector<Finding>& out) {
  std::set<std::string> done;       // fully explored
  std::set<std::string> reported;   // canonical cycle keys
  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (done.count(start) != 0) continue;
    // Path-based DFS with explicit stack of (node, next edge index).
    std::vector<std::pair<std::string, std::size_t>> stack;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    stack.push_back({start, 0});
    path.push_back(start);
    on_path.insert(start);
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto it = graph.find(node);
      const auto& edges =
          it == graph.end() ? std::vector<IncludeEdge>{} : it->second;
      if (idx >= edges.size()) {
        done.insert(node);
        on_path.erase(node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge& e = edges[idx++];
      if (on_path.count(e.to) != 0) {
        // Cycle: path from e.to to node, closed by this edge.
        const auto begin =
            std::find(path.begin(), path.end(), e.to);
        std::vector<std::string> cycle(begin, path.end());
        // Canonical rotation: start at the lexicographically smallest.
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        // Closed chain `a -> b -> a`: no trailing separator, so the
        // detail survives the whitespace-trimming baseline parser.
        std::string key;
        for (const auto& n : cycle) key += n + " -> ";
        key += cycle.front();
        if (reported.insert(key).second) {
          Finding f;
          f.file = e.from;
          f.line = e.line;
          f.rule = "include-cycle";
          f.severity = rule_severity("include-cycle");
          f.message = "#include cycle: " + key;
          f.detail = key;
          out.push_back(std::move(f));
        }
        continue;
      }
      if (done.count(e.to) != 0) continue;
      stack.push_back({e.to, 0});
      path.push_back(e.to);
      on_path.insert(e.to);
    }
  }
}

}  // namespace

void run_include_graph(
    const std::map<std::string, const LexedFile*>& files_by_rel,
    std::vector<Finding>& out) {
  std::map<std::string, std::vector<IncludeEdge>> graph;
  for (const auto& [rel, file] : files_by_rel) {
    std::vector<IncludeEdge> edges =
        extract_includes(*file, rel, files_by_rel);
    // duplicate-include: the same resolved target twice in one file.
    std::set<std::string> seen;
    for (const auto& e : edges) {
      if (!seen.insert(e.to).second) {
        Finding f;
        f.file = rel;
        f.line = e.line;
        f.rule = "duplicate-include";
        f.severity = rule_severity("duplicate-include");
        f.message = "'" + e.spelled + "' is already included above";
        f.detail = e.to;
        out.push_back(std::move(f));
      }
    }
    // layer-dag: module edge must be allowed by the table.
    const std::string from_mod = module_of(rel);
    for (const auto& e : edges) {
      const std::string to_mod = module_of(e.to);
      if (!edge_allowed(from_mod, to_mod)) {
        Finding f;
        f.file = rel;
        f.line = e.line;
        f.rule = "layer-dag";
        f.severity = rule_severity("layer-dag");
        f.message = "layer '" + from_mod + "' may not include from layer '" +
                    to_mod + "' (" + e.spelled +
                    "); see the layer table in sa/include_graph.cpp";
        f.detail = from_mod + "->" + to_mod + ":" + e.to;
        out.push_back(std::move(f));
      }
    }
    graph[rel] = std::move(edges);
  }
  find_cycles(graph, out);
}

}  // namespace bf::sa
