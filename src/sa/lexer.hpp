// bf::sa lexer — a comment/string/raw-string-aware C++ token stream.
//
// Every pass in the static-analysis library consumes this one lexer, so
// the corner cases that break line-oriented tools (raw string literals
// with embedded quotes, line continuations inside // comments, '\''
// char escapes, adjacent string literals, block-comment-like text
// inside strings) are handled exactly once. The lexer is not a compiler
// front end: it produces a flat token stream with line/column
// positions, keeps comments as separate trivia (for suppression
// scanning), and never evaluates the preprocessor.
#pragma once

#include <string>
#include <vector>

namespace bf::sa {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-number: 1, 0xFF, 1.5e-3, 1'000'000, 2.0f
  kString,   // string literal incl. quotes/prefix: "x", u8"x", R"(x)"
  kChar,     // character literal incl. quotes: 'a', '\''
  kPunct,    // one operator/punctuator character
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based physical line of the first character
  int col = 0;   // 1-based column of the first character
  /// For kString: true when this was a raw string literal R"(...)".
  bool raw = false;
  /// True when this token is the first on its physical line (used to
  /// recognise preprocessor directives without a separate pp pass).
  bool at_line_start = false;
};

struct Comment {
  std::string text;  // full comment incl. // or /* */
  int line = 0;      // line the comment starts on
  int end_line = 0;  // last line the comment covers (continuations!)
};

struct LexedFile {
  std::string path;                 // as given to lex_file
  std::string src;                  // raw bytes
  std::vector<Token> tokens;        // code tokens, comments excluded
  std::vector<Comment> comments;    // comment trivia, in order
  int line_count = 0;
};

/// Lex a source buffer. Never throws: malformed input (unterminated
/// string, stray byte) degrades to best-effort punct tokens so the
/// analysis can still report on the rest of the file.
LexedFile lex(std::string path, std::string src);

/// True for a decimal floating literal with an f/F suffix (1.0f, 3.f,
/// 1e-3f). Hex-float (0x1p3f) and plain integers are not matched.
bool is_float_literal(const std::string& number_text);

}  // namespace bf::sa
