#include "sa/analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/string_util.hpp"
#include "sa/baseline.hpp"
#include "sa/concurrency.hpp"
#include "sa/include_graph.hpp"
#include "sa/lexer.hpp"
#include "sa/rules.hpp"

namespace bf::sa {
namespace {

namespace fs = std::filesystem;

std::string generic(const fs::path& p) {
  std::string s = p.lexically_normal().generic_string();
  while (s.size() > 1 && s.back() == '/') s.pop_back();
  return s;
}

/// Deepest common ancestor of a set of absolute paths.
std::string common_ancestor(const std::vector<std::string>& paths) {
  if (paths.empty()) return "";
  std::vector<std::string> acc = bf::split(paths.front(), '/');
  for (const auto& p : paths) {
    const std::vector<std::string> parts = bf::split(p, '/');
    std::size_t match = 0;
    while (match < acc.size() && match < parts.size() &&
           acc[match] == parts[match]) {
      ++match;
    }
    acc.resize(match);
  }
  return bf::join(acc, "/");
}

std::string relative_to(const std::string& path, const std::string& root) {
  if (!root.empty() && bf::starts_with(path, root + "/")) {
    return path.substr(root.size() + 1);
  }
  if (path == root) return path;
  return path;
}

struct Suppression {
  std::string rule;
  int first_line = 0;
  int last_line = 0;
  bool used = false;
};

/// Parse `bf-lint: allow(rule)` / `allow(rule1, rule2)` markers out of a
/// file's comment trivia. A marker covers every physical line its
/// comment spans (so a continuation-extended comment still suppresses).
/// Only comments sharing a line with code count: a suppression is a
/// trailing audit marker on the offending line, while a whole-line
/// comment is documentation (which may legitimately *mention* the
/// marker, as this one does).
std::vector<Suppression> parse_suppressions(const LexedFile& file) {
  std::vector<Suppression> out;
  std::set<int> code_lines;
  for (const Token& t : file.tokens) code_lines.insert(t.line);
  static const std::string kMarker = "bf-lint: allow(";
  for (const Comment& c : file.comments) {
    bool beside_code = false;
    for (int l = c.line; l <= c.end_line && !beside_code; ++l) {
      beside_code = code_lines.count(l) != 0;
    }
    if (!beside_code) continue;
    std::size_t at = 0;
    while ((at = c.text.find(kMarker, at)) != std::string::npos) {
      const std::size_t open = at + kMarker.size() - 1;
      const std::size_t close = c.text.find(')', open);
      if (close == std::string::npos) break;
      const std::string inside = c.text.substr(open + 1, close - open - 1);
      for (const auto& rule : bf::split(inside, ',')) {
        const std::string id(bf::trim(rule));
        if (id.empty()) continue;
        Suppression s;
        s.rule = id;
        s.first_line = c.line;
        s.last_line = c.end_line;
        out.push_back(std::move(s));
      }
      at = close;
    }
  }
  return out;
}

}  // namespace

AnalysisReport analyze(const AnalyzerOptions& options) {
  BF_CHECK_MSG(!options.roots.empty(), "bf::sa::analyze: no roots given");

  std::vector<std::string> exclude_prefixes;
  for (const auto& e : options.excludes) {
    exclude_prefixes.push_back(generic(fs::absolute(e)));
  }
  const auto excluded = [&](const std::string& abs) {
    for (const auto& pre : exclude_prefixes) {
      if (abs == pre || bf::starts_with(abs, pre + "/")) return true;
    }
    return false;
  };

  // Collect the file set.
  std::vector<std::string> root_paths;
  std::set<std::string> files;  // absolute, sorted, deduped
  for (const auto& root : options.roots) {
    const fs::path rp(root);
    BF_CHECK_MSG(fs::exists(rp), "bf_lint: no such path: " << root);
    const std::string abs_root = generic(fs::absolute(rp));
    root_paths.push_back(abs_root);
    if (fs::is_regular_file(rp)) {
      if (!excluded(abs_root)) files.insert(abs_root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(rp)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".hpp" && ext != ".cpp") continue;
      const std::string abs = generic(fs::absolute(entry.path()));
      if (!excluded(abs)) files.insert(abs);
    }
  }

  const std::string repo_root =
      options.repo_root.empty()
          ? common_ancestor(root_paths)
          : generic(fs::absolute(options.repo_root));

  AnalysisReport report;
  report.stats.files_scanned = files.size();

  // Lex everything once; passes share the token streams.
  std::vector<std::unique_ptr<LexedFile>> lexed;
  std::map<std::string, const LexedFile*> by_rel;
  std::map<std::string, std::vector<Suppression>> suppressions;
  std::vector<Finding> raw;
  for (const auto& abs : files) {
    const std::string rel = relative_to(abs, repo_root);
    const std::optional<std::string> content = bf::read_file(abs);
    if (!content.has_value()) {
      Finding f;
      f.file = rel;
      f.line = 0;
      f.rule = "io";
      f.severity = rule_severity("io");
      f.message = "cannot read file";
      raw.push_back(std::move(f));
      continue;
    }
    lexed.push_back(
        std::make_unique<LexedFile>(lex(abs, std::move(*content))));
    const LexedFile* file = lexed.back().get();
    by_rel[rel] = file;
    suppressions[rel] = parse_suppressions(*file);
    run_token_rules(*file, rel, raw);
    run_concurrency_passes(*file, rel, raw);
  }
  run_include_graph(by_rel, raw);

  // Apply in-source suppressions, with accounting.
  std::vector<Finding> unsuppressed;
  unsuppressed.reserve(raw.size());
  for (auto& f : raw) {
    bool silenced = false;
    const auto it = suppressions.find(f.file);
    if (it != suppressions.end()) {
      for (auto& s : it->second) {
        if (s.rule == f.rule && f.line >= s.first_line &&
            f.line <= s.last_line) {
          s.used = true;
          silenced = true;
        }
      }
    }
    if (silenced) {
      ++report.stats.suppressed;
    } else {
      unsuppressed.push_back(std::move(f));
    }
  }
  for (const auto& [rel, list] : suppressions) {
    for (const auto& s : list) {
      if (s.used) continue;
      Finding f;
      f.file = rel;
      f.line = s.first_line;
      f.rule = "unused-suppression";
      f.severity = rule_severity("unused-suppression");
      f.message = "bf-lint: allow(" + s.rule +
                  ") silences nothing on this line (delete the comment)";
      f.detail = s.rule;
      unsuppressed.push_back(std::move(f));
    }
  }

  // Baseline of grandfathered findings.
  if (!options.baseline_path.empty()) {
    const std::optional<std::string> content =
        bf::read_file(options.baseline_path);
    BF_CHECK_MSG(content.has_value(), "bf_lint: cannot read baseline file: "
                                          << options.baseline_path);
    const Baseline baseline =
        parse_baseline(options.baseline_path, *content);
    apply_baseline(baseline, unsuppressed, report.stats);
  }

  report.findings = std::move(unsuppressed);
  sort_findings(report.findings);
  return report;
}

}  // namespace bf::sa
