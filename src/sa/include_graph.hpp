// bf::sa include-graph analysis — module layering, cycles, duplicates.
//
// The project is layered as a DAG of modules (directories under src/,
// plus the tools/tests/bench/examples roots). The table in
// layer_table() is the single declarative statement of which module may
// include which; the pass extracts every quoted #include edge from the
// shared token stream, resolves it against the scanned file set, and
// reports:
//
//   layer-dag          an edge the table does not allow
//   include-cycle      a cycle in the file-level include graph
//   duplicate-include  the same resolved header included twice
//
// Grandfathered edges live in the committed baseline with a
// justification; new violations fail the build.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sa/findings.hpp"
#include "sa/lexer.hpp"

namespace bf::sa {

struct LayerSpec {
  const char* module;
  /// Modules this one may #include from (itself is always allowed).
  std::vector<const char*> allowed;
};

/// The project layer DAG:
///   common → linalg → ml / gpusim / cpusim / kernels
///          → check / guard → profiling → core → serve / report
///          → tools / tests / bench / examples
/// (sa sits beside linalg: it depends on common only.)
const std::vector<LayerSpec>& layer_table();

/// Module name for a repo-relative path: "src/ml/tree.cpp" → "ml",
/// "tools/bf_lint.cpp" → "tools". Empty for paths outside known roots.
std::string module_of(const std::string& repo_relative);

struct IncludeEdge {
  std::string from;     // repo-relative includer
  std::string to;       // repo-relative resolved target
  std::string spelled;  // the path as written between quotes
  int line = 0;
};

/// Extract the quoted #include directives of one lexed file. System
/// (<...>) includes are ignored; unresolved quoted includes (not in
/// `known_files`) are skipped — they are compiler-path headers like
/// gtest's, not project layering edges.
std::vector<IncludeEdge> extract_includes(
    const LexedFile& file, const std::string& repo_relative,
    const std::map<std::string, const LexedFile*>& known_files);

/// Run the whole-graph pass over every scanned file.
void run_include_graph(
    const std::map<std::string, const LexedFile*>& files_by_rel,
    std::vector<Finding>& out);

}  // namespace bf::sa
