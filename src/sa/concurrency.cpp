#include "sa/concurrency.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <utility>

#include "sa/rules.hpp"

namespace bf::sa {
namespace {

using Toks = std::vector<Token>;

/// Index of the token matching the opener at `open` ('(' / '{' / '['),
/// or toks.size() when unbalanced.
std::size_t match_balanced(const Toks& toks, std::size_t open,
                           const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

/// True when toks[i] opens a lambda introducer whose capture list
/// contains a by-reference capture ('&' anywhere between [ and ]).
/// The ']' must be followed by '(' / '{' / 'mutable' / 'noexcept' so
/// array subscripts are not mistaken for lambdas.
bool is_by_ref_lambda(const Toks& toks, std::size_t i) {
  if (toks[i].text != "[") return false;
  const std::size_t close = match_balanced(toks, i, "[", "]");
  if (close >= toks.size()) return false;
  if (close + 1 >= toks.size()) return false;
  const Token& after = toks[close + 1];
  const bool lambda_shaped =
      after.text == "(" || after.text == "{" || after.text == "mutable" ||
      after.text == "noexcept" || after.text == "->";
  if (!lambda_shaped) return false;
  for (std::size_t j = i + 1; j < close; ++j) {
    if (toks[j].kind == TokKind::kPunct && toks[j].text == "&") return true;
  }
  return false;
}

/// capture-escape: by-ref lambdas handed to submit() or std::thread.
void capture_escape_pass(const LexedFile& file, const std::string& rel,
                         std::vector<Finding>& out) {
  const Toks& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::size_t args_open = toks.size();
    const char* sink = nullptr;
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "submit" &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      args_open = i + 1;
      sink = "ThreadPool::submit";
    } else if (toks[i].kind == TokKind::kIdent &&
               (toks[i].text == "thread" || toks[i].text == "jthread") &&
               i >= 2 && toks[i - 1].text == "::" &&
               toks[i - 2].text == "std") {
      // std::thread t(...)  |  std::thread(...)  |  std::thread t{...}
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;
      if (j < toks.size() && (toks[j].text == "(" || toks[j].text == "{")) {
        args_open = j;
        sink = "std::thread";
      }
    }
    if (sink == nullptr) continue;
    const char* opener = toks[args_open].text == "{" ? "{" : "(";
    const char* closer = toks[args_open].text == "{" ? "}" : ")";
    const std::size_t args_close =
        match_balanced(toks, args_open, opener, closer);
    for (std::size_t j = args_open + 1; j < args_close; ++j) {
      if (is_by_ref_lambda(toks, j)) {
        Finding f;
        f.file = rel;
        f.line = toks[i].line;
        f.rule = "capture-escape";
        f.severity = rule_severity("capture-escape");
        f.message =
            std::string("by-reference lambda capture escapes into ") + sink +
            "; the task can outlive the captured frame (capture by value, "
            "or audit with bf-lint: allow(capture-escape))";
        f.detail = sink;
        out.push_back(std::move(f));
        break;  // one finding per call site
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mutable-global

enum class ScopeKind { kNamespace, kType, kFunction, kInitializer, kBlock };

bool contains_ident(const Toks& stmt, const char* word) {
  for (const auto& t : stmt) {
    if (t.kind == TokKind::kIdent && t.text == word) return true;
  }
  return false;
}

bool is_exempt_type(const Toks& stmt) {
  static const std::set<std::string> kExempt = {
      "mutex",  "shared_mutex", "recursive_mutex",    "atomic",
      "atomic_flag", "atomic_bool", "atomic_int",     "once_flag",
      "condition_variable", "thread_local"};
  for (const auto& t : stmt) {
    if (t.kind == TokKind::kIdent && kExempt.count(t.text) != 0) return true;
  }
  return false;
}

/// Analyze one namespace-scope statement (tokens up to but excluding the
/// terminating ';'); emit mutable-global when it declares a non-const,
/// non-synchronisation variable.
void analyze_global_stmt(const Toks& stmt, const std::string& rel,
                         std::vector<Finding>& out) {
  if (stmt.empty()) return;
  if (contains_ident(stmt, "const") || contains_ident(stmt, "constexpr") ||
      contains_ident(stmt, "constinit")) {
    return;
  }
  // Not variable declarations: type decls, aliases, templates, externs
  // (the defining TU is flagged instead), asserts, operators.
  for (const char* skip :
       {"using", "typedef", "template", "friend", "operator", "static_assert",
        "extern", "struct", "class", "enum", "union", "namespace"}) {
    if (contains_ident(stmt, skip)) return;
  }
  if (is_exempt_type(stmt)) return;
  // A '(' before any '=' means a function declaration (or a
  // most-vexing-parse construct that is one anyway); '=' first means a
  // variable with an initializer expression.
  std::size_t eq_pos = stmt.size();
  std::size_t paren_pos = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind != TokKind::kPunct) continue;
    if (stmt[i].text == "=" && eq_pos == stmt.size()) eq_pos = i;
    if (stmt[i].text == "(" && paren_pos == stmt.size()) paren_pos = i;
  }
  if (paren_pos < eq_pos) return;  // function declaration
  // The declared name: last identifier before '=', '[' or end.
  std::string name;
  const std::size_t stop = eq_pos;
  for (std::size_t i = 0; i < stop; ++i) {
    if (stmt[i].kind == TokKind::kIdent) name = stmt[i].text;
    if (stmt[i].kind == TokKind::kPunct && stmt[i].text == "[") break;
  }
  if (name.empty()) return;
  // A bare expression statement (e.g. a macro invocation) has no type
  // tokens before the name; require at least one token before it.
  if (stmt.size() < 2) return;
  Finding f;
  f.file = rel;
  f.line = stmt.front().line;
  f.rule = "mutable-global";
  f.severity = rule_severity("mutable-global");
  f.message = "mutable namespace-scope variable '" + name +
              "' is shared state without synchronisation (make it const, "
              "wrap it in a locked accessor, or use std::atomic)";
  f.detail = name;
  out.push_back(std::move(f));
}

void mutable_global_pass(const LexedFile& file, const std::string& rel,
                         std::vector<Finding>& out) {
  const Toks& toks = file.tokens;
  std::vector<ScopeKind> scopes;  // one entry per open '{'
  Toks stmt;                      // statement head at namespace scope
  bool swallow_semicolon = false;
  const auto at_namespace_scope = [&] {
    for (const ScopeKind k : scopes) {
      if (k != ScopeKind::kNamespace) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // Preprocessor directives: swallow the whole logical line.
    if (t.kind == TokKind::kPunct && t.text == "#" && t.at_line_start) {
      while (i + 1 < toks.size() && !toks[i + 1].at_line_start) ++i;
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "{") {
      ScopeKind kind = ScopeKind::kBlock;
      if (at_namespace_scope()) {
        bool has_paren = false;
        int open_parens = 0;
        for (const auto& s : stmt) {
          if (s.kind != TokKind::kPunct) continue;
          if (s.text == "(") {
            has_paren = true;
            ++open_parens;
          } else if (s.text == ")") {
            --open_parens;
          }
        }
        if (open_parens > 0) {
          // Inside an argument list (e.g. a `= {}` default argument of
          // a multi-line declaration): the brace is expression detail
          // and the statement continues after it.
          kind = ScopeKind::kInitializer;
        } else if (contains_ident(stmt, "namespace") ||
                   contains_ident(stmt, "extern")) {
          kind = ScopeKind::kNamespace;
        } else if (!has_paren && (contains_ident(stmt, "class") ||
                                  contains_ident(stmt, "struct") ||
                                  contains_ident(stmt, "union") ||
                                  contains_ident(stmt, "enum"))) {
          kind = ScopeKind::kType;
        } else if (has_paren || stmt.empty()) {
          kind = ScopeKind::kFunction;
        } else {
          // `std::atomic<bool> g{false}` — brace initializer: the
          // statement continues after the matching '}'.
          kind = ScopeKind::kInitializer;
        }
        if (kind == ScopeKind::kNamespace) stmt.clear();
      }
      scopes.push_back(kind);
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "}") {
      if (!scopes.empty()) {
        const ScopeKind closed = scopes.back();
        scopes.pop_back();
        if (at_namespace_scope()) {
          if (closed == ScopeKind::kType || closed == ScopeKind::kFunction ||
              closed == ScopeKind::kBlock) {
            stmt.clear();
            swallow_semicolon = true;
          }
          // kInitializer: keep the statement alive until its ';'.
        }
      }
      continue;
    }
    if (!at_namespace_scope()) continue;
    // Inside an initializer brace the tokens are expression detail;
    // skip them but keep the statement open.
    if (!scopes.empty() && scopes.back() == ScopeKind::kInitializer) continue;
    if (t.kind == TokKind::kPunct && t.text == ";") {
      if (swallow_semicolon) {
        swallow_semicolon = false;
      } else {
        analyze_global_stmt(stmt, rel, out);
      }
      stmt.clear();
      continue;
    }
    swallow_semicolon = false;
    stmt.push_back(t);
  }
}

// ---------------------------------------------------------------------------
// lock-order

/// Flatten the expression tokens of a guard's first constructor
/// argument (up to a top-level ',' or ')') into a mutex identity.
std::string flatten_arg(const Toks& toks, std::size_t open,
                        std::size_t* out_end, bool* out_multi) {
  std::string name;
  int depth = 0;
  *out_multi = false;
  std::size_t i = open;
  for (; i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (toks[i].kind == TokKind::kPunct) {
      if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
      if (s == ")" || s == "]" || s == "}" || s == ">") {
        if (depth == 0 && s == ")") break;
        --depth;
      }
      if (s == "," && depth == 0) {
        *out_multi = true;
        break;
      }
    }
    name += s;
  }
  *out_end = i;
  return name;
}

void lock_order_pass(const LexedFile& file, const std::string& rel,
                     std::vector<Finding>& out) {
  const Toks& toks = file.tokens;
  struct Held {
    std::string name;
    int depth = 0;
    bool manual = false;
  };
  std::vector<Held> held;
  // (first, second) -> line where `second` was acquired under `first`.
  std::map<std::pair<std::string, std::string>, int> pairs;
  int depth = 0;

  const auto acquire = [&](const std::string& name, int line) {
    for (const auto& h : held) {
      if (h.name == name) return;  // recursive/self, skip
      pairs.emplace(std::make_pair(h.name, name), line);
    }
    held.push_back({name, depth, false});
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        // Guards acquired inside the closing block die with it.
        while (!held.empty() && held.back().depth >= depth) held.pop_back();
        --depth;
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "lock_guard" || t.text == "unique_lock" ||
        t.text == "scoped_lock") {
      // Optional template argument list, then a variable name, then the
      // constructor argument list naming the mutex.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {
        int tdepth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++tdepth;
          if (toks[j].text == ">") --tdepth;
          if (toks[j].text == ">>") tdepth -= 2;  // nested close, merged
          if (tdepth <= 0 && toks[j].text.front() == '>') {
            ++j;
            break;
          }
        }
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;
      if (j < toks.size() && (toks[j].text == "(" || toks[j].text == "{")) {
        std::size_t end = 0;
        bool multi = false;
        const std::string name = flatten_arg(toks, j + 1, &end, &multi);
        // std::scoped_lock(a, b) locks deadlock-free; a second argument
        // to unique_lock is a tag (defer/adopt) — skip both.
        if (!name.empty() && !multi) acquire(name, t.line);
      }
    } else if (t.text == "lock" && i >= 2 && i + 1 < toks.size() &&
               toks[i + 1].text == "(" &&
               (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      // Manual m.lock(): identity is the dotted expression before .lock.
      std::string name;
      std::size_t k = i - 1;
      while (k > 0) {
        const Token& p = toks[k - 1];
        if (p.kind == TokKind::kIdent || p.text == "." || p.text == "->" ||
            p.text == "::") {
          name = p.text + name;
          --k;
        } else {
          break;
        }
      }
      if (!name.empty()) {
        for (const auto& h : held) {
          if (h.name != name) pairs.emplace(std::make_pair(h.name, name),
                                            t.line);
        }
        held.push_back({name, depth, true});
      }
    } else if (t.text == "unlock" && i >= 2 &&
               (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      std::string name;
      std::size_t k = i - 1;
      while (k > 0) {
        const Token& p = toks[k - 1];
        if (p.kind == TokKind::kIdent || p.text == "." || p.text == "->" ||
            p.text == "::") {
          name = p.text + name;
          --k;
        } else {
          break;
        }
      }
      for (std::size_t h = held.size(); h > 0; --h) {
        if (held[h - 1].name == name && held[h - 1].manual) {
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(h - 1));
          break;
        }
      }
    }
  }

  std::set<std::string> reported;
  for (const auto& [pair, line] : pairs) {
    const auto reverse = pairs.find({pair.second, pair.first});
    if (reverse == pairs.end()) continue;
    std::string a = pair.first;
    std::string b = pair.second;
    if (b < a) std::swap(a, b);
    const std::string detail = a + "<->" + b;
    if (!reported.insert(detail).second) continue;
    Finding f;
    f.file = rel;
    f.line = std::max(line, reverse->second);
    f.rule = "lock-order";
    f.severity = rule_severity("lock-order");
    f.message = "mutexes '" + a + "' and '" + b +
                "' are acquired in both orders in this translation unit "
                "(line " + std::to_string(std::min(line, reverse->second)) +
                " vs line " + std::to_string(std::max(line, reverse->second)) +
                "); pick one order or use std::scoped_lock(a, b)";
    f.detail = detail;
    out.push_back(std::move(f));
  }
}

}  // namespace

void run_concurrency_passes(const LexedFile& file, const std::string& rel,
                            std::vector<Finding>& out) {
  capture_escape_pass(file, rel, out);
  mutable_global_pass(file, rel, out);
  lock_order_pass(file, rel, out);
}

}  // namespace bf::sa
