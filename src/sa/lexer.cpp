#include "sa/lexer.hpp"

#include <cctype>
#include <cstddef>
#include <utility>

namespace bf::sa {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// True when the identifier `id` is a valid encoding prefix for a string
/// literal ("", u8, u, U, L) optionally followed by R for raw strings.
bool is_raw_prefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

bool is_string_prefix(const std::string& id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

class Lexer {
 public:
  Lexer(std::string path, std::string src) {
    out_.path = std::move(path);
    out_.src = std::move(src);
  }

  LexedFile run() {
    const std::string& s = out_.src;
    while (pos_ < s.size()) {
      const char c = s[pos_];
      if (c == '\n') {
        advance_newline();
        continue;
      }
      if (c == '\\' && pos_ + 1 < s.size() && s[pos_ + 1] == '\n') {
        // Phase-2 line splice outside any literal: skip, keep counting
        // physical lines so reported positions match the editor.
        pos_ += 2;
        ++line_;
        col_ = 1;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance(1);
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '"') {
        lex_string(/*prefix=*/"");
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident_or_prefixed_literal();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    out_.line_count = line_;
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < out_.src.size() ? out_.src[pos_ + ahead] : '\0';
  }

  void advance(std::size_t n) {
    pos_ += n;
    col_ += static_cast<int>(n);
  }

  void advance_newline() {
    ++pos_;
    ++line_;
    col_ = 1;
    at_line_start_ = true;
  }

  void push_token(TokKind kind, std::string text, bool raw = false) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.col = col_;
    t.raw = raw;
    t.at_line_start = at_line_start_;
    at_line_start_ = false;
    out_.tokens.push_back(std::move(t));
  }

  /// Consume characters [pos_, pos_+n) into `sink`, tracking newlines so
  /// multi-line literals/comments keep positions accurate.
  void consume_into(std::string& sink, std::size_t n) {
    for (std::size_t k = 0; k < n && pos_ < out_.src.size(); ++k) {
      const char c = out_.src[pos_];
      sink.push_back(c);
      ++pos_;
      if (c == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
    }
  }

  void lex_line_comment() {
    Comment cm;
    cm.line = line_;
    const std::string& s = out_.src;
    std::string text;
    // A line comment ends at the first newline NOT preceded by a
    // backslash line-splice: `// foo \` continues onto the next line.
    while (pos_ < s.size()) {
      if (s[pos_] == '\\' && pos_ + 1 < s.size() && s[pos_ + 1] == '\n') {
        consume_into(text, 2);  // splice: comment continues
        continue;
      }
      if (s[pos_] == '\n') break;
      consume_into(text, 1);
    }
    cm.text = std::move(text);
    cm.end_line = line_;
    out_.comments.push_back(std::move(cm));
    at_line_start_ = false;
  }

  void lex_block_comment() {
    Comment cm;
    cm.line = line_;
    const std::string& s = out_.src;
    std::string text;
    consume_into(text, 2);  // "/*"
    while (pos_ < s.size()) {
      if (s[pos_] == '*' && peek(1) == '/') {
        consume_into(text, 2);
        break;
      }
      consume_into(text, 1);
    }
    cm.text = std::move(text);
    cm.end_line = line_;
    out_.comments.push_back(std::move(cm));
    at_line_start_ = false;
  }

  void lex_string(const std::string& prefix) {
    const std::string& s = out_.src;
    std::string text = prefix;
    const int start_line = line_;
    const int start_col = col_ - static_cast<int>(prefix.size());
    const bool was_line_start = at_line_start_ && prefix.empty();
    consume_into(text, 1);  // opening quote
    while (pos_ < s.size()) {
      const char c = s[pos_];
      if (c == '\\') {
        consume_into(text, 2);  // escape (incl. \" and \<newline> splice)
        continue;
      }
      if (c == '"') {
        consume_into(text, 1);
        break;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      consume_into(text, 1);
    }
    Token t;
    t.kind = TokKind::kString;
    t.text = std::move(text);
    t.line = start_line;
    t.col = start_col;
    t.at_line_start = was_line_start || pending_line_start_;
    pending_line_start_ = false;
    at_line_start_ = false;
    out_.tokens.push_back(std::move(t));
  }

  /// R"delim( ... )delim" — no escape processing inside; embedded quotes
  /// and backslashes are literal until the exact )delim" terminator.
  void lex_raw_string(const std::string& prefix) {
    const std::string& s = out_.src;
    std::string text = prefix;
    const int start_line = line_;
    const int start_col = col_ - static_cast<int>(prefix.size());
    consume_into(text, 1);  // opening quote
    std::string delim;
    while (pos_ < s.size() && s[pos_] != '(' && delim.size() < 16) {
      delim.push_back(s[pos_]);
      consume_into(text, 1);
    }
    if (pos_ < s.size() && s[pos_] == '(') consume_into(text, 1);
    const std::string terminator = ")" + delim + "\"";
    while (pos_ < s.size()) {
      if (s[pos_] == ')' &&
          s.compare(pos_, terminator.size(), terminator) == 0) {
        consume_into(text, terminator.size());
        break;
      }
      consume_into(text, 1);
    }
    Token t;
    t.kind = TokKind::kString;
    t.text = std::move(text);
    t.line = start_line;
    t.col = start_col;
    t.raw = true;
    t.at_line_start = pending_line_start_;
    pending_line_start_ = false;
    at_line_start_ = false;
    out_.tokens.push_back(std::move(t));
  }

  void lex_char() {
    const std::string& s = out_.src;
    std::string text;
    const int start_line = line_;
    const int start_col = col_;
    consume_into(text, 1);  // opening quote
    while (pos_ < s.size()) {
      const char c = s[pos_];
      if (c == '\\') {
        consume_into(text, 2);  // '\'' and '\\' stay inside the literal
        continue;
      }
      if (c == '\'') {
        consume_into(text, 1);
        break;
      }
      if (c == '\n') break;  // unterminated
      consume_into(text, 1);
    }
    Token t;
    t.kind = TokKind::kChar;
    t.text = std::move(text);
    t.line = start_line;
    t.col = start_col;
    t.at_line_start = at_line_start_;
    at_line_start_ = false;
    out_.tokens.push_back(std::move(t));
  }

  void lex_ident_or_prefixed_literal() {
    const std::string& s = out_.src;
    std::size_t j = pos_;
    while (j < s.size() && is_ident_char(s[j])) ++j;
    std::string id = s.substr(pos_, j - pos_);
    // u8R"(...)" / R"(...)" raw strings and L"..." prefixed strings: the
    // prefix must be immediately followed by the quote.
    if (j < s.size() && s[j] == '"') {
      if (is_raw_prefix(id)) {
        pending_line_start_ = at_line_start_;
        advance(id.size());
        lex_raw_string(id);
        return;
      }
      if (is_string_prefix(id)) {
        pending_line_start_ = at_line_start_;
        advance(id.size());
        lex_string(id);
        return;
      }
    }
    if (j < s.size() && s[j] == '\'' &&
        (id == "u8" || id == "u" || id == "U" || id == "L")) {
      advance(id.size());
      lex_char();
      return;
    }
    const std::size_t len = j - pos_;
    push_token(TokKind::kIdent, std::move(id));
    advance(len);
  }

  /// Greedily merge multi-character punctuators (::, ->, <<=, ...), so
  /// passes can match them as single tokens instead of re-assembling
  /// character pairs.
  void lex_punct() {
    static const char* kThree[] = {"<<=", ">>=", "->*", "..."};
    static const char* kTwo[] = {"::", "->", ".*", "<<", ">>", "<=", ">=",
                                 "==", "!=", "&&", "||", "+=", "-=", "*=",
                                 "/=", "%=", "&=", "|=", "^=", "++", "--",
                                 "##"};
    const std::string& s = out_.src;
    for (const char* op : kThree) {
      if (s.compare(pos_, 3, op) == 0) {
        push_token(TokKind::kPunct, op);
        advance(3);
        return;
      }
    }
    for (const char* op : kTwo) {
      if (s.compare(pos_, 2, op) == 0) {
        push_token(TokKind::kPunct, op);
        advance(2);
        return;
      }
    }
    push_token(TokKind::kPunct, std::string(1, s[pos_]));
    advance(1);
  }

  void lex_number() {
    const std::string& s = out_.src;
    std::size_t j = pos_;
    // pp-number: digits, idents chars, '.', exponent signs after
    // e/E/p/P, and C++14 digit separators (1'000'000).
    while (j < s.size()) {
      const char c = s[j];
      if (is_ident_char(c) || c == '.') {
        ++j;
        continue;
      }
      if ((c == '+' || c == '-') && j > pos_ &&
          (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
           s[j - 1] == 'P')) {
        ++j;
        continue;
      }
      if (c == '\'' && j + 1 < s.size() && is_ident_char(s[j + 1]) &&
          j > pos_) {
        j += 2;  // digit separator
        continue;
      }
      break;
    }
    push_token(TokKind::kNumber, s.substr(pos_, j - pos_));
    advance(j - pos_);
  }

  LexedFile out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  bool pending_line_start_ = false;
};

}  // namespace

LexedFile lex(std::string path, std::string src) {
  return Lexer(std::move(path), std::move(src)).run();
}

bool is_float_literal(const std::string& t) {
  if (t.size() < 2) return false;
  if (t.back() != 'f' && t.back() != 'F') return false;
  if (t.size() > 2 && (t[1] == 'x' || t[1] == 'X')) return false;  // hex
  for (const char c : t) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return false;
}

}  // namespace bf::sa
