#include "sa/findings.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace bf::sa {
namespace {

/// Minimal JSON string escaping (the sa layer sits below serve, so it
/// cannot reuse bf::serve::json_escape without inverting the DAG).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string finding_key(const Finding& f) {
  return f.rule + "|" + f.file + "|" + f.detail;
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

std::string render_text(const std::vector<Finding>& findings,
                        const ReportStats& stats) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  if (findings.empty()) {
    os << "bf_lint: clean (" << stats.files_scanned << " files scanned, "
       << stats.suppressed << " suppressed, " << stats.baselined
       << " baselined)\n";
  } else {
    os << "bf_lint: " << findings.size() << " violation(s) ("
       << stats.files_scanned << " files scanned, " << stats.suppressed
       << " suppressed, " << stats.baselined << " baselined)\n";
  }
  return os.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        const ReportStats& stats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"bf_lint\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"files_scanned\": " << stats.files_scanned << ",\n";
  os << "  \"suppressed\": " << stats.suppressed << ",\n";
  os << "  \"baselined\": " << stats.baselined << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << escape(f.file) << "\", "
       << "\"line\": " << f.line << ", "
       << "\"rule\": \"" << escape(f.rule) << "\", "
       << "\"severity\": \"" << severity_name(f.severity) << "\", "
       << "\"key\": \"" << escape(finding_key(f)) << "\", "
       << "\"message\": \"" << escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace bf::sa
