// bf::sa concurrency passes — the guardrails for code that runs off the
// calling thread.
//
//   capture-escape   a lambda with a by-reference capture ([&], [&x])
//                    passed to ThreadPool::submit or a std::thread
//                    constructor. Unlike parallel_for (which blocks
//                    until completion), submit/thread let the lambda
//                    outlive the enclosing scope, so every by-ref
//                    capture is a potential use-after-return and must
//                    carry an audited bf-lint: allow(capture-escape).
//   mutable-global   a non-const namespace-scope variable that is not a
//                    synchronisation primitive (mutex/atomic/once_flag/
//                    condition_variable). Shared mutable state must be
//                    wrapped in a locked accessor or made const.
//   lock-order       two std::mutex objects acquired in both orders in
//                    the same translation unit — the classic ABBA
//                    deadlock. Acquisition order per mutex pair must be
//                    consistent (or use std::scoped_lock(a, b)).
#pragma once

#include <string>
#include <vector>

#include "sa/findings.hpp"
#include "sa/lexer.hpp"

namespace bf::sa {

void run_concurrency_passes(const LexedFile& file,
                            const std::string& repo_relative,
                            std::vector<Finding>& out);

}  // namespace bf::sa
