// bf::sa findings — the machine-readable output of every analysis pass.
//
// A Finding carries a position for humans (file:line) and a stable
// `key` for machines: `rule|file|detail`, deliberately excluding the
// line number so committed baselines survive unrelated edits. Findings
// render as the classic `file:line: [rule] message` text or as a JSON
// document CI can archive and diff (schema in docs/static_analysis.md).
#pragma once

#include <string>
#include <vector>

namespace bf::sa {

enum class Severity { kError, kWarning };

const char* severity_name(Severity s);

struct Finding {
  std::string file;     // repo-relative, '/'-separated
  int line = 0;         // 1-based; 0 for whole-file findings
  std::string rule;     // stable rule id, e.g. "layer-dag"
  Severity severity = Severity::kError;
  std::string message;  // human explanation incl. the fix direction
  std::string detail;   // rule-specific stable discriminator (may be "")
};

/// `rule|file|detail` — the identity used by baseline matching.
std::string finding_key(const Finding& f);

/// Order findings for stable output: file, then line, then rule.
void sort_findings(std::vector<Finding>& findings);

struct ReportStats {
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  // findings silenced by bf-lint: allow()
  std::size_t baselined = 0;   // findings matched by the baseline file
};

/// One text line per finding plus a summary trailer.
std::string render_text(const std::vector<Finding>& findings,
                        const ReportStats& stats);

/// Full JSON document: tool/version header, stats, findings array.
std::string render_json(const std::vector<Finding>& findings,
                        const ReportStats& stats);

}  // namespace bf::sa
