// bf::sa analyzer — the orchestrator every driver (bf_lint, tests, CI)
// calls.
//
// analyze() walks the requested roots, lexes every .hpp/.cpp once, runs
// the three pass families (token rules, include graph, concurrency)
// over the shared token streams, applies in-source suppressions
// (`// bf-lint: allow(rule)` — with accounting: a suppression that
// silences nothing is itself a finding) and the committed baseline,
// and returns the surviving findings plus scan statistics.
#pragma once

#include <string>
#include <vector>

#include "sa/findings.hpp"

namespace bf::sa {

struct AnalyzerOptions {
  /// Directories (scanned recursively for .hpp/.cpp) or single files.
  std::vector<std::string> roots;
  /// Paths to skip: a file or directory is excluded when its normalized
  /// absolute path starts with one of these (also normalized).
  std::vector<std::string> excludes;
  /// Baseline file of grandfathered findings; "" disables baselining.
  std::string baseline_path;
  /// Root for repo-relative paths in findings and baseline keys; ""
  /// derives the deepest common ancestor of `roots`.
  std::string repo_root;
};

struct AnalysisReport {
  std::vector<Finding> findings;
  ReportStats stats;
};

/// Run the full analysis. Throws bf::Error when a root does not exist
/// or the baseline file cannot be read.
AnalysisReport analyze(const AnalyzerOptions& options);

}  // namespace bf::sa
