#include "gpusim/cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bf::gpusim {

Cache::Cache(std::int64_t size_bytes, int line_bytes, int assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  BF_CHECK_MSG(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
               "cache line size must be a power of two");
  BF_CHECK_MSG(assoc >= 1, "associativity must be >= 1");
  const std::int64_t lines = size_bytes / line_bytes;
  sets_ = static_cast<std::size_t>(std::max<std::int64_t>(0, lines / assoc));
  ways_.assign(sets_ * static_cast<std::size_t>(assoc_), Way{});
}

std::size_t Cache::set_index(std::uint64_t addr) const {
  return static_cast<std::size_t>(
      (addr / static_cast<std::uint64_t>(line_bytes_)) % sets_);
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const {
  return addr / static_cast<std::uint64_t>(line_bytes_) / sets_;
}

Cache::AccessResult Cache::access(std::uint64_t addr, bool write) {
  AccessResult out;
  if (sets_ == 0) {
    ++stats_.misses;
    return out;  // degenerate cache: always miss, nothing to evict
  }
  const std::size_t base = set_index(addr) * static_cast<std::size_t>(assoc_);
  const std::uint64_t tag = tag_of(addr);
  ++stamp_;

  for (std::size_t w = base; w < base + static_cast<std::size_t>(assoc_);
       ++w) {
    Way& way = ways_[w];
    if (way.valid && way.tag == tag) {
      way.lru = stamp_;
      way.dirty = way.dirty || write;
      ++stats_.hits;
      out.hit = true;
      return out;
    }
  }
  // Miss: pick a victim — an invalid way if available, else the LRU way.
  std::size_t victim = base;
  for (std::size_t w = base; w < base + static_cast<std::size_t>(assoc_);
       ++w) {
    if (!ways_[w].valid) {
      victim = w;
      break;
    }
    if (ways_[w].lru < ways_[victim].lru) victim = w;
  }

  ++stats_.misses;
  Way& way = ways_[victim];
  if (way.valid && way.dirty) {
    ++stats_.dirty_evictions;
    out.writeback = true;
  }
  way.valid = true;
  way.tag = tag;
  way.lru = stamp_;
  way.dirty = write;
  return out;
}

bool Cache::probe(std::uint64_t addr) const {
  if (sets_ == 0) return false;
  const std::size_t base = set_index(addr) * static_cast<std::size_t>(assoc_);
  const std::uint64_t tag = tag_of(addr);
  for (std::size_t w = base; w < base + static_cast<std::size_t>(assoc_);
       ++w) {
    if (ways_[w].valid && ways_[w].tag == tag) return true;
  }
  return false;
}

std::uint64_t Cache::flush_dirty() {
  std::uint64_t n = 0;
  for (auto& way : ways_) {
    if (way.valid && way.dirty) {
      way.dirty = false;
      ++n;
    }
  }
  return n;
}

void Cache::reset() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  stats_ = CacheStats{};
  stamp_ = 0;
}

}  // namespace bf::gpusim
