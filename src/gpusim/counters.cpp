#include "gpusim/counters.hpp"

#include "common/error.hpp"

namespace bf::gpusim {

const char* event_name(Event e) {
  switch (e) {
    case Event::kInstExecuted: return "inst_executed";
    case Event::kInstIssued: return "inst_issued";
    case Event::kThreadInstExecuted: return "thread_inst_executed";
    case Event::kGldRequest: return "gld_request";
    case Event::kGstRequest: return "gst_request";
    case Event::kL1GlobalLoadHit: return "l1_global_load_hit";
    case Event::kL1GlobalLoadMiss: return "l1_global_load_miss";
    case Event::kGlobalLoadTransaction: return "global_load_transaction";
    case Event::kGlobalStoreTransaction: return "global_store_transaction";
    case Event::kL2ReadTransactions: return "l2_read_transactions";
    case Event::kL2WriteTransactions: return "l2_write_transactions";
    case Event::kL2ReadHit: return "l2_read_hit";
    case Event::kL2ReadMiss: return "l2_read_miss";
    case Event::kSharedLoad: return "shared_load";
    case Event::kSharedStore: return "shared_store";
    case Event::kSharedBankConflict: return "l1_shared_bank_conflict";
    case Event::kSharedLoadReplay: return "shared_load_replay";
    case Event::kSharedStoreReplay: return "shared_store_replay";
    case Event::kBranch: return "branch";
    case Event::kDivergentBranch: return "divergent_branch";
    case Event::kActiveCycles: return "active_cycles";
    case Event::kActiveWarpCycles: return "active_warp_cycles";
    case Event::kIssueSlotsTotal: return "issue_slots_total";
    case Event::kElapsedCycles: return "elapsed_cycles";
    case Event::kDramReadTransactions: return "dram_read_transactions";
    case Event::kDramWriteTransactions: return "dram_write_transactions";
    case Event::kGlobalLoadBytesRequested:
      return "global_load_bytes_requested";
    case Event::kGlobalStoreBytesRequested:
      return "global_store_bytes_requested";
    case Event::kFlopCount: return "flop_count";
    case Event::kCount: break;
  }
  BF_FAIL("invalid event");
}

void CounterSet::accumulate(const CounterSet& other) {
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    values_[i] += other.values_[i];
  }
}

void CounterSet::scale(double factor) {
  for (auto& v : values_) v *= factor;
}

std::vector<std::pair<std::string, double>> CounterSet::named() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(kNumEvents);
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    out.emplace_back(event_name(static_cast<Event>(i)), values_[i]);
  }
  return out;
}

}  // namespace bf::gpusim
