// Counter-based power estimation (paper §7 extension: "our method is not
// limited to predicting execution time - one could use other metrics of
// interest, such as power, as response variable").
//
// A simple activity-factor model in the tradition of Nagasaka et al. 2010:
// board power = idle + core-activity term (IPC-weighted) + unit terms for
// DRAM, L2 and shared-memory traffic. The coefficients are per-generation
// constants chosen to land in realistic board-power ranges; what matters
// for the statistical method is that power correlates mechanistically with
// the counters.
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"

namespace bf::gpusim {

struct PowerBreakdown {
  double idle_w = 0.0;
  double core_w = 0.0;
  double dram_w = 0.0;
  double l2_w = 0.0;
  double shared_w = 0.0;
  /// Average board power: idle + component demand, saturated at the
  /// board's TDP (the power limit real boards enforce by throttling).
  /// Components keep the unthrottled demand, so total_w <= their sum.
  double total_w = 0.0;
  double energy_j = 0.0;  ///< total power times elapsed time
};

/// Estimate average board power for a launch from its counters and time.
PowerBreakdown estimate_power(const ArchSpec& arch, const CounterSet& counters,
                              double time_ms);

}  // namespace bf::gpusim
