#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bf::gpusim {

OccupancyResult compute_occupancy(const ArchSpec& arch,
                                  const LaunchGeometry& geom) {
  const int threads = geom.block_size();
  BF_CHECK_MSG(threads >= 1, "empty thread block");
  BF_CHECK_MSG(threads <= arch.max_threads_per_block,
               "block of " << threads << " threads exceeds limit "
                           << arch.max_threads_per_block);
  const int warps_per_block = geom.warps_per_block(arch.warp_size);

  // Registers are allocated per warp, in full-warp granularity.
  const int regs_per_thread =
      std::min(geom.registers_per_thread, arch.max_registers_per_thread);
  const int regs_per_block = regs_per_thread * warps_per_block *
                             arch.warp_size;
  BF_CHECK_MSG(regs_per_block <= arch.registers_per_sm,
               "block needs " << regs_per_block << " registers, SM has "
                              << arch.registers_per_sm);
  BF_CHECK_MSG(geom.shared_mem_per_block <= arch.shared_mem_per_sm_bytes,
               "block needs " << geom.shared_mem_per_block
                              << " B shared memory, SM has "
                              << arch.shared_mem_per_sm_bytes);

  const int limit_blocks = arch.max_blocks_per_sm;
  const int limit_warps = arch.max_warps_per_sm / warps_per_block;
  const int limit_regs =
      regs_per_block > 0 ? arch.registers_per_sm / regs_per_block
                         : arch.max_blocks_per_sm;
  const int limit_shared =
      geom.shared_mem_per_block > 0
          ? arch.shared_mem_per_sm_bytes / geom.shared_mem_per_block
          : arch.max_blocks_per_sm;

  OccupancyResult out;
  out.blocks_per_sm = std::min({limit_blocks, limit_warps, limit_regs,
                                limit_shared});
  BF_CHECK_MSG(out.blocks_per_sm >= 1, "kernel cannot be resident at all");
  out.warps_per_sm = out.blocks_per_sm * warps_per_block;
  out.occupancy = static_cast<double>(out.warps_per_sm) /
                  static_cast<double>(arch.max_warps_per_sm);
  if (out.blocks_per_sm == limit_blocks) {
    out.limiter = "blocks";
  } else if (out.blocks_per_sm == limit_warps) {
    out.limiter = "warps";
  } else if (out.blocks_per_sm == limit_regs) {
    out.limiter = "registers";
  } else {
    out.limiter = "shared";
  }
  return out;
}

}  // namespace bf::gpusim
