// Raw hardware event accumulation.
//
// The engine increments these events as it executes warp instructions; the
// profiling layer later derives nvprof-style metrics (ipc, occupancy,
// throughputs, replay overheads) from them plus the elapsed time.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace bf::gpusim {

enum class Event : int {
  kInstExecuted = 0,     ///< warp instructions retired (no replays)
  kInstIssued,           ///< issue slots consumed (includes replays)
  kThreadInstExecuted,   ///< sum of active lanes over executed instructions
  kGldRequest,           ///< global load instructions, per warp
  kGstRequest,           ///< global store instructions, per warp
  kL1GlobalLoadHit,      ///< L1 lines hit by global loads (Fermi path)
  kL1GlobalLoadMiss,     ///< L1 lines missed by global loads
  kGlobalLoadTransaction,   ///< global load memory transactions
  kGlobalStoreTransaction,  ///< global store memory transactions
  kL2ReadTransactions,   ///< 32 B read transactions seen by L2
  kL2WriteTransactions,  ///< 32 B write transactions seen by L2
  kL2ReadHit,            ///< L2 line read hits
  kL2ReadMiss,           ///< L2 line read misses
  kSharedLoad,           ///< shared load instructions, per warp
  kSharedStore,          ///< shared store instructions, per warp
  kSharedBankConflict,   ///< replays due to shared bank conflicts (Fermi name)
  kSharedLoadReplay,     ///< load-side conflict replays (Kepler name)
  kSharedStoreReplay,    ///< store-side conflict replays (Kepler name)
  kBranch,               ///< branch instructions, per warp
  kDivergentBranch,      ///< branches that diverged
  kActiveCycles,         ///< sum over SMs of cycles with >= 1 resident warp
  kActiveWarpCycles,     ///< integral of resident warps over active cycles
  kIssueSlotsTotal,      ///< scheduler issue slots available while active
  kElapsedCycles,        ///< device wall-clock cycles for the launch
  kDramReadTransactions,   ///< 32 B DRAM reads
  kDramWriteTransactions,  ///< 32 B DRAM writes
  kGlobalLoadBytesRequested,   ///< bytes the kernel asked to load
  kGlobalStoreBytesRequested,  ///< bytes the kernel asked to store
  kFlopCount,            ///< single-precision lane-operations executed
  kCount
};

constexpr std::size_t kNumEvents = static_cast<std::size_t>(Event::kCount);

/// Stable lowercase identifier for an event (used in CSV headers).
const char* event_name(Event e);

/// A fixed-size vector of event counts with named access.
class CounterSet {
 public:
  CounterSet() { values_.fill(0.0); }

  double get(Event e) const {
    return values_[static_cast<std::size_t>(e)];
  }
  void set(Event e, double v) { values_[static_cast<std::size_t>(e)] = v; }
  void add(Event e, double v) { values_[static_cast<std::size_t>(e)] += v; }

  /// Element-wise accumulate (multi-launch applications).
  void accumulate(const CounterSet& other);

  /// Multiply every event by `factor` (block-sampling extrapolation).
  void scale(double factor);

  /// (name, value) pairs for all events.
  std::vector<std::pair<std::string, double>> named() const;

 private:
  std::array<double, kNumEvents> values_;
};

}  // namespace bf::gpusim
