// The warp-level timing engine and device front end.
//
// Execution model (a deliberately simplified GPGPU-Sim):
//  * Thread blocks are distributed round-robin over SMs; each SM keeps up
//    to the occupancy limit of blocks resident and admits the next queued
//    block as one retires.
//  * Each SM steps a cycle loop. Warps are statically assigned to warp
//    schedulers; per cycle each free scheduler issues from its ready warps
//    (round-robin), up to dispatch_units_per_scheduler instructions.
//  * Arithmetic ops occupy the scheduler for the warp-wide issue cost and
//    stall the issuing warp for the dependence latency (back-to-back
//    instructions of one warp are assumed dependent; concurrency comes
//    from other warps — i.e. from occupancy, as on real hardware).
//  * Memory ops run through the coalescer; every transaction beyond the
//    first is an instruction replay that occupies an extra issue slot.
//    Loads probe L1 (Fermi global-load path) and a per-SM slice of L2;
//    the worst transaction's level determines the warp's stall latency.
//  * Shared-memory ops serialise over bank-conflict passes; each extra
//    pass is a replay (counted in the *_replay / bank-conflict events).
//  * __syncthreads() parks warps until every live warp of the block
//    arrives.
//
// Large grids are sampled: a representative subset of blocks is simulated
// and every extensive counter plus the elapsed time is scaled by
// total/sampled. A device-level DRAM bandwidth roofline is applied on top
// of the latency model, since per-SM simulation cannot model global
// bandwidth contention directly.
#pragma once

#include <cstdint>
#include <functional>

#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"

namespace bf::gpusim {

/// Debug hook: invoked on the final counters of every Device::run when
/// counter validation is enabled (see RunOptions::validate_counters). The
/// engine cannot depend on bf::check, so the check library installs its
/// invariant validator here (check::install_engine_validator). Throwing
/// from the validator aborts the run with the violation report.
using CounterValidator =
    std::function<void(const CounterSet&, const ArchSpec&)>;

/// Install (or, with nullptr, remove) the process-wide validator. Not
/// thread-safe against concurrent Device::run calls; install once at
/// startup.
void set_counter_validator(CounterValidator validator);

/// The currently installed validator (empty when none).
const CounterValidator& counter_validator();

struct RunOptions {
  /// Upper bound on simulated blocks (0 = simulate the full grid). The
  /// engine rounds up so every SM receives at least two full occupancy
  /// waves when the grid is that large.
  int max_sampled_blocks = 128;
  /// Run the installed counter validator on the final counters. Also
  /// forced on for every run when BF_CHECK_COUNTERS=1 is set in the
  /// environment (the debug flag for existing callers).
  bool validate_counters = false;
};

struct RunResult {
  CounterSet counters;
  double time_ms = 0.0;
  OccupancyResult occupancy;
  std::int64_t blocks_total = 0;
  std::int64_t blocks_simulated = 0;
  double sample_scale = 1.0;
  /// True when the DRAM bandwidth roofline, not the latency model,
  /// determined the final time.
  bool bandwidth_bound = false;
};

class Device {
 public:
  explicit Device(ArchSpec arch) : arch_(std::move(arch)) {}

  const ArchSpec& arch() const { return arch_; }

  /// Execute one kernel launch and return its counters and elapsed time.
  RunResult run(const TraceKernel& kernel, const RunOptions& opts = {}) const;

 private:
  ArchSpec arch_;
};

/// Accumulate launch results into an application-level aggregate: counters
/// and times add up (the paper treats NW's many launches this way).
struct AggregateResult {
  CounterSet counters;
  double time_ms = 0.0;
  double occupancy_weighted = 0.0;  ///< time-weighted achieved residency
  std::int64_t launches = 0;

  void add(const RunResult& r, double weight = 1.0);
};

}  // namespace bf::gpusim
