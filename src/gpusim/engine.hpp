// The warp-level timing engine and device front end.
//
// Execution model (a deliberately simplified GPGPU-Sim):
//  * Thread blocks are distributed round-robin over SMs; each SM keeps up
//    to the occupancy limit of blocks resident and admits the next queued
//    block as one retires.
//  * Each SM steps a cycle loop. Warps are statically assigned to warp
//    schedulers; per cycle each free scheduler issues from its ready warps
//    (round-robin), up to dispatch_units_per_scheduler instructions.
//  * Arithmetic ops occupy the scheduler for the warp-wide issue cost and
//    stall the issuing warp for the dependence latency (back-to-back
//    instructions of one warp are assumed dependent; concurrency comes
//    from other warps — i.e. from occupancy, as on real hardware).
//  * Memory ops run through the coalescer; every transaction beyond the
//    first is an instruction replay that occupies an extra issue slot.
//    Loads probe L1 (Fermi global-load path) and a per-SM slice of L2;
//    the worst transaction's level determines the warp's stall latency.
//  * Shared-memory ops serialise over bank-conflict passes; each extra
//    pass is a replay (counted in the *_replay / bank-conflict events).
//  * __syncthreads() parks warps until every live warp of the block
//    arrives.
//
// Large grids are sampled: a representative subset of blocks is simulated
// and every extensive counter plus the elapsed time is scaled by
// total/sampled. A device-level DRAM bandwidth roofline is applied on top
// of the latency model, since per-SM simulation cannot model global
// bandwidth contention directly.
#pragma once

#include <cstdint>

#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"

namespace bf::gpusim {

struct RunOptions {
  /// Upper bound on simulated blocks (0 = simulate the full grid). The
  /// engine rounds up so every SM receives at least two full occupancy
  /// waves when the grid is that large.
  int max_sampled_blocks = 128;
};

struct RunResult {
  CounterSet counters;
  double time_ms = 0.0;
  OccupancyResult occupancy;
  std::int64_t blocks_total = 0;
  std::int64_t blocks_simulated = 0;
  double sample_scale = 1.0;
  /// True when the DRAM bandwidth roofline, not the latency model,
  /// determined the final time.
  bool bandwidth_bound = false;
};

class Device {
 public:
  explicit Device(ArchSpec arch) : arch_(std::move(arch)) {}

  const ArchSpec& arch() const { return arch_; }

  /// Execute one kernel launch and return its counters and elapsed time.
  RunResult run(const TraceKernel& kernel, const RunOptions& opts = {}) const;

 private:
  ArchSpec arch_;
};

/// Accumulate launch results into an application-level aggregate: counters
/// and times add up (the paper treats NW's many launches this way).
struct AggregateResult {
  CounterSet counters;
  double time_ms = 0.0;
  double occupancy_weighted = 0.0;  ///< time-weighted achieved residency
  std::int64_t launches = 0;

  void add(const RunResult& r, double weight = 1.0);
};

}  // namespace bf::gpusim
