// Global-memory coalescing: map a warp's per-lane addresses onto memory
// transactions of a fixed segment size (128 B when served by L1 on Fermi,
// 32 B segments when served by L2 on Kepler).
//
// The transaction count per request is exactly the signal the paper's §3.2
// reads from counters: "if the number of memory requests … is significantly
// lower than the number of actual memory transactions … this may indicate
// issues about memory access patterns."
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gpusim/trace.hpp"

namespace bf::gpusim {

/// Distinct aligned segments touched by the active lanes of one access.
/// Returns the segment base addresses (each aligned to segment_bytes).
/// A fully-coalesced 4-byte access of 32 consecutive lanes yields one
/// 128-byte segment or four 32-byte segments.
std::vector<std::uint64_t> coalesce(const WarpInstr& instr,
                                    int segment_bytes);

/// Just the transaction count (cheaper when the addresses are not needed).
int coalesced_transaction_count(const WarpInstr& instr, int segment_bytes);

}  // namespace bf::gpusim
