// Warp-level instruction traces: the contract between kernels and the
// timing engine.
//
// A kernel describes, for each warp of each thread block, the sequence of
// warp-wide instructions it executes, including per-lane byte addresses for
// memory operations and the active-thread mask (divergent branches appear
// as instructions with partial masks, exactly as a real SIMT pipeline
// serialises them).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bf::gpusim {

enum class Op : std::uint8_t {
  kIAlu,      ///< integer add/mul/shift/compare
  kFAlu,      ///< single-precision add/mul/fma
  kSfu,       ///< special-function (rsqrt, exp, ...)
  kLdGlobal,  ///< global memory load
  kStGlobal,  ///< global memory store
  kLdShared,  ///< shared memory load
  kStShared,  ///< shared memory store
  kAtomicShared,  ///< atomic read-modify-write on shared memory
  kBranch,    ///< branch instruction
  kSync,      ///< __syncthreads() barrier
};

inline bool is_memory_op(Op op) {
  return op == Op::kLdGlobal || op == Op::kStGlobal || op == Op::kLdShared ||
         op == Op::kStShared || op == Op::kAtomicShared;
}

inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// One warp-wide instruction. For memory ops, addr[lane] holds the byte
/// address accessed by each active lane (inactive lanes are ignored).
struct WarpInstr {
  Op op = Op::kIAlu;
  std::uint32_t mask = kFullMask;
  std::uint8_t access_bytes = 4;  ///< per-lane access width for memory ops
  bool divergent = false;         ///< for kBranch: did the warp diverge?
  std::array<std::uint32_t, 32> addr{};
};

using WarpTrace = std::vector<WarpInstr>;

/// Builder through which kernels emit a warp's instructions.
class TraceSink {
 public:
  explicit TraceSink(WarpTrace& out) : out_(out) {}

  /// `count` back-to-back arithmetic instructions under `mask`.
  void alu(std::uint32_t mask, int count = 1, Op op = Op::kFAlu) {
    BF_CHECK(op == Op::kIAlu || op == Op::kFAlu || op == Op::kSfu);
    WarpInstr in;
    in.op = op;
    in.mask = mask;
    for (int i = 0; i < count; ++i) out_.push_back(in);
  }

  void global_load(std::uint32_t mask, const std::array<std::uint32_t, 32>& addr,
                   std::uint8_t access_bytes = 4) {
    push_mem(Op::kLdGlobal, mask, addr, access_bytes);
  }
  void global_store(std::uint32_t mask,
                    const std::array<std::uint32_t, 32>& addr,
                    std::uint8_t access_bytes = 4) {
    push_mem(Op::kStGlobal, mask, addr, access_bytes);
  }
  void shared_load(std::uint32_t mask,
                   const std::array<std::uint32_t, 32>& addr,
                   std::uint8_t access_bytes = 4) {
    push_mem(Op::kLdShared, mask, addr, access_bytes);
  }
  void shared_store(std::uint32_t mask,
                    const std::array<std::uint32_t, 32>& addr,
                    std::uint8_t access_bytes = 4) {
    push_mem(Op::kStShared, mask, addr, access_bytes);
  }

  /// Atomic read-modify-write on shared memory (atomicAdd & friends).
  /// Unlike plain accesses, lanes hitting the SAME address serialise.
  void shared_atomic(std::uint32_t mask,
                     const std::array<std::uint32_t, 32>& addr,
                     std::uint8_t access_bytes = 4) {
    push_mem(Op::kAtomicShared, mask, addr, access_bytes);
  }

  void branch(std::uint32_t mask, bool divergent) {
    WarpInstr in;
    in.op = Op::kBranch;
    in.mask = mask;
    in.divergent = divergent;
    out_.push_back(in);
  }

  void sync() {
    WarpInstr in;
    in.op = Op::kSync;
    out_.push_back(in);
  }

 private:
  void push_mem(Op op, std::uint32_t mask,
                const std::array<std::uint32_t, 32>& addr,
                std::uint8_t access_bytes) {
    BF_CHECK_MSG(mask != 0, "memory op with empty mask");
    WarpInstr in;
    in.op = op;
    in.mask = mask;
    in.access_bytes = access_bytes;
    in.addr = addr;
    out_.push_back(in);
  }

  WarpTrace& out_;
};

/// Kernel launch shape (2D grid of 2D blocks, flattened internally).
struct LaunchGeometry {
  int grid_x = 1;
  int grid_y = 1;
  int block_x = 1;
  int block_y = 1;
  int shared_mem_per_block = 0;   ///< bytes of static+dynamic shared memory
  int registers_per_thread = 20;

  int num_blocks() const { return grid_x * grid_y; }
  int block_size() const { return block_x * block_y; }
  int warps_per_block(int warp_size = 32) const {
    return (block_size() + warp_size - 1) / warp_size;
  }
};

/// The interface kernels implement: given a flat block index and a warp
/// index within the block, emit that warp's trace.
class TraceKernel {
 public:
  virtual ~TraceKernel() = default;
  virtual std::string name() const = 0;
  virtual LaunchGeometry geometry() const = 0;
  virtual void emit_warp(int block, int warp, TraceSink& sink) const = 0;
};

/// Lane mask helpers.
inline std::uint32_t mask_first_lanes(int n) {
  BF_CHECK(n >= 0 && n <= 32);
  return n == 32 ? kFullMask : ((1u << n) - 1u);
}

inline int popcount_mask(std::uint32_t mask) {
  return __builtin_popcount(mask);
}

}  // namespace bf::gpusim
