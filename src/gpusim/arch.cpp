#include "gpusim/arch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace bf::gpusim {

int ArchSpec::arith_issue_cycles() const {
  const int cores_per_sched =
      std::max(1, cores_per_sm / std::max(1, warp_schedulers_per_sm));
  return std::max(1, warp_size / cores_per_sched);
}

int ArchSpec::l2_slice_bytes() const {
  return l2_size_kb * 1024 / std::max(1, sm_count);
}

ArchSpec gtx580() {
  ArchSpec a;
  a.name = "gtx580";
  a.generation = Generation::kFermi;
  a.warp_schedulers_per_sm = 2;
  a.clock_ghz = 1.544;  // shader clock of the GTX580
  a.sm_count = 16;
  a.cores_per_sm = 32;
  a.mem_bandwidth_gbs = 192.4;
  a.max_registers_per_thread = 63;
  a.l2_size_kb = 768;
  a.idle_w = 45.0;
  a.tdp_w = 244.0;  // GTX 580 board power limit
  a.dispatch_units_per_scheduler = 1;
  a.max_warps_per_sm = 48;
  a.max_blocks_per_sm = 8;
  a.registers_per_sm = 32 * 1024;
  a.shared_mem_per_sm_bytes = 48 * 1024;
  a.l1_size_kb = 16;
  a.l1_caches_global_loads = true;
  a.alu_dep_latency = 18;
  a.l2_latency = 190;
  a.dram_latency = 440;
  return a;
}

ArchSpec gtx480() {
  // The GTX480 column of the paper's Table 2.
  ArchSpec a = gtx580();
  a.name = "gtx480";
  a.clock_ghz = 1.4;
  a.sm_count = 15;
  a.mem_bandwidth_gbs = 177.4;
  a.tdp_w = 250.0;  // GF100 runs hotter than GF110
  return a;
}

ArchSpec kepler_k20m() {
  ArchSpec a;
  a.name = "k20m";
  a.generation = Generation::kKepler;
  a.warp_schedulers_per_sm = 4;
  a.clock_ghz = 0.706;
  a.sm_count = 13;
  a.cores_per_sm = 192;
  a.mem_bandwidth_gbs = 208.0;
  a.max_registers_per_thread = 255;
  a.l2_size_kb = 1280;
  a.idle_w = 40.0;
  a.tdp_w = 225.0;  // K20m board power limit
  a.dispatch_units_per_scheduler = 2;
  a.max_warps_per_sm = 64;
  a.max_blocks_per_sm = 16;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm_bytes = 48 * 1024;
  a.l1_size_kb = 16;
  a.l1_caches_global_loads = false;  // CC 3.5: global loads served by L2
  a.alu_dep_latency = 10;
  a.sfu_dep_latency = 18;
  a.shared_latency = 28;
  a.l1_latency = 32;
  a.l2_latency = 200;
  a.dram_latency = 470;
  return a;
}

ArchSpec kepler_k40() {
  ArchSpec a = kepler_k20m();
  a.name = "k40";
  a.clock_ghz = 0.745;
  a.sm_count = 15;
  a.mem_bandwidth_gbs = 288.0;
  a.l2_size_kb = 1536;
  a.tdp_w = 235.0;  // K40 board power limit
  return a;
}

const std::vector<ArchSpec>& arch_registry() {
  static const std::vector<ArchSpec> archs = {gtx580(), gtx480(),
                                              kepler_k20m(), kepler_k40()};
  return archs;
}

const ArchSpec& arch_by_name(const std::string& name) {
  std::vector<std::string> known;
  for (const auto& a : arch_registry()) {
    if (a.name == name) return a;
    known.push_back(a.name);
  }
  BF_FAIL("unknown architecture: '" << name << "' (valid: "
                                    << join(known, ", ") << ")");
}

std::vector<std::pair<std::string, double>> machine_characteristics(
    const ArchSpec& arch) {
  return {
      {"wsched", static_cast<double>(arch.warp_schedulers_per_sm)},
      {"freq", arch.clock_ghz},
      {"smp", static_cast<double>(arch.sm_count)},
      {"rco", static_cast<double>(arch.cores_per_sm)},
      {"mbw", arch.mem_bandwidth_gbs},
      {"regs", static_cast<double>(arch.max_registers_per_thread)},
      {"l2c", static_cast<double>(arch.l2_size_kb)},
  };
}

}  // namespace bf::gpusim
