#include "gpusim/coalescer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bf::gpusim {

std::vector<std::uint64_t> coalesce(const WarpInstr& instr,
                                    int segment_bytes) {
  BF_CHECK_MSG(segment_bytes > 0 && (segment_bytes & (segment_bytes - 1)) == 0,
               "segment size must be a power of two");
  BF_CHECK_MSG(is_memory_op(instr.op), "coalesce on non-memory instruction");
  const std::uint64_t seg_mask = ~static_cast<std::uint64_t>(segment_bytes - 1);

  // A lane access of `access_bytes` may straddle a segment boundary; cover
  // both ends. Gather distinct segment bases (warp width is 32, so a small
  // sort-unique beats a hash set).
  std::vector<std::uint64_t> segs;
  segs.reserve(32);
  for (int lane = 0; lane < 32; ++lane) {
    if (((instr.mask >> lane) & 1u) == 0) continue;
    const std::uint64_t first = instr.addr[static_cast<std::size_t>(lane)];
    const std::uint64_t last = first + instr.access_bytes - 1;
    segs.push_back(first & seg_mask);
    if ((last & seg_mask) != (first & seg_mask)) {
      segs.push_back(last & seg_mask);
    }
  }
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  return segs;
}

int coalesced_transaction_count(const WarpInstr& instr, int segment_bytes) {
  return static_cast<int>(coalesce(instr, segment_bytes).size());
}

}  // namespace bf::gpusim
