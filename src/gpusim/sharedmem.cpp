#include "gpusim/sharedmem.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace bf::gpusim {

int shared_access_passes(const WarpInstr& instr, const ArchSpec& arch) {
  BF_CHECK_MSG(instr.op == Op::kLdShared || instr.op == Op::kStShared,
               "shared_access_passes on non-shared instruction");
  const int banks = arch.shared_banks;
  const int width = arch.shared_bank_width_bytes;
  BF_CHECK(banks > 0 && banks <= 64 && width > 0);

  // Per bank, collect the distinct word addresses requested this access.
  // Warp width is 32 so linear small-vector scans are cheapest.
  std::array<std::array<std::uint32_t, 32>, 64> words{};
  std::array<int, 64> counts{};
  for (int lane = 0; lane < 32; ++lane) {
    if (((instr.mask >> lane) & 1u) == 0) continue;
    const std::uint32_t word =
        instr.addr[static_cast<std::size_t>(lane)] /
        static_cast<std::uint32_t>(width);
    const int bank = static_cast<int>(word % static_cast<std::uint32_t>(banks));
    auto& bank_words = words[static_cast<std::size_t>(bank)];
    auto& n = counts[static_cast<std::size_t>(bank)];
    bool seen = false;
    for (int i = 0; i < n; ++i) {
      if (bank_words[static_cast<std::size_t>(i)] == word) {
        seen = true;
        break;
      }
    }
    if (!seen) bank_words[static_cast<std::size_t>(n++)] = word;
  }

  int passes = 1;
  for (int b = 0; b < banks; ++b) {
    passes = std::max(passes, counts[static_cast<std::size_t>(b)]);
  }
  return passes;
}

int shared_atomic_passes(const WarpInstr& instr, const ArchSpec& arch) {
  BF_CHECK_MSG(instr.op == Op::kAtomicShared,
               "shared_atomic_passes on non-atomic instruction");
  const int banks = arch.shared_banks;
  const int width = arch.shared_bank_width_bytes;
  BF_CHECK(banks > 0 && banks <= 64 && width > 0);

  // Per bank, count ALL active lanes (duplicated addresses serialise too).
  std::array<int, 64> counts{};
  for (int lane = 0; lane < 32; ++lane) {
    if (((instr.mask >> lane) & 1u) == 0) continue;
    const std::uint32_t word =
        instr.addr[static_cast<std::size_t>(lane)] /
        static_cast<std::uint32_t>(width);
    const int bank = static_cast<int>(word % static_cast<std::uint32_t>(banks));
    ++counts[static_cast<std::size_t>(bank)];
  }
  int passes = 1;
  for (int b = 0; b < banks; ++b) {
    passes = std::max(passes, counts[static_cast<std::size_t>(b)]);
  }
  return passes;
}

}  // namespace bf::gpusim
