// Shared-memory bank-conflict model.
//
// Shared memory is divided into `banks` word-wide banks (32 x 4 B on both
// Fermi and Kepler in 4-byte mode). A warp access that maps two or more
// *distinct* words to the same bank is serialised into that many passes;
// lanes reading the same word broadcast and do not conflict. The extra
// passes are instruction replays — the very events behind the paper's
// shared_replay_overhead / l1_shared_bank_conflict counters that dominate
// reduce1's bottleneck analysis (§5.2).
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/trace.hpp"

namespace bf::gpusim {

/// Number of serialised passes (>= 1) needed for one shared-memory warp
/// access. Replays = passes - 1.
int shared_access_passes(const WarpInstr& instr, const ArchSpec& arch);

/// Convenience: replays only.
inline int shared_conflict_replays(const WarpInstr& instr,
                                   const ArchSpec& arch) {
  return shared_access_passes(instr, arch) - 1;
}

/// Serialised passes for a shared-memory ATOMIC: lanes mapping to the
/// same bank conflict as usual, and lanes hitting the same address also
/// serialise (the read-modify-write cannot broadcast). A warp-wide
/// atomicAdd to a single histogram bin therefore takes 32 passes.
int shared_atomic_passes(const WarpInstr& instr, const ArchSpec& arch);

}  // namespace bf::gpusim
