// GPU architecture descriptions.
//
// The paper trains on an NVIDIA GTX580 (Fermi, CC 2.0) and predicts on a
// Tesla K20m (Kepler, CC 3.5); its Table 2 lists the machine characteristics
// injected into the hardware-scaling model (warp schedulers, clock, SM
// count, cores/SM, memory bandwidth, registers, L2 size). ArchSpec carries
// those plus the micro-architectural constants the timing model needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bf::gpusim {

enum class Generation { kFermi, kKepler };

struct ArchSpec {
  std::string name;
  Generation generation = Generation::kFermi;

  // ---- Table 2 machine characteristics (the paper's predictors) ----
  int warp_schedulers_per_sm = 2;   ///< wsched
  double clock_ghz = 1.4;           ///< freq
  int sm_count = 15;                ///< smp
  int cores_per_sm = 32;            ///< rco
  double mem_bandwidth_gbs = 177.4; ///< mbw
  int max_registers_per_thread = 63;///< paper row "registers"
  int l2_size_kb = 768;             ///< l2c

  // ---- Additional microarchitecture constants ----
  int dispatch_units_per_scheduler = 1;  ///< dual issue on Kepler
  int warp_size = 32;
  int max_warps_per_sm = 48;
  int max_blocks_per_sm = 8;
  int max_threads_per_block = 1024;
  int registers_per_sm = 32 * 1024;
  int shared_mem_per_sm_bytes = 48 * 1024;
  int shared_banks = 32;
  int shared_bank_width_bytes = 4;

  // ---- Board power envelope ----
  /// Idle board power (W): the floor of any estimated or predicted
  /// average power, and the constant term of gpusim::estimate_power.
  double idle_w = 45.0;
  /// Board TDP (W): the physical ceiling the power guard clamps to.
  double tdp_w = 244.0;

  int l1_size_kb = 16;
  int l1_line_bytes = 128;
  int l1_assoc = 4;
  int l2_line_bytes = 128;
  int l2_assoc = 8;
  /// Fermi caches global loads in L1; Kepler (CC 3.5) reserves L1 for
  /// local/stack data and serves global loads from L2 — the exact
  /// difference the paper's Fig. 8 hardware-scaling discussion hinges on.
  bool l1_caches_global_loads = true;

  /// Memory transaction granularities (bytes): L1-cached accesses move
  /// 128-byte lines; L2/uncached accesses move 32-byte segments.
  int l1_transaction_bytes = 128;
  int l2_transaction_bytes = 32;

  // Latencies in core cycles.
  int alu_dep_latency = 18;
  int sfu_dep_latency = 28;
  int shared_latency = 26;
  int l1_latency = 30;
  int l2_latency = 190;
  int dram_latency = 440;
  int sync_latency = 4;

  /// Issue slots one warp-wide arithmetic instruction occupies on its
  /// scheduler: warp_size / (cores_per_sm / warp_schedulers_per_sm),
  /// clamped to >= 1 (2 on Fermi, 1 on Kepler).
  int arith_issue_cycles() const;

  /// Per-SM slice of the shared L2 (the simulator models L2 as per-SM
  /// slices to keep SM simulations independent).
  int l2_slice_bytes() const;

  /// Theoretical single-precision FMA throughput, per SM per cycle.
  double flops_per_sm_cycle() const { return 2.0 * cores_per_sm; }
};

/// GeForce GTX 580: Fermi GF110, the paper's training GPU.
ArchSpec gtx580();
/// GeForce GTX 480: Fermi GF100 (Table 2 lists it as the Fermi column).
ArchSpec gtx480();
/// Tesla K20m: Kepler GK110, the paper's prediction target.
ArchSpec kepler_k20m();
/// Tesla K40: a second Kepler part for "sufficiently similar hardware"
/// experiments (same generation, more SMs).
ArchSpec kepler_k40();

/// All architectures known to the registry.
const std::vector<ArchSpec>& arch_registry();

/// Look up by name; throws bf::Error for unknown names.
const ArchSpec& arch_by_name(const std::string& name);

/// The machine-characteristic columns injected into hardware-scaling
/// datasets, in Table 2 order: wsched, freq, smp, rco, mbw, regs, l2c.
std::vector<std::pair<std::string, double>> machine_characteristics(
    const ArchSpec& arch);

}  // namespace bf::gpusim
