// Theoretical occupancy calculation (the CUDA occupancy calculator rules).
//
// Resident blocks per SM are limited by four resources: the block slots,
// the warp slots, the register file and shared memory. The achieved
// occupancy *counter* is measured by the timing engine; this header gives
// the static limits that determine how many blocks the engine may make
// resident at once.
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/trace.hpp"

namespace bf::gpusim {

struct OccupancyResult {
  int blocks_per_sm = 0;      ///< resident thread blocks per SM
  int warps_per_sm = 0;       ///< resident warps per SM
  double occupancy = 0.0;     ///< warps_per_sm / max_warps_per_sm
  /// Which resource bound first: "blocks", "warps", "registers", "shared".
  const char* limiter = "";
};

/// Compute the occupancy of `geom` on `arch`. Throws bf::Error if the
/// block cannot run at all (too many threads, registers or shared memory).
OccupancyResult compute_occupancy(const ArchSpec& arch,
                                  const LaunchGeometry& geom);

}  // namespace bf::gpusim
