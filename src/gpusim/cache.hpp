// Set-associative LRU cache model used for the per-SM L1 and the per-SM
// slice of the device L2.
//
// Only tags are modelled (no data). Stores use write-allocate/write-back
// for L2 and write-through-no-allocate for L1 (the Fermi policy), handled
// by the caller; this class just answers hit/miss and reports dirty
// evictions so DRAM write traffic can be accounted.
#pragma once

#include <cstdint>
#include <vector>

namespace bf::gpusim {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t dirty_evictions = 0;
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class Cache {
 public:
  /// size_bytes is rounded down to a whole number of sets; a zero-sized
  /// cache reports every access as a miss.
  Cache(std::int64_t size_bytes, int line_bytes, int assoc);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  ///< a dirty line was evicted
  };

  /// Look up the line containing `addr`; allocate on miss. `write` marks
  /// the line dirty (write-allocate). Updates LRU and stats.
  AccessResult access(std::uint64_t addr, bool write);

  /// Lookup-without-allocate (write-through-no-allocate store path).
  bool probe(std::uint64_t addr) const;

  /// Mark every dirty line clean and return how many there were (end-of-
  /// kernel write-back accounting).
  std::uint64_t flush_dirty();

  void reset();
  const CacheStats& stats() const { return stats_; }
  int line_bytes() const { return line_bytes_; }
  std::size_t num_sets() const { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;  ///< access stamp; larger = more recent
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  int line_bytes_;
  int assoc_;
  std::size_t sets_;
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_;  // sets_ * assoc_ entries
  CacheStats stats_;
};

}  // namespace bf::gpusim
