#include "gpusim/power.hpp"

#include <algorithm>

namespace bf::gpusim {

PowerBreakdown estimate_power(const ArchSpec& arch, const CounterSet& counters,
                              double time_ms) {
  PowerBreakdown out;
  const double time_s = std::max(time_ms, 1e-9) * 1e-3;

  // Per-activity coefficients are generation-dependent; the idle floor
  // comes from the arch spec so the guard layer and the label model
  // agree on the same envelope.
  const bool fermi = arch.generation == Generation::kFermi;
  out.idle_w = arch.idle_w;
  const double w_per_issue_ghz = fermi ? 55.0 : 38.0;  // W at 1 inst/cycle/SM
  const double nj_per_dram_byte = fermi ? 0.30 : 0.22;
  const double nj_per_l2_byte = fermi ? 0.08 : 0.06;
  const double nj_per_shared_access = fermi ? 10.0 : 8.0;

  const double active_cycles = counters.get(Event::kActiveCycles);
  const double ipc_per_sm =
      active_cycles > 0 ? counters.get(Event::kInstExecuted) / active_cycles
                        : 0.0;
  // Busy fraction of the whole device over the launch.
  const double device_cycles = counters.get(Event::kElapsedCycles);
  const double busy =
      device_cycles > 0
          ? std::min(1.0, active_cycles /
                              (device_cycles * arch.sm_count))
          : 0.0;
  out.core_w = w_per_issue_ghz * ipc_per_sm * busy * arch.sm_count *
               arch.clock_ghz / 16.0;  // normalised to a 16-SM part

  const double dram_bytes =
      (counters.get(Event::kDramReadTransactions) +
       counters.get(Event::kDramWriteTransactions)) *
      arch.l2_transaction_bytes;
  out.dram_w = dram_bytes * nj_per_dram_byte * 1e-9 / time_s;

  const double l2_bytes = (counters.get(Event::kL2ReadTransactions) +
                           counters.get(Event::kL2WriteTransactions)) *
                          arch.l2_transaction_bytes;
  out.l2_w = l2_bytes * nj_per_l2_byte * 1e-9 / time_s;

  const double shared_accesses = counters.get(Event::kSharedLoad) +
                                 counters.get(Event::kSharedStore) +
                                 counters.get(Event::kSharedBankConflict);
  out.shared_w = shared_accesses * nj_per_shared_access * 1e-9 / time_s;

  // Boards enforce their power limit: sustained draw above TDP throttles
  // clocks, so the *average* power over a launch saturates at tdp_w. The
  // component fields keep the unthrottled demand so the breakdown still
  // attributes where the watts would go.
  const double demand_w =
      out.idle_w + out.core_w + out.dram_w + out.l2_w + out.shared_w;
  out.total_w = arch.tdp_w > 0.0 ? std::min(demand_w, arch.tdp_w) : demand_w;
  out.energy_j = out.total_w * time_s;
  return out;
}

}  // namespace bf::gpusim
