#include "gpusim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/sharedmem.hpp"

namespace bf::gpusim {
namespace {

CounterValidator& validator_slot() {
  static CounterValidator validator;
  return validator;
}

bool validation_forced_by_env() {
  static const bool forced = [] {
    const char* v = std::getenv("BF_CHECK_COUNTERS");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

struct WarpState {
  WarpTrace trace;
  std::size_t pc = 0;
  std::uint64_t ready = 0;
  int scheduler = 0;
  int block_slot = -1;  // index into SmSim::blocks_
  bool at_barrier = false;
  bool done = false;
};

struct BlockCtx {
  int block_id = 0;
  std::vector<std::unique_ptr<WarpState>> warps;
  int live_warps = 0;  // warps not yet done
  int at_barrier = 0;  // warps currently parked at the barrier
};

/// Simulates one SM over its assigned queue of blocks.
class SmSim {
 public:
  SmSim(const ArchSpec& arch, const TraceKernel& kernel,
        const LaunchGeometry& geom, int max_resident_blocks,
        std::vector<int> block_queue)
      : arch_(arch),
        kernel_(kernel),
        geom_(geom),
        max_resident_(max_resident_blocks),
        queue_(std::move(block_queue)),
        l1_(static_cast<std::int64_t>(arch.l1_size_kb) * 1024,
            arch.l1_line_bytes, arch.l1_assoc),
        l2_(arch.l2_slice_bytes(),
            arch.generation == Generation::kKepler ? arch.l2_transaction_bytes
                                                   : arch.l2_line_bytes,
            arch.l2_assoc),
        sched_busy_(static_cast<std::size_t>(arch.warp_schedulers_per_sm), 0),
        sched_rr_(static_cast<std::size_t>(arch.warp_schedulers_per_sm), 0),
        sched_warps_(static_cast<std::size_t>(arch.warp_schedulers_per_sm)) {}

  /// Run to completion; returns the SM's final cycle count.
  std::uint64_t run(CounterSet& counters) {
    counters_ = &counters;
    settle();
    while (!blocks_.empty()) {
      step();
      settle();
    }
    // Write-back of dirty L2 lines at kernel end (bytes leave to DRAM).
    const std::uint64_t dirty = l2_.flush_dirty();
    counters_->add(Event::kDramWriteTransactions,
                   static_cast<double>(dirty) *
                       (l2_.line_bytes() / arch_.l2_transaction_bytes));
    // The kernel is not finished until the last instruction *completes*
    // (its dependence latency drains), not merely when it issued.
    return std::max(cycle_, completion_cycle_);
  }

 private:
  // ---- block lifecycle ----

  /// Retire finished blocks and admit queued ones until stable (a freshly
  /// admitted block can be degenerate — all-empty traces — and retire
  /// immediately).
  void settle() {
    while (true) {
      bool changed = false;
      for (std::size_t b = 0; b < blocks_.size();) {
        if (blocks_[b]->live_warps == 0) {
          blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(b));
          changed = true;
        } else {
          ++b;
        }
      }
      while (static_cast<int>(blocks_.size()) < max_resident_ &&
             next_in_queue_ < queue_.size()) {
        admit_one(queue_[next_in_queue_++]);
        changed = true;
      }
      if (changed) {
        rebuild_scheduler_lists();
      } else {
        break;
      }
    }
  }

  void admit_one(int block_id) {
    auto ctx = std::make_unique<BlockCtx>();
    ctx->block_id = block_id;
    const int warps = geom_.warps_per_block(arch_.warp_size);
    for (int w = 0; w < warps; ++w) {
      auto ws = std::make_unique<WarpState>();
      TraceSink sink(ws->trace);
      kernel_.emit_warp(block_id, w, sink);
      ws->ready = cycle_;
      ws->scheduler =
          static_cast<int>(warp_admit_counter_++ %
                           static_cast<std::uint64_t>(sched_busy_.size()));
      if (ws->trace.empty()) {
        ws->done = true;
      } else {
        ++ctx->live_warps;
      }
      ctx->warps.push_back(std::move(ws));
    }
    blocks_.push_back(std::move(ctx));
  }

  void rebuild_scheduler_lists() {
    for (auto& lst : sched_warps_) lst.clear();
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      for (auto& w : blocks_[b]->warps) {
        w->block_slot = static_cast<int>(b);
        if (!w->done) {
          sched_warps_[static_cast<std::size_t>(w->scheduler)].push_back(
              w.get());
        }
      }
    }
  }

  // ---- main loop ----
  void step() {
    bool issued_any = false;
    const int dispatch = arch_.dispatch_units_per_scheduler;
    for (std::size_t s = 0; s < sched_busy_.size(); ++s) {
      if (sched_busy_[s] > cycle_) continue;
      for (int d = 0; d < dispatch; ++d) {
        WarpState* warp = pick_warp(s);
        if (warp == nullptr) break;
        const int cost = issue(warp);
        issued_any = true;
        if (cost > 1) {
          // A multi-slot instruction (wide issue or replays) occupies the
          // scheduler beyond this cycle; no further dispatch this cycle.
          sched_busy_[s] = cycle_ + static_cast<std::uint64_t>(cost);
          break;
        }
      }
    }

    // Advance time: one cycle while issuing, else jump to the next event.
    std::uint64_t next = cycle_ + 1;
    if (!issued_any) {
      std::uint64_t wake = kNever;
      for (const auto& block : blocks_) {
        for (const auto& w : block->warps) {
          if (w->done || w->at_barrier) continue;
          wake = std::min(wake, std::max(w->ready, cycle_ + 1));
        }
      }
      for (const std::uint64_t b : sched_busy_) {
        if (b > cycle_) wake = std::min(wake, b);
      }
      BF_CHECK_MSG(wake != kNever,
                   "SM deadlock: no runnable warp and no pending event "
                   "(barrier mismatch in kernel '"
                       << kernel_.name() << "'?)");
      next = wake;
    }

    const std::uint64_t delta = next - cycle_;
    int resident_warps = 0;
    for (const auto& block : blocks_) resident_warps += block->live_warps;
    counters_->add(Event::kActiveCycles, static_cast<double>(delta));
    counters_->add(Event::kActiveWarpCycles,
                   static_cast<double>(delta) * resident_warps);
    counters_->add(Event::kIssueSlotsTotal,
                   static_cast<double>(delta) *
                       static_cast<double>(sched_busy_.size()) * dispatch);
    cycle_ = next;
  }

  WarpState* pick_warp(std::size_t sched) {
    auto& list = sched_warps_[sched];
    if (list.empty()) return nullptr;
    const std::size_t n = list.size();
    std::size_t& rr = sched_rr_[sched];
    for (std::size_t i = 0; i < n; ++i) {
      WarpState* w = list[(rr + i) % n];
      if (!w->done && !w->at_barrier && w->ready <= cycle_) {
        rr = (rr + i + 1) % n;
        return w;
      }
    }
    return nullptr;
  }

  // ---- instruction execution ----

  /// Execute the warp's next instruction; returns the issue slots it
  /// consumed on its scheduler (1 = single slot, free for dual issue).
  int issue(WarpState* warp) {
    const WarpInstr& in = warp->trace[warp->pc++];
    CounterSet& c = *counters_;
    c.add(Event::kInstExecuted, 1);
    c.add(Event::kThreadInstExecuted, popcount_mask(in.mask));

    int cost = 1;
    switch (in.op) {
      case Op::kIAlu:
      case Op::kFAlu:
      case Op::kSfu: {
        c.add(Event::kInstIssued, 1);
        if (in.op == Op::kFAlu) {
          c.add(Event::kFlopCount, popcount_mask(in.mask));
        }
        const int lat = (in.op == Op::kSfu) ? arch_.sfu_dep_latency
                                            : arch_.alu_dep_latency;
        cost = arch_.arith_issue_cycles();
        warp->ready = cycle_ + static_cast<std::uint64_t>(lat);
        break;
      }
      case Op::kBranch: {
        c.add(Event::kInstIssued, 1);
        c.add(Event::kBranch, 1);
        if (in.divergent) c.add(Event::kDivergentBranch, 1);
        cost = arch_.arith_issue_cycles();
        warp->ready =
            cycle_ + static_cast<std::uint64_t>(arch_.alu_dep_latency);
        break;
      }
      case Op::kSync: {
        c.add(Event::kInstIssued, 1);
        arrive_barrier(warp);
        return 1;  // barrier handling below decides warp completion
      }
      case Op::kLdShared:
      case Op::kStShared: {
        const int passes = shared_access_passes(in, arch_);
        const int replays = passes - 1;
        c.add(Event::kInstIssued, passes);
        if (in.op == Op::kLdShared) {
          c.add(Event::kSharedLoad, 1);
          c.add(Event::kSharedLoadReplay, replays);
        } else {
          c.add(Event::kSharedStore, 1);
          c.add(Event::kSharedStoreReplay, replays);
        }
        c.add(Event::kSharedBankConflict, replays);
        cost = arch_.arith_issue_cycles() + replays;
        warp->ready =
            cycle_ +
            static_cast<std::uint64_t>(arch_.shared_latency + replays);
        break;
      }
      case Op::kAtomicShared: {
        // Atomics serialise over both bank conflicts and same-address
        // collisions; every extra pass is a replayed issue slot.
        const int passes = shared_atomic_passes(in, arch_);
        const int replays = passes - 1;
        c.add(Event::kInstIssued, passes);
        c.add(Event::kSharedStore, 1);  // nvprof counts atomics as stores
        c.add(Event::kSharedStoreReplay, replays);
        c.add(Event::kSharedBankConflict, replays);
        cost = arch_.arith_issue_cycles() + replays;
        warp->ready =
            cycle_ +
            static_cast<std::uint64_t>(arch_.shared_latency + 2 * replays);
        break;
      }
      case Op::kLdGlobal:
        cost = execute_global_load(warp, in);
        break;
      case Op::kStGlobal:
        cost = execute_global_store(warp, in);
        break;
    }

    completion_cycle_ = std::max(completion_cycle_, warp->ready);
    if (warp->pc >= warp->trace.size()) {
      finish_warp(warp);
    }
    return cost;
  }

  int execute_global_load(WarpState* warp, const WarpInstr& in) {
    CounterSet& c = *counters_;
    c.add(Event::kGldRequest, 1);
    c.add(Event::kGlobalLoadBytesRequested,
          static_cast<double>(popcount_mask(in.mask)) * in.access_bytes);

    const bool via_l1 = arch_.l1_caches_global_loads;
    const int seg_bytes =
        via_l1 ? arch_.l1_transaction_bytes : arch_.l2_transaction_bytes;
    const auto segments = coalesce(in, seg_bytes);
    const int ntrans = static_cast<int>(segments.size());
    c.add(Event::kGlobalLoadTransaction, ntrans);

    int worst_latency = 0;
    for (const std::uint64_t seg : segments) {
      int lat;
      if (via_l1) {
        const auto l1r = l1_.access(seg, /*write=*/false);
        if (l1r.hit) {
          c.add(Event::kL1GlobalLoadHit, 1);
          lat = arch_.l1_latency;
        } else {
          c.add(Event::kL1GlobalLoadMiss, 1);
          c.add(Event::kL2ReadTransactions,
                seg_bytes / arch_.l2_transaction_bytes);
          lat = l2_read(seg, seg_bytes);
        }
      } else {
        c.add(Event::kL2ReadTransactions, 1);
        lat = l2_read(seg, seg_bytes);
      }
      worst_latency = std::max(worst_latency, lat);
    }

    const int replays = std::max(0, ntrans - 1);
    c.add(Event::kInstIssued, 1 + replays);
    warp->ready =
        cycle_ + static_cast<std::uint64_t>(worst_latency + replays);
    return arch_.arith_issue_cycles() + replays;
  }

  /// One read reaching L2; returns the latency of the worst level touched.
  int l2_read(std::uint64_t addr, int fill_bytes) {
    const auto r = l2_.access(addr, /*write=*/false);
    if (r.writeback) {
      counters_->add(Event::kDramWriteTransactions,
                     l2_.line_bytes() / arch_.l2_transaction_bytes);
    }
    if (r.hit) {
      counters_->add(Event::kL2ReadHit, 1);
      return arch_.l2_latency;
    }
    counters_->add(Event::kL2ReadMiss, 1);
    counters_->add(Event::kDramReadTransactions,
                   std::max(1, fill_bytes / arch_.l2_transaction_bytes));
    return arch_.dram_latency;
  }

  int execute_global_store(WarpState* warp, const WarpInstr& in) {
    CounterSet& c = *counters_;
    c.add(Event::kGstRequest, 1);
    c.add(Event::kGlobalStoreBytesRequested,
          static_cast<double>(popcount_mask(in.mask)) * in.access_bytes);

    // Stores bypass L1 (Fermi is write-through-no-allocate; Kepler has no
    // L1 global path) and coalesce at L2 segment granularity.
    const auto segments = coalesce(in, arch_.l2_transaction_bytes);
    const int ntrans = static_cast<int>(segments.size());
    c.add(Event::kGlobalStoreTransaction, ntrans);
    c.add(Event::kL2WriteTransactions, ntrans);
    for (const std::uint64_t seg : segments) {
      const auto r = l2_.access(seg, /*write=*/true);
      if (r.writeback) {
        c.add(Event::kDramWriteTransactions,
              l2_.line_bytes() / arch_.l2_transaction_bytes);
      }
    }

    const int replays = std::max(0, ntrans - 1);
    c.add(Event::kInstIssued, 1 + replays);
    // Stores retire through the write buffer: the warp only waits for
    // issue serialisation, not for DRAM.
    warp->ready =
        cycle_ + static_cast<std::uint64_t>(arch_.alu_dep_latency + replays);
    return arch_.arith_issue_cycles() + replays;
  }

  // ---- barriers / warp completion ----
  void arrive_barrier(WarpState* warp) {
    BlockCtx& block = *blocks_[static_cast<std::size_t>(warp->block_slot)];
    warp->at_barrier = true;
    ++block.at_barrier;
    maybe_release_barrier(block);
  }

  void maybe_release_barrier(BlockCtx& block) {
    if (block.live_warps == 0) return;
    if (block.at_barrier < block.live_warps) return;
    // Clear the barrier state before finishing warps: finish_warp can
    // re-enter this function and must observe a consistent block.
    std::vector<WarpState*> released;
    released.reserve(block.warps.size());
    for (auto& w : block.warps) {
      if (w->at_barrier) {
        w->at_barrier = false;
        released.push_back(w.get());
      }
    }
    block.at_barrier = 0;
    for (WarpState* w : released) {
      w->ready = cycle_ + static_cast<std::uint64_t>(arch_.sync_latency);
      if (w->pc >= w->trace.size()) {
        finish_warp(w);
      }
    }
  }

  void finish_warp(WarpState* warp) {
    if (warp->done) return;
    warp->done = true;
    BlockCtx& block = *blocks_[static_cast<std::size_t>(warp->block_slot)];
    --block.live_warps;
    // Scheduler lists are cleaned on the next settle(); pick_warp already
    // skips done warps.
    maybe_release_barrier(block);
  }

  const ArchSpec& arch_;
  const TraceKernel& kernel_;
  const LaunchGeometry& geom_;
  const int max_resident_;
  std::vector<int> queue_;
  std::size_t next_in_queue_ = 0;

  Cache l1_;
  Cache l2_;
  std::vector<std::unique_ptr<BlockCtx>> blocks_;
  std::vector<std::uint64_t> sched_busy_;
  std::vector<std::size_t> sched_rr_;
  std::vector<std::vector<WarpState*>> sched_warps_;
  std::uint64_t warp_admit_counter_ = 0;
  std::uint64_t cycle_ = 0;
  std::uint64_t completion_cycle_ = 0;
  CounterSet* counters_ = nullptr;
};

}  // namespace

void set_counter_validator(CounterValidator validator) {
  validator_slot() = std::move(validator);
}

const CounterValidator& counter_validator() { return validator_slot(); }

RunResult Device::run(const TraceKernel& kernel, const RunOptions& opts) const {
  const LaunchGeometry geom = kernel.geometry();
  BF_CHECK_MSG(geom.num_blocks() >= 1, "empty grid");

  RunResult result;
  result.occupancy = compute_occupancy(arch_, geom);
  result.blocks_total = geom.num_blocks();

  // Choose the sampled block set: everything when the grid is small,
  // otherwise an even stride so boundary blocks stay represented, rounded
  // so each SM receives at least two full occupancy waves.
  const std::int64_t total = result.blocks_total;
  std::int64_t want = total;
  if (opts.max_sampled_blocks > 0 && total > opts.max_sampled_blocks) {
    const std::int64_t min_per_sm = 2LL * result.occupancy.blocks_per_sm;
    want = std::max<std::int64_t>(opts.max_sampled_blocks,
                                  min_per_sm * arch_.sm_count);
    want = std::min(want, total);
  }
  std::vector<int> sampled;
  sampled.reserve(static_cast<std::size_t>(want));
  for (std::int64_t i = 0; i < want; ++i) {
    sampled.push_back(static_cast<int>(i * total / want));
  }
  result.blocks_simulated = want;
  result.sample_scale =
      static_cast<double>(total) / static_cast<double>(want);

  // Distribute sampled blocks round-robin across SMs (GigaThread-style).
  std::vector<std::vector<int>> per_sm(
      static_cast<std::size_t>(arch_.sm_count));
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    per_sm[i % static_cast<std::size_t>(arch_.sm_count)].push_back(
        sampled[i]);
  }

  std::uint64_t max_cycles = 0;
  for (int sm = 0; sm < arch_.sm_count; ++sm) {
    if (per_sm[static_cast<std::size_t>(sm)].empty()) continue;
    SmSim sim(arch_, kernel, geom, result.occupancy.blocks_per_sm,
              std::move(per_sm[static_cast<std::size_t>(sm)]));
    const std::uint64_t cycles = sim.run(result.counters);
    max_cycles = std::max(max_cycles, cycles);
  }

  result.counters.set(Event::kElapsedCycles,
                      static_cast<double>(max_cycles));
  result.counters.scale(result.sample_scale);

  // DRAM bandwidth roofline on top of the latency model.
  const double latency_time_s =
      result.counters.get(Event::kElapsedCycles) / (arch_.clock_ghz * 1e9);
  const double dram_bytes =
      (result.counters.get(Event::kDramReadTransactions) +
       result.counters.get(Event::kDramWriteTransactions)) *
      arch_.l2_transaction_bytes;
  const double bw_time_s = dram_bytes / (arch_.mem_bandwidth_gbs * 1e9);
  double time_s = latency_time_s;
  if (bw_time_s > time_s) {
    time_s = bw_time_s;
    result.bandwidth_bound = true;
    result.counters.set(Event::kElapsedCycles,
                        time_s * arch_.clock_ghz * 1e9);
  }
  result.time_ms = time_s * 1e3;

  if (opts.validate_counters || validation_forced_by_env()) {
    const CounterValidator& validate = counter_validator();
    if (validate) validate(result.counters, arch_);
  }
  return result;
}

void AggregateResult::add(const RunResult& r, double weight) {
  CounterSet scaled = r.counters;
  scaled.scale(weight);
  counters.accumulate(scaled);
  time_ms += r.time_ms * weight;
  const double occ =
      r.counters.get(Event::kActiveCycles) > 0
          ? r.counters.get(Event::kActiveWarpCycles) /
                r.counters.get(Event::kActiveCycles)
          : 0.0;
  occupancy_weighted += occ * r.time_ms * weight;
  launches += 1;
}

}  // namespace bf::gpusim
