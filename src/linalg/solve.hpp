// Linear solvers: Cholesky for SPD systems and Householder QR least squares.
//
// OLS/GLM and MARS fit through qr_least_squares (numerically safer than
// normal equations when counter columns are nearly collinear, which happens
// constantly with raw GPU event counts).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace bf::linalg {

/// Solve A x = b for symmetric positive definite A via Cholesky.
/// Throws bf::Error if A is not SPD (within a small pivot tolerance).
std::vector<double> cholesky_solve(const Matrix& a,
                                   const std::vector<double>& b);

/// Result of a least-squares solve.
struct LeastSquaresResult {
  std::vector<double> coefficients;  ///< minimiser of ||A x - b||_2
  double residual_norm = 0.0;        ///< ||A x - b||_2 at the minimiser
  std::size_t rank = 0;              ///< numerical rank of A
};

/// Minimise ||A x - b||_2 with Householder QR and column pivoting.
/// Rank-deficient columns get zero coefficients (minimum-norm-ish solution
/// restricted to the pivoted basis), which keeps MARS stable when candidate
/// hinge bases are collinear.
LeastSquaresResult qr_least_squares(const Matrix& a,
                                    const std::vector<double>& b);

}  // namespace bf::linalg
