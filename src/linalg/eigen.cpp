#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace bf::linalg {

EigenResult symmetric_eigen(const Matrix& a, int max_sweeps, double tol) {
  const std::size_t n = a.rows();
  BF_CHECK_MSG(a.cols() == n, "symmetric_eigen needs a square matrix");
  BF_CHECK_MSG(n > 0, "empty matrix");

  // Symmetrise to absorb accumulation-order noise.
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  Matrix v = Matrix::identity(n);

  const double scale = std::max(1.0, s.frobenius_norm());
  int sweeps = 0;
  for (; sweeps < max_sweeps; ++sweeps) {
    // Off-diagonal magnitude.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += s(i, j) * s(i, j);
    }
    if (std::sqrt(off) <= tol * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = s(p, q);
        if (std::fabs(apq) <= tol * scale * 1e-3) continue;
        const double app = s(p, p);
        const double aqq = s(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable rotation: t = sign(theta) / (|theta| + sqrt(theta^2 + 1)).
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double skp = s(k, p);
          const double skq = s(k, q);
          s(k, p) = c * skp - sn * skq;
          s(k, q) = sn * skp + c * skq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double spk = s(p, k);
          const double sqk = s(q, k);
          s(p, k) = c * spk - sn * sqk;
          s(q, k) = sn * spk + c * sqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - sn * vkq;
          v(k, q) = sn * vkp + c * vkq;
        }
      }
    }
  }
  BF_CHECK_MSG(sweeps < max_sweeps,
               "Jacobi eigensolver failed to converge in " << max_sweeps
                                                           << " sweeps");

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return s(i, i) > s(j, j);
  });

  EigenResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = s(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  out.sweeps = sweeps;
  return out;
}

}  // namespace bf::linalg
