#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace bf::linalg {

std::vector<double> cholesky_solve(const Matrix& a,
                                   const std::vector<double>& b) {
  const std::size_t n = a.rows();
  BF_CHECK_MSG(a.cols() == n, "cholesky_solve needs a square matrix");
  BF_CHECK_MSG(b.size() == n, "rhs size mismatch");

  // Factor A = L L^T (lower triangular L stored densely).
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    BF_CHECK_MSG(diag > 1e-12, "matrix is not positive definite (pivot "
                                   << diag << " at column " << j << ")");
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }

  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
  return x;
}

LeastSquaresResult qr_least_squares(const Matrix& a,
                                    const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  BF_CHECK_MSG(b.size() == m, "rhs size mismatch");
  BF_CHECK_MSG(m >= 1 && n >= 1, "empty least-squares system");

  // Working copies; R overwrites `r`, rhs is transformed in place.
  Matrix r = a;
  std::vector<double> rhs = b;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  // Column norms for pivoting.
  std::vector<double> col_norm2(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) col_norm2[j] += r(i, j) * r(i, j);
  }
  const double total_scale =
      std::sqrt(*std::max_element(col_norm2.begin(), col_norm2.end()));
  const double rank_tol = std::max(1e-10, 1e-12 * total_scale);

  const std::size_t steps = std::min(m, n);
  std::size_t rank = 0;
  for (std::size_t k = 0; k < steps; ++k) {
    // Pivot: bring the column with the largest remaining norm to position k.
    std::size_t piv = k;
    double best = 0.0;
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += r(i, j) * r(i, j);
      if (s > best) {
        best = s;
        piv = j;
      }
    }
    if (std::sqrt(best) <= rank_tol) break;  // remaining columns negligible
    if (piv != k) {
      for (std::size_t i = 0; i < m; ++i) std::swap(r(i, k), r(i, piv));
      std::swap(perm[k], perm[piv]);
    }

    // Householder vector v for column k.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (r(k, k) > 0) alpha = -alpha;
    std::vector<double> v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double t : v) vnorm2 += t * t;
    if (vnorm2 <= 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to the remaining columns and rhs.
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, j);
      s = 2.0 * s / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= s * v[i - k];
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += v[i - k] * rhs[i];
    s = 2.0 * s / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= s * v[i - k];

    r(k, k) = alpha;
    ++rank;
  }

  // Back substitution on the leading rank x rank triangle.
  std::vector<double> xp(n, 0.0);
  for (std::size_t ii = rank; ii-- > 0;) {
    double v = rhs[ii];
    for (std::size_t j = ii + 1; j < rank; ++j) v -= r(ii, j) * xp[j];
    BF_CHECK_MSG(std::fabs(r(ii, ii)) > 1e-14, "singular R in QR solve");
    xp[ii] = v / r(ii, ii);
  }

  LeastSquaresResult out;
  out.coefficients.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) out.coefficients[perm[j]] = xp[j];
  double res2 = 0.0;
  for (std::size_t i = rank; i < m; ++i) res2 += rhs[i] * rhs[i];
  out.residual_norm = std::sqrt(res2);
  out.rank = rank;
  return out;
}

}  // namespace bf::linalg
