// Dense row-major double matrix.
//
// This is the numerical workhorse under bf::ml (PCA covariance, OLS normal
// equations, MARS least squares). It is intentionally small: BlackForest's
// datasets are tens-to-hundreds of rows by tens of columns, so clarity and
// checkable invariants beat blocking/vectorisation tricks here.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace bf::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Column vector from data.
  static Matrix column(const std::vector<double>& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Raw row pointer (row-major contiguous storage).
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  const std::vector<double>& data() const { return data_; }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);
  Matrix operator*(double s) const;

  /// y = A * x for a vector x (x.size() == cols()).
  std::vector<double> apply(const std::vector<double>& x) const;

  /// Extract a column as a vector.
  std::vector<double> column_vec(std::size_t c) const;
  void set_column(std::size_t c, const std::vector<double>& v);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Human-readable rendering for debugging.
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equal-length vectors.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

}  // namespace bf::linalg
