// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// PCA needs all eigenpairs of a (small) covariance matrix; Jacobi is exact
// enough, simple, and unconditionally stable for symmetric input.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace bf::linalg {

struct EigenResult {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
  /// Number of Jacobi sweeps performed until convergence.
  int sweeps = 0;
};

/// Eigendecomposition of a symmetric matrix. The input is symmetrised as
/// (A + A^T)/2 first, so tiny asymmetries from accumulation order are
/// tolerated. Throws bf::Error if `a` is not square or fails to converge.
EigenResult symmetric_eigen(const Matrix& a, int max_sweeps = 64,
                            double tol = 1e-12);

}  // namespace bf::linalg
