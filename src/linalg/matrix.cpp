#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace bf::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    BF_CHECK_MSG(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(const std::vector<double>& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  BF_CHECK_MSG(r < rows_ && c < cols_,
               "matrix index (" << r << "," << c << ") out of " << rows_
                                << "x" << cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  BF_CHECK_MSG(r < rows_ && c < cols_,
               "matrix index (" << r << "," << c << ") out of " << rows_
                                << "x" << cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = data_[r * cols_ + c];
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  BF_CHECK_MSG(cols_ == rhs.rows_, "matmul shape mismatch: " << rows_ << "x"
                                                             << cols_ << " * "
                                                             << rhs.rows_
                                                             << "x"
                                                             << rhs.cols_);
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* rrow = rhs.row_ptr(k);
      double* orow = out.row_ptr(i);
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  BF_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  BF_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  BF_CHECK_MSG(x.size() == cols_, "apply: vector size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_ptr(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::column_vec(std::size_t c) const {
  BF_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_column(std::size_t c, const std::vector<double>& v) {
  BF_CHECK(c < cols_ && v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  BF_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (c == 0 ? "" : " ") << data_[r * cols_ + c];
    }
    os << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  BF_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

}  // namespace bf::linalg
