// Counter-invariant analysis for BlackForest (bf::check).
//
// The statistical pipeline is only as trustworthy as the HWPC counter
// vectors it consumes: a counter set that silently violates a conservation
// law (more L1 misses than global-load transactions, DRAM reads that do
// not cover L2 misses, occupancy above the occupancy-calculator bound)
// poisons every downstream model the same way miscollected nvprof data
// would. This library encodes those conservation laws and architecture-
// model invariants as a declarative rule table and checks counter data
// against it at three points:
//
//  * raw engine output      — validate(CounterSet, ArchSpec)
//  * derived nvprof metrics — validate_metrics(map, ArchSpec)
//  * stored sweep datasets  — validate_dataset(Dataset, ArchSpec)
//
// Rules reference counters by name, so the same table applies to raw
// event vectors and to derived metric maps: a rule is skipped (not
// violated) when a counter it references is absent from the data, which
// is exactly how per-generation counter availability behaves on real
// hardware.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "ml/dataset.hpp"

namespace bf::check {

enum class Severity { kWarning, kError };

/// One violated invariant, with the evaluated sides for diagnosis.
struct Violation {
  std::string rule;     ///< rule id, e.g. "gld_trans_ge_requests"
  std::string message;  ///< human-readable law + observed values
  Severity severity = Severity::kError;
  double lhs = 0.0;
  double rhs = 0.0;
  /// Row index for dataset validation (-1 for single counter sets).
  long row = -1;
};

/// Validation tolerances. Engine output is exact up to floating-point
/// accumulation; profiled/stored data carries multiplicative measurement
/// noise, so relations between near-equal counters need slack.
struct Options {
  double rel_tol = 1e-6;
};

/// Tolerance preset for raw engine counters (exact arithmetic).
inline Options engine_tolerance() { return Options{1e-6}; }
/// Tolerance preset for profiled metrics / stored sweeps (noisy).
inline Options measured_tolerance() { return Options{0.05}; }

/// Named counter lookup: returns the value, or nullopt when the counter
/// does not exist in the data under validation.
using CounterView =
    std::function<std::optional<double>(const std::string&)>;

/// A side of a rule: a printable expression over counters and machine
/// constants, evaluated against a CounterView. Evaluates to nullopt when
/// a referenced counter is absent (the rule is then skipped).
struct Expr {
  std::string repr;
  std::function<std::optional<double>(const CounterView&,
                                      const gpusim::ArchSpec&)>
      eval;
};

enum class Relation { kLe, kGe, kEq };

/// One invariant: `lhs REL rhs`, applicable to a subset of architectures.
struct Rule {
  std::string id;
  std::string description;
  Severity severity = Severity::kError;
  Relation rel = Relation::kLe;
  Expr lhs;
  Expr rhs;
  /// Nullopt = applies everywhere; otherwise a predicate on the arch
  /// (e.g. "only when L1 caches global loads").
  std::function<bool(const gpusim::ArchSpec&)> applies;

  /// Printable law, e.g. "global_load_transaction >= gld_request".
  std::string expr() const;
  /// Evaluate against a view; nullopt when satisfied or not applicable.
  std::optional<Violation> check(const CounterView& view,
                                 const gpusim::ArchSpec& arch,
                                 double rel_tol) const;
};

/// The full invariant table, in a stable order. See rules.cpp for the
/// individual laws and docs/static_analysis.md for how to add one.
const std::vector<Rule>& rule_table();

/// Look up a rule by id; throws bf::Error for unknown ids.
const Rule& rule_by_id(const std::string& id);

/// Validate an arbitrary named-counter view (the primitive the wrappers
/// below are built on).
std::vector<Violation> validate_view(const CounterView& view,
                                     const gpusim::ArchSpec& arch,
                                     const Options& options);

/// Validate a raw engine counter set (exact tolerance by default).
std::vector<Violation> validate(const gpusim::CounterSet& counters,
                                const gpusim::ArchSpec& arch,
                                const Options& options = engine_tolerance());

/// Validate a derived nvprof-style metric map (noisy tolerance).
std::vector<Violation> validate_metrics(
    const std::map<std::string, double>& metrics,
    const gpusim::ArchSpec& arch,
    const Options& options = measured_tolerance());

/// Validate every row of a sweep dataset; violations carry the row index.
std::vector<Violation> validate_dataset(
    const ml::Dataset& ds, const gpusim::ArchSpec& arch,
    const Options& options = measured_tolerance());

/// Render violations one per line (empty string when none).
std::string to_string(const std::vector<Violation>& violations);

/// Throw bf::Error listing the violations when any has Severity::kError.
/// `context` names the data under validation in the error message.
void throw_if_errors(const std::vector<Violation>& violations,
                     const std::string& context);

/// Install a validator into the gpusim engine hook so every Device::run
/// with RunOptions::validate_counters (or BF_CHECK_COUNTERS=1 in the
/// environment) validates its final counters and throws on violations.
void install_engine_validator(const Options& options = engine_tolerance());
/// Remove the engine hook installed above.
void uninstall_engine_validator();

}  // namespace bf::check
