// The declarative counter-invariant table.
//
// Every rule states a conservation law or architecture-model bound as
// `lhs REL rhs` over named counters and machine constants. Rules are
// evaluated against whatever counter names the data under validation
// carries — a rule referencing an absent counter is skipped, which is how
// per-generation availability (e.g. Kepler lacking l1_shared_bank_conflict)
// is handled without duplicating the table.
//
// To add a rule: append to build_rules() using the combinators below and
// add a corrupted-counter case to tests/check_test.cpp proving it fires.
// See docs/static_analysis.md.
#include <utility>

#include "check/check.hpp"
#include "common/error.hpp"

namespace bf::check {
namespace {

using gpusim::ArchSpec;

/// A named counter.
Expr c(std::string name) {
  Expr e;
  e.repr = name;
  e.eval = [name = std::move(name)](
               const CounterView& view,
               const ArchSpec&) -> std::optional<double> {
    return view(name);
  };
  return e;
}

std::string format_literal(double value);

/// A literal constant.
Expr lit(double value) {
  Expr e;
  e.repr = format_literal(value);
  e.eval = [value](const CounterView&, const ArchSpec&) {
    return std::optional<double>(value);
  };
  return e;
}

/// A machine constant pulled from the ArchSpec, e.g. warp_size.
Expr arch_const(std::string repr,
                std::function<double(const ArchSpec&)> get) {
  Expr e;
  e.repr = std::move(repr);
  e.eval = [get = std::move(get)](const CounterView&,
                                  const ArchSpec& arch) {
    return std::optional<double>(get(arch));
  };
  return e;
}

Expr combine(const char* op, Expr a, Expr b,
             std::function<double(double, double)> f) {
  Expr e;
  e.repr = a.repr + " " + op + " " + b.repr;
  e.eval = [a = std::move(a), b = std::move(b), f = std::move(f)](
               const CounterView& view,
               const ArchSpec& arch) -> std::optional<double> {
    const auto x = a.eval(view, arch);
    const auto y = b.eval(view, arch);
    if (!x || !y) return std::nullopt;
    return f(*x, *y);
  };
  return e;
}

Expr sum(Expr a, Expr b) {
  return combine("+", std::move(a), std::move(b),
                 [](double x, double y) { return x + y; });
}

Expr mul(Expr a, Expr b) {
  return combine("*", std::move(a), std::move(b),
                 [](double x, double y) { return x * y; });
}

Rule rule(std::string id, Expr lhs, Relation rel, Expr rhs,
          std::string description,
          std::function<bool(const ArchSpec&)> applies = nullptr,
          Severity severity = Severity::kError) {
  Rule r;
  r.id = std::move(id);
  r.description = std::move(description);
  r.severity = severity;
  r.rel = rel;
  r.lhs = std::move(lhs);
  r.rhs = std::move(rhs);
  r.applies = std::move(applies);
  return r;
}

// ---- common arch constants ----

Expr warp_size() {
  return arch_const("warp_size", [](const ArchSpec& a) {
    return static_cast<double>(a.warp_size);
  });
}

bool l1_global_path(const ArchSpec& a) { return a.l1_caches_global_loads; }
bool l2_global_path(const ArchSpec& a) { return !a.l1_caches_global_loads; }

std::vector<Rule> build_rules() {
  std::vector<Rule> rules;

  // ---- non-negativity: every raw event and a few derived columns ----
  for (std::size_t i = 0; i < gpusim::kNumEvents; ++i) {
    const char* name = gpusim::event_name(static_cast<gpusim::Event>(i));
    rules.push_back(rule("nonneg_" + std::string(name), c(name),
                         Relation::kGe, lit(0.0),
                         "hardware event counts cannot be negative"));
  }
  for (const char* name :
       {"ipc", "gld_throughput", "gst_throughput", "l2_read_throughput",
        "l2_write_throughput", "dram_read_throughput",
        "dram_write_throughput", "power_avg_w", "time_ms", "size"}) {
    rules.push_back(rule("nonneg_" + std::string(name), c(name),
                         Relation::kGe, lit(0.0),
                         "derived metrics cannot be negative"));
  }

  // ---- instruction stream conservation ----
  rules.push_back(rule(
      "issued_ge_executed", c("inst_issued"), Relation::kGe,
      c("inst_executed"),
      "issue slots consumed include every executed instruction plus "
      "replays; fewer issues than executions is impossible"));
  rules.push_back(rule(
      "branch_le_executed", c("branch"), Relation::kLe, c("inst_executed"),
      "branches are a subset of the executed instruction stream"));
  rules.push_back(rule(
      "divergent_le_branch", c("divergent_branch"), Relation::kLe,
      c("branch"), "only executed branches can diverge"));
  rules.push_back(rule(
      "thread_inst_warp_bound", c("thread_inst_executed"), Relation::kLe,
      mul(c("inst_executed"), warp_size()),
      "a warp instruction activates at most warp_size lanes"));
  rules.push_back(rule(
      "flops_le_lanes", c("flop_count"), Relation::kLe,
      c("thread_inst_executed"),
      "each lane-level FLOP is carried by a lane-level instruction"));

  // ---- global memory conservation ----
  rules.push_back(rule(
      "gld_trans_ge_requests", c("global_load_transaction"), Relation::kGe,
      c("gld_request"),
      "every global load instruction produces at least one transaction "
      "(the paper's coalescing signal reads this ratio)"));
  rules.push_back(rule(
      "gld_trans_warp_bound", c("global_load_transaction"), Relation::kLe,
      mul(c("gld_request"), mul(lit(2.0), warp_size())),
      "per request, each of warp_size lanes touches at most two segments "
      "(one boundary crossing)"));
  rules.push_back(rule(
      "gst_trans_ge_requests", c("global_store_transaction"), Relation::kGe,
      c("gst_request"),
      "every global store instruction produces at least one transaction"));
  rules.push_back(rule(
      "gst_trans_warp_bound", c("global_store_transaction"), Relation::kLe,
      mul(c("gst_request"), mul(lit(2.0), warp_size())),
      "per request, each of warp_size lanes touches at most two segments "
      "(one boundary crossing)"));

  // ---- cache hierarchy conservation ----
  rules.push_back(rule(
      "l1_partitions_gld_trans",
      sum(c("l1_global_load_hit"), c("l1_global_load_miss")), Relation::kEq,
      c("global_load_transaction"),
      "on an L1-cached global-load path every transaction probes L1 and "
      "is classified as exactly one hit or miss",
      l1_global_path));
  rules.push_back(rule(
      "kepler_l1_quiescent",
      sum(c("l1_global_load_hit"), c("l1_global_load_miss")), Relation::kLe,
      lit(0.0),
      "Kepler (CC 3.5) reserves L1 for local data; global loads must "
      "report ~zero L1 activity",
      l2_global_path));
  rules.push_back(rule(
      "l2_reads_cover_l1_miss", c("l2_read_transactions"), Relation::kGe,
      mul(c("l1_global_load_miss"),
          arch_const("l1_line/l2_seg",
                     [](const ArchSpec& a) {
                       return static_cast<double>(a.l1_transaction_bytes) /
                              a.l2_transaction_bytes;
                     })),
      "each L1 miss refills a full L1 line through L2 read segments",
      l1_global_path));
  rules.push_back(rule(
      "l2_reads_cover_gld", c("l2_read_transactions"), Relation::kGe,
      c("global_load_transaction"),
      "with no L1 global path every load transaction is an L2 read",
      l2_global_path));
  rules.push_back(rule(
      "l2_accesses_le_reads",
      sum(c("l2_read_hit"), c("l2_read_miss")), Relation::kLe,
      c("l2_read_transactions"),
      "each L2 lookup (hit or miss) moves at least one read segment"));
  rules.push_back(rule(
      "dram_reads_cover_l2_miss", c("dram_read_transactions"), Relation::kGe,
      c("l2_read_miss"),
      "every L2 read miss is filled by at least one DRAM read segment"));
  rules.push_back(rule(
      "l2_writes_cover_stores", c("l2_write_transactions"), Relation::kGe,
      c("global_store_transaction"),
      "global stores write through to L2 (no L1 write-allocate on either "
      "generation)"));

  // ---- shared memory / bank conflict theory ----
  rules.push_back(rule(
      "shared_load_replay_bound", c("shared_load_replay"), Relation::kLe,
      mul(c("shared_load"),
          arch_const("(warp_size - 1)",
                     [](const ArchSpec& a) {
                       return static_cast<double>(a.warp_size - 1);
                     })),
      "a fully serialised (warp_size)-way bank conflict replays at most "
      "warp_size - 1 times per instruction"));
  rules.push_back(rule(
      "shared_store_replay_bound", c("shared_store_replay"), Relation::kLe,
      mul(c("shared_store"),
          arch_const("(warp_size - 1)",
                     [](const ArchSpec& a) {
                       return static_cast<double>(a.warp_size - 1);
                     })),
      "a fully serialised (warp_size)-way bank conflict replays at most "
      "warp_size - 1 times per instruction"));
  rules.push_back(rule(
      "bank_conflict_partition", c("l1_shared_bank_conflict"), Relation::kEq,
      sum(c("shared_load_replay"), c("shared_store_replay")),
      "the Fermi bank-conflict event is the sum of the Kepler-named "
      "load/store replay events (same hardware signal, split name)"));
  rules.push_back(rule(
      "bank_conflict_bound", c("l1_shared_bank_conflict"), Relation::kLe,
      mul(sum(c("shared_load"), c("shared_store")),
          arch_const("(warp_size - 1)",
                     [](const ArchSpec& a) {
                       return static_cast<double>(a.warp_size - 1);
                     })),
      "bank-conflict replays are bounded by full serialisation of every "
      "shared access"));

  // ---- scheduler / occupancy bounds ----
  rules.push_back(rule(
      "occupancy_warp_bound", c("active_warp_cycles"), Relation::kLe,
      mul(c("active_cycles"),
          arch_const("max_warps_per_sm",
                     [](const ArchSpec& a) {
                       return static_cast<double>(a.max_warps_per_sm);
                     })),
      "an SM can never hold more resident warps than the occupancy "
      "calculator's warp-slot limit"));
  rules.push_back(rule(
      "issued_le_slots", c("inst_issued"), Relation::kLe,
      c("issue_slots_total"),
      "the schedulers cannot issue more instructions than they had issue "
      "slots while the SM was active"));
  rules.push_back(rule(
      "active_le_elapsed_total", c("active_cycles"), Relation::kLe,
      mul(c("elapsed_cycles"),
          arch_const("sm_count",
                     [](const ArchSpec& a) {
                       return static_cast<double>(a.sm_count);
                     })),
      "no SM can be active for longer than the kernel's elapsed time"));

  // ---- derived-metric bounds (profiled data) ----
  for (const char* ratio :
       {"achieved_occupancy", "issue_slot_utilization",
        "warp_execution_efficiency", "gld_efficiency", "gst_efficiency"}) {
    rules.push_back(rule(std::string(ratio) + "_le_1", c(ratio),
                         Relation::kLe, lit(1.0),
                         "ratio metrics have a hard physical cap of 1"));
    rules.push_back(rule("nonneg_" + std::string(ratio), c(ratio),
                         Relation::kGe, lit(0.0),
                         "ratio metrics cannot be negative"));
  }
  rules.push_back(rule(
      "ipc_le_issue_width", c("ipc"), Relation::kLe,
      arch_const("wsched * dispatch",
                 [](const ArchSpec& a) {
                   return static_cast<double>(a.warp_schedulers_per_sm) *
                          a.dispatch_units_per_scheduler;
                 }),
      "per-SM IPC is capped by scheduler count times dispatch width"));
  rules.push_back(rule(
      "dram_bw_roofline",
      sum(c("dram_read_throughput"), c("dram_write_throughput")),
      Relation::kLe,
      arch_const("mem_bandwidth_gbs",
                 [](const ArchSpec& a) { return a.mem_bandwidth_gbs; }),
      "combined DRAM throughput cannot exceed the board's memory "
      "bandwidth (the engine's roofline)"));

  // ---- board power envelope (bf::power labels) ----
  rules.push_back(rule(
      "power_ge_idle", c("power_avg_w"), Relation::kGe,
      arch_const("idle_w", [](const ArchSpec& a) { return a.idle_w; }),
      "estimated board power can never dip below the arch's idle floor"));
  rules.push_back(rule(
      "power_le_tdp", c("power_avg_w"), Relation::kLe,
      arch_const("tdp_w", [](const ArchSpec& a) { return a.tdp_w; }),
      "estimated board power can never exceed the board's TDP"));
  // energy_j and power_total_w are validation-only mirrors the profiler
  // adds from one estimate_power call (absent in stored sweeps, so the
  // rule is skipped there); a ms-vs-s slip in the energy field would
  // miss by 1000x.
  rules.push_back(rule(
      "energy_eq_power_time", c("energy_j"), Relation::kEq,
      mul(c("power_total_w"), mul(c("time_ms"), lit(0.001))),
      "energy must equal average board power times elapsed time"));

  return rules;
}

std::string format_literal(double value) {
  // Rule literals are small integers; print them without a trailing ".0".
  const long long ll = static_cast<long long>(value);
  if (static_cast<double>(ll) == value) return std::to_string(ll);
  return std::to_string(value);
}

}  // namespace

const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> table = build_rules();
  return table;
}

}  // namespace bf::check
