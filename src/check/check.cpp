#include "check/check.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "gpusim/engine.hpp"

namespace bf::check {

namespace {

const char* relation_text(Relation rel) {
  switch (rel) {
    case Relation::kLe: return "<=";
    case Relation::kGe: return ">=";
    case Relation::kEq: return "==";
  }
  BF_FAIL("invalid relation");
}

/// Slack for comparing `lhs` against `rhs`: relative to the larger
/// magnitude, with an absolute floor of `rel_tol` so counters near zero
/// are not held to an impossible standard.
double slack(double lhs, double rhs, double rel_tol) {
  return rel_tol * std::max({std::fabs(lhs), std::fabs(rhs), 1.0});
}

}  // namespace

std::string Rule::expr() const {
  return lhs.repr + " " + relation_text(rel) + " " + rhs.repr;
}

std::optional<Violation> Rule::check(const CounterView& view,
                                     const gpusim::ArchSpec& arch,
                                     double rel_tol) const {
  if (applies && !applies(arch)) return std::nullopt;
  const auto l = lhs.eval(view, arch);
  const auto r = rhs.eval(view, arch);
  if (!l || !r) return std::nullopt;  // a referenced counter is absent

  const double eps = slack(*l, *r, rel_tol);
  bool ok = true;
  switch (rel) {
    case Relation::kLe: ok = *l <= *r + eps; break;
    case Relation::kGe: ok = *l >= *r - eps; break;
    case Relation::kEq: ok = std::fabs(*l - *r) <= eps; break;
  }
  if (ok) return std::nullopt;

  Violation v;
  v.rule = id;
  v.severity = severity;
  v.lhs = *l;
  v.rhs = *r;
  std::ostringstream os;
  os << id << ": " << expr() << " violated on " << arch.name << " (lhs="
     << *l << ", rhs=" << *r << "): " << description;
  v.message = os.str();
  return v;
}

const Rule& rule_by_id(const std::string& id) {
  for (const auto& rule : rule_table()) {
    if (rule.id == id) return rule;
  }
  BF_FAIL("unknown check rule: " << id);
}

std::vector<Violation> validate_view(const CounterView& view,
                                     const gpusim::ArchSpec& arch,
                                     const Options& options) {
  std::vector<Violation> out;
  for (const auto& rule : rule_table()) {
    if (auto v = rule.check(view, arch, options.rel_tol)) {
      out.push_back(*std::move(v));
    }
  }
  return out;
}

std::vector<Violation> validate(const gpusim::CounterSet& counters,
                                const gpusim::ArchSpec& arch,
                                const Options& options) {
  const CounterView view =
      [&counters](const std::string& name) -> std::optional<double> {
    for (std::size_t i = 0; i < gpusim::kNumEvents; ++i) {
      const auto e = static_cast<gpusim::Event>(i);
      if (name == gpusim::event_name(e)) return counters.get(e);
    }
    return std::nullopt;
  };
  return validate_view(view, arch, options);
}

std::vector<Violation> validate_metrics(
    const std::map<std::string, double>& metrics,
    const gpusim::ArchSpec& arch, const Options& options) {
  const CounterView view =
      [&metrics](const std::string& name) -> std::optional<double> {
    const auto it = metrics.find(name);
    if (it == metrics.end()) return std::nullopt;
    // A NaN metric is a dropped counter (multiplexing lost the event):
    // treat it as absent so rules referencing it are skipped, exactly
    // like a counter the generation does not expose.
    if (std::isnan(it->second)) return std::nullopt;
    return it->second;
  };
  return validate_view(view, arch, options);
}

std::vector<Violation> validate_dataset(const ml::Dataset& ds,
                                        const gpusim::ArchSpec& arch,
                                        const Options& options) {
  std::vector<Violation> out;
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    const CounterView view =
        [&ds, row](const std::string& name) -> std::optional<double> {
      if (!ds.has_column(name)) return std::nullopt;
      const double v = ds.column(name)[row];
      // NaN cells are dropped counters in a degraded sweep; skip the
      // rules that reference them instead of reporting false positives.
      if (std::isnan(v)) return std::nullopt;
      return v;
    };
    for (auto& v : validate_view(view, arch, options)) {
      v.row = static_cast<long>(row);
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::string to_string(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << (v.severity == Severity::kError ? "error" : "warning");
    if (v.row >= 0) os << " [row " << v.row << "]";
    os << ": " << v.message << "\n";
  }
  return os.str();
}

void throw_if_errors(const std::vector<Violation>& violations,
                     const std::string& context) {
  std::size_t errors = 0;
  for (const auto& v : violations) {
    if (v.severity == Severity::kError) ++errors;
  }
  if (errors == 0) return;
  BF_FAIL("counter invariants violated for " << context << " (" << errors
                                             << " error(s)):\n"
                                             << to_string(violations));
}

void install_engine_validator(const Options& options) {
  gpusim::set_counter_validator(
      [options](const gpusim::CounterSet& counters,
                const gpusim::ArchSpec& arch) {
        throw_if_errors(validate(counters, arch, options),
                        "engine counters on " + arch.name);
      });
}

void uninstall_engine_validator() {
  gpusim::set_counter_validator(nullptr);
}

}  // namespace bf::check
