// K-fold cross-validation over a Dataset, model-agnostic.
//
// The paper leaves "a less empirical way to determine the ideal size" of
// the training set as future work; cross-validated error over candidate
// collection sizes is the standard answer, and this helper powers it.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace bf::ml {

struct CvResult {
  /// Per-fold MSE on the held-out fold.
  std::vector<double> fold_mse;
  double mean_mse = 0.0;
  double sd_mse = 0.0;
  /// Pooled out-of-fold predictions aligned with the dataset rows.
  std::vector<double> predictions;
};

/// `fit_predict(train, test)` must fit a model on `train` and return
/// predictions for the rows of `test`. Rows are shuffled once with `rng`
/// and dealt into `folds` contiguous groups.
CvResult kfold_cv(
    const Dataset& ds, const std::string& response, std::size_t folds,
    Rng& rng,
    const std::function<std::vector<double>(const Dataset& train,
                                            const Dataset& test)>&
        fit_predict);

/// RMSE convenience over kfold_cv, clamping `folds` to the row count.
/// Returns +inf when the dataset is too small to cross-validate (< 2
/// rows) or when `fit_predict` throws on some fold — an infinite CV
/// error naturally ranks an unusable model last in a fallback chain.
double cv_rmse(const Dataset& ds, const std::string& response,
               std::size_t folds, std::uint64_t seed,
               const std::function<std::vector<double>(const Dataset& train,
                                                       const Dataset& test)>&
                   fit_predict);

}  // namespace bf::ml
