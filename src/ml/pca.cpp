#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"

namespace bf::ml {

void Pca::fit(const linalg::Matrix& x, std::vector<std::string> variable_names,
              const PcaParams& params) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  BF_CHECK_MSG(n >= 2, "PCA needs at least 2 observations");
  BF_CHECK_MSG(variable_names.size() == p, "variable name count mismatch");
  names_ = std::move(variable_names);

  // Center (and optionally standardise) columns.
  center_.assign(p, 0.0);
  scale_.assign(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += x(i, j);
    center_[j] = s / static_cast<double>(n);
  }
  linalg::Matrix z(n, p);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < n; ++i) z(i, j) = x(i, j) - center_[j];
  }
  if (params.scale) {
    for (std::size_t j = 0; j < p; ++j) {
      double sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) sq += z(i, j) * z(i, j);
      const double sd = std::sqrt(sq / static_cast<double>(n - 1));
      // Constant columns are left unscaled instead of dividing by ~0; they
      // contribute a zero eigenvalue and land in the trailing components.
      scale_[j] = sd > 1e-12 ? sd : 1.0;
      for (std::size_t i = 0; i < n; ++i) z(i, j) /= scale_[j];
    }
  }

  // Covariance (p x p) and its eigendecomposition.
  linalg::Matrix cov(p, p);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += z(i, a) * z(i, b);
      const double v = s / static_cast<double>(n - 1);
      cov(a, b) = v;
      cov(b, a) = v;
    }
  }
  const linalg::EigenResult eig = linalg::symmetric_eigen(cov);

  sdev_.resize(p);
  for (std::size_t j = 0; j < p; ++j) {
    sdev_[j] = std::sqrt(std::max(0.0, eig.values[j]));
  }
  rotation_ = eig.vectors;
  scores_ = z * rotation_;

  // Decide how many components to retain.
  const auto cum = cumulative_variance();
  retained_ = p;
  for (std::size_t j = 0; j < p; ++j) {
    if (cum[j] >= params.variance_target) {
      retained_ = j + 1;
      break;
    }
  }
  if (params.max_components > 0) {
    retained_ = std::min(retained_, params.max_components);
  }
  retained_ = std::max<std::size_t>(1, retained_);
  have_rotated_ = false;
}

std::vector<double> Pca::variance_proportion() const {
  double total = 0.0;
  for (double s : sdev_) total += s * s;
  std::vector<double> out(sdev_.size(), 0.0);
  if (total <= 0.0) return out;
  for (std::size_t j = 0; j < sdev_.size(); ++j) {
    out[j] = sdev_[j] * sdev_[j] / total;
  }
  return out;
}

std::vector<double> Pca::cumulative_variance() const {
  auto out = variance_proportion();
  for (std::size_t j = 1; j < out.size(); ++j) out[j] += out[j - 1];
  return out;
}

linalg::Matrix Pca::transform(const linalg::Matrix& x) const {
  BF_CHECK_MSG(x.cols() == names_.size(), "transform: column mismatch");
  linalg::Matrix z(x.rows(), x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      z(i, j) = (x(i, j) - center_[j]) / scale_[j];
    }
  }
  return z * rotation_;
}

double Pca::loading(const std::string& var, std::size_t comp) const {
  const auto it = std::find(names_.begin(), names_.end(), var);
  BF_CHECK_MSG(it != names_.end(), "unknown variable: " << var);
  const std::size_t v = static_cast<std::size_t>(it - names_.begin());
  if (have_rotated_) {
    BF_CHECK_MSG(comp < rotated_.cols(), "component out of range");
    return rotated_(v, comp);
  }
  BF_CHECK_MSG(comp < rotation_.cols(), "component out of range");
  return rotation_(v, comp);
}

const linalg::Matrix& Pca::varimax(int max_iter, double tol) {
  const std::size_t p = names_.size();
  const std::size_t k = retained_;
  // Loadings scaled by component sdev (factor-analysis convention) so that
  // rotation balances variance across components.
  linalg::Matrix l(p, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < p; ++i) l(i, j) = rotation_(i, j) * sdev_[j];
  }
  if (k < 2) {
    rotated_ = l;
    have_rotated_ = true;
    return rotated_;
  }

  // Kaiser's pairwise varimax: rotate each pair of components to maximise
  // the variance of squared loadings, iterating until angles vanish.
  const double np = static_cast<double>(p);
  for (int iter = 0; iter < max_iter; ++iter) {
    double max_angle = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        double u_sum = 0.0;
        double v_sum = 0.0;
        double u2v2 = 0.0;
        double uv = 0.0;
        for (std::size_t i = 0; i < p; ++i) {
          const double u = l(i, a) * l(i, a) - l(i, b) * l(i, b);
          const double v = 2.0 * l(i, a) * l(i, b);
          u_sum += u;
          v_sum += v;
          u2v2 += u * u - v * v;
          uv += u * v;
        }
        const double num = 2.0 * (uv - u_sum * v_sum / np);
        const double den = u2v2 - (u_sum * u_sum - v_sum * v_sum) / np;
        const double angle = 0.25 * std::atan2(num, den);
        if (std::fabs(angle) < tol) continue;
        max_angle = std::max(max_angle, std::fabs(angle));
        const double c = std::cos(angle);
        const double s = std::sin(angle);
        for (std::size_t i = 0; i < p; ++i) {
          const double la = l(i, a);
          const double lb = l(i, b);
          l(i, a) = c * la + s * lb;
          l(i, b) = -s * la + c * lb;
        }
      }
    }
    if (max_angle < tol) break;
  }
  rotated_ = l;
  have_rotated_ = true;
  return rotated_;
}

std::vector<std::vector<std::pair<std::string, double>>> Pca::strong_loadings(
    double cutoff) const {
  const std::size_t k = retained_;
  std::vector<std::vector<std::pair<std::string, double>>> out(k);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t v = 0; v < names_.size(); ++v) {
      const double val =
          have_rotated_ ? rotated_(v, c) : rotation_(v, c) * sdev_[c];
      if (std::fabs(val) >= cutoff) {
        out[c].emplace_back(names_[v], val);
      }
    }
    std::sort(out[c].begin(), out[c].end(),
              [](const auto& a, const auto& b) {
                return std::fabs(a.second) > std::fabs(b.second);
              });
  }
  return out;
}

}  // namespace bf::ml
