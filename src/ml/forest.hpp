// Random-forest regression (Breiman 2001), the core model of BlackForest.
//
// Mirrors the semantics of the R randomForest package the paper uses:
//  - n_trees unpruned CART trees grown on bootstrap samples,
//  - mtry features considered per split (default max(1, p/3) for regression),
//  - out-of-bag (OOB) predictions, OOB MSE and "% variance explained",
//  - permutation variable importance (%IncMSE), computed tree by tree as
//    the forest is constructed (paper §4.1.1),
//  - partial dependence of the response on individual predictors.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "ml/tree.hpp"

namespace bf::ml {

struct ForestParams {
  std::size_t n_trees = 500;
  /// Features tried per split; 0 = regression default max(1, p/3).
  std::size_t mtry = 0;
  std::size_t min_node_size = 5;
  std::size_t max_depth = 0;
  /// Whether to compute permutation importance during fit.
  bool importance = true;
  std::uint64_t seed = 42;
  /// Number of worker threads for training (0 = serial).
  std::size_t threads = 0;
};

/// Per-variable importance record.
struct VariableImportance {
  std::string name;
  /// Mean increase in OOB MSE when the variable is permuted, divided by its
  /// standard error over trees — R's "%IncMSE" statistic.
  double pct_inc_mse = 0.0;
  /// Raw mean increase in OOB MSE (unnormalised).
  double mean_inc_mse = 0.0;
  /// Total SSE decrease at splits on this variable (IncNodePurity).
  double inc_node_purity = 0.0;
};

/// One point of a partial-dependence curve.
struct PartialDependencePoint {
  double x = 0.0;  ///< value the predictor is clamped to
  double y = 0.0;  ///< average model prediction over the training rows
};

/// A forest prediction with an empirical uncertainty band (paper §7:
/// "Integrating confidence intervals into the partial dependence plots
/// would help interpretation and confidence in the outcome").
struct PredictionInterval {
  double mean = 0.0;
  double lo = 0.0;  ///< lower quantile of the per-tree predictions
  double hi = 0.0;  ///< upper quantile of the per-tree predictions
};

/// A partial-dependence point with the same band.
struct PartialDependenceInterval {
  double x = 0.0;
  PredictionInterval y;
};

/// Caller-provided scratch for the allocation-free prediction paths
/// (RandomForest::predict_interval and the FlatForest engine). Reuse one
/// instance across calls; the buffers grow to the forest's size once and
/// are then recycled.
struct ForestScratch {
  /// Repaired-row buffer for NaN-feature median repair.
  std::vector<double> repaired;
  /// Per-tree leaf values (quantile input for intervals).
  std::vector<double> tree_values;
  /// Lane state of the flat engine's compacted interleaved tree walk
  /// (tree id and current node packed per lane).
  std::vector<std::int64_t> walk_lanes;
};

class RandomForest {
 public:
  /// Fit the forest. Feature names are kept for reporting; pass one name
  /// per column of x.
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           std::vector<std::string> feature_names, const ForestParams& params);

  /// Predict one row. Non-finite feature values (dropped counters, the
  /// ml.forest.nan_feature fault) are repaired with the per-feature
  /// training median before the trees see them — a NaN query degrades
  /// gracefully instead of taking an arbitrary tree path. Finite rows
  /// take a branch-free fast path with unchanged arithmetic.
  double predict_row(const double* row) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  /// OOB mean squared error (the forest's internal generalisation
  /// estimate). Rows never out-of-bag are excluded.
  double oob_mse() const { return oob_mse_; }

  /// randomForest's "% Var explained": 100 * (1 - oob_mse / Var(y)).
  double pct_var_explained() const { return pct_var_explained_; }

  /// OOB prediction per training row (NaN for rows never OOB).
  const std::vector<double>& oob_predictions() const {
    return oob_predictions_;
  }

  /// Importance table sorted by descending %IncMSE. Requires
  /// params.importance at fit time.
  std::vector<VariableImportance> importance() const;

  /// Names of the top-k variables by %IncMSE.
  std::vector<std::string> top_variables(std::size_t k) const;

  /// Partial dependence of the response on `feature` over a grid of
  /// `grid_points` values spanning the observed range of that feature.
  std::vector<PartialDependencePoint> partial_dependence(
      const std::string& feature, std::size_t grid_points = 25) const;

  /// Prediction with an empirical interval: [lo, hi] are the alpha/2 and
  /// 1-alpha/2 quantiles of the individual tree predictions (alpha = 0.1
  /// gives an 80% band). Wide bands flag extrapolation or sparse regions.
  PredictionInterval predict_interval(const double* row,
                                      double alpha = 0.1) const;

  /// Allocation-free form: per-tree values and the repair buffer live in
  /// `scratch`, which the caller reuses across rows. Bit-identical to the
  /// allocating overload.
  PredictionInterval predict_interval(const double* row, double alpha,
                                      ForestScratch& scratch) const;

  /// Batch form of predict_interval, one interval per row of `x`.
  std::vector<PredictionInterval> predict_intervals(const linalg::Matrix& x,
                                                    double alpha = 0.1) const;

  /// Per-feature training medians (the predict-time repair values).
  const std::vector<double>& feature_medians() const {
    return feature_medians_;
  }

  /// Partial dependence with the same per-grid-point band (the paper's
  /// §7 "confidence intervals in the partial dependence plots").
  std::vector<PartialDependenceInterval> partial_dependence_interval(
      const std::string& feature, std::size_t grid_points = 25,
      double alpha = 0.1) const;

  std::size_t n_trees() const { return trees_.size(); }
  /// The t-th training-side tree (freeze input for ml::FlatForest).
  const RegressionTree& tree(std::size_t t) const { return trees_.at(t); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  bool fitted() const { return !trees_.empty(); }

  /// Serialise the fitted forest (trees, feature names, OOB statistics,
  /// importance accumulators and the retained training data that partial
  /// dependence needs) to a text stream / file.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  static RandomForest load(std::istream& is);
  static RandomForest load_file(const std::string& path);

 private:
  /// Repair a query row: replaces non-finite features (and the feature
  /// corrupted by an armed ml.forest.nan_feature point) with training
  /// medians. Returns the row to predict from (`row` itself when clean).
  const double* sanitize_row(const double* row,
                             std::vector<double>& buffer) const;
  void compute_feature_medians();

  std::vector<RegressionTree> trees_;
  std::vector<std::string> feature_names_;
  linalg::Matrix train_x_;           // retained for partial dependence
  std::vector<double> train_y_;
  std::vector<double> feature_medians_;  // derived from train_x_
  std::vector<double> oob_predictions_;
  double oob_mse_ = 0.0;
  double pct_var_explained_ = 0.0;
  // Permutation importance accumulators (per feature).
  std::vector<double> imp_mean_;
  std::vector<double> imp_sd_;
  std::vector<double> imp_purity_;
  bool has_importance_ = false;
};

}  // namespace bf::ml
