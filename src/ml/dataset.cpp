#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace bf::ml {

double nan_median(std::vector<double> values) {
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return !std::isfinite(v); }),
               values.end());
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo = *std::max_element(
      values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

std::vector<std::string> MissingValueReport::to_lines() const {
  std::vector<std::string> lines;
  if (!dropped_columns.empty()) {
    std::string cols;
    for (const auto& c : dropped_columns) {
      if (!cols.empty()) cols += ", ";
      cols += c;
    }
    lines.push_back("dropped " + std::to_string(dropped_columns.size()) +
                    " low-coverage column(s): " + cols);
  }
  if (!dropped_rows.empty()) {
    lines.push_back("dropped " + std::to_string(dropped_rows.size()) +
                    " row(s) with insufficient counter coverage");
  }
  if (imputed_cells > 0) {
    lines.push_back("imputed " + std::to_string(imputed_cells) +
                    " missing cell(s) with column medians across " +
                    std::to_string(imputed_columns.size()) + " column(s)");
  }
  return lines;
}

void Dataset::add_column(std::string name, std::vector<double> values) {
  BF_CHECK_MSG(!has_column(name), "duplicate column: " << name);
  if (!names_.empty()) {
    BF_CHECK_MSG(values.size() == num_rows(),
                 "column '" << name << "' has " << values.size()
                            << " rows, dataset has " << num_rows());
  }
  names_.push_back(std::move(name));
  columns_.push_back(std::move(values));
}

void Dataset::add_row(const std::vector<double>& values) {
  BF_CHECK_MSG(values.size() == names_.size(),
               "row width " << values.size() << " != " << names_.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].push_back(values[i]);
  }
}

std::size_t Dataset::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().size();
}

bool Dataset::has_column(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

std::size_t Dataset::column_index(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  BF_CHECK_MSG(it != names_.end(), "no such column: " << name);
  return static_cast<std::size_t>(it - names_.begin());
}

const std::vector<double>& Dataset::column(std::size_t i) const {
  BF_CHECK_MSG(i < columns_.size(), "column index out of range");
  return columns_[i];
}

const std::vector<double>& Dataset::column(const std::string& name) const {
  return columns_[column_index(name)];
}

std::vector<double>& Dataset::mutable_column(const std::string& name) {
  return columns_[column_index(name)];
}

double Dataset::at(std::size_t row, const std::string& name) const {
  const auto& col = column(name);
  BF_CHECK_MSG(row < col.size(), "row out of range");
  return col[row];
}

Dataset Dataset::select_rows(const std::vector<std::size_t>& rows) const {
  Dataset out;
  const std::size_t n = num_rows();
  for (std::size_t c = 0; c < names_.size(); ++c) {
    std::vector<double> col;
    col.reserve(rows.size());
    for (std::size_t r : rows) {
      BF_CHECK_MSG(r < n, "row index " << r << " out of range");
      col.push_back(columns_[c][r]);
    }
    out.add_column(names_[c], std::move(col));
  }
  return out;
}

Dataset Dataset::select_columns(
    const std::vector<std::string>& cols) const {
  Dataset out;
  for (const auto& name : cols) {
    out.add_column(name, column(name));
  }
  return out;
}

Dataset Dataset::drop_columns(const std::vector<std::string>& cols) const {
  Dataset out;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (std::find(cols.begin(), cols.end(), names_[c]) != cols.end()) {
      continue;
    }
    out.add_column(names_[c], columns_[c]);
  }
  return out;
}

std::vector<std::string> Dataset::drop_constant_columns(double tol) {
  std::vector<std::string> dropped;
  std::vector<std::string> kept_names;
  std::vector<std::vector<double>> kept_cols;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    const auto& col = columns_[c];
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const double v : col) {
      if (!std::isfinite(v)) continue;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    const double spread = mx >= mn ? mx - mn : 0.0;
    if (spread <= tol) {
      dropped.push_back(names_[c]);
    } else {
      kept_names.push_back(names_[c]);
      kept_cols.push_back(std::move(columns_[c]));
    }
  }
  names_ = std::move(kept_names);
  columns_ = std::move(kept_cols);
  return dropped;
}

bool Dataset::has_missing() const { return missing_count() > 0; }

std::size_t Dataset::missing_count() const {
  std::size_t n = 0;
  for (const auto& col : columns_) {
    for (const double v : col) n += std::isnan(v) ? 1u : 0u;
  }
  return n;
}

MissingValueReport Dataset::resolve_missing(
    double min_column_coverage, double min_row_coverage,
    const std::vector<std::string>& required) {
  BF_CHECK_MSG(min_column_coverage >= 0.0 && min_column_coverage <= 1.0,
               "min_column_coverage must be in [0,1]");
  BF_CHECK_MSG(min_row_coverage >= 0.0 && min_row_coverage <= 1.0,
               "min_row_coverage must be in [0,1]");
  MissingValueReport report;
  if (!has_missing()) return report;
  const auto is_required = [&required](const std::string& name) {
    return std::find(required.begin(), required.end(), name) !=
           required.end();
  };

  // 1. Rows with a missing required cell (e.g. the response) go first:
  //    they cannot be imputed without inventing ground truth.
  const std::size_t n = num_rows();
  std::vector<bool> keep_row(n, true);
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (!is_required(names_[c])) continue;
    for (std::size_t r = 0; r < n; ++r) {
      if (std::isnan(columns_[c][r])) keep_row[r] = false;
    }
  }

  // 2. Columns mostly made of holes carry too little signal to impute.
  std::vector<bool> keep_col(names_.size(), true);
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (is_required(names_[c])) continue;
    std::size_t finite = 0;
    std::size_t total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (!keep_row[r]) continue;
      ++total;
      if (!std::isnan(columns_[c][r])) ++finite;
    }
    const double coverage =
        total == 0 ? 0.0
                   : static_cast<double>(finite) / static_cast<double>(total);
    if (coverage < min_column_coverage) {
      keep_col[c] = false;
      report.dropped_columns.push_back(names_[c]);
    }
  }

  // 3. Rows mostly made of holes across the surviving columns.
  std::size_t cols_kept = 0;
  for (const bool k : keep_col) cols_kept += k ? 1u : 0u;
  for (std::size_t r = 0; r < n; ++r) {
    if (!keep_row[r] || cols_kept == 0) continue;
    std::size_t finite = 0;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      if (!keep_col[c]) continue;
      if (!std::isnan(columns_[c][r])) ++finite;
    }
    const double coverage =
        static_cast<double>(finite) / static_cast<double>(cols_kept);
    if (coverage < min_row_coverage) keep_row[r] = false;
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (!keep_row[r]) report.dropped_rows.push_back(r);
  }

  // Materialise the surviving table.
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (!keep_col[c]) continue;
    std::vector<double> col;
    col.reserve(n - report.dropped_rows.size());
    for (std::size_t r = 0; r < n; ++r) {
      if (keep_row[r]) col.push_back(columns_[c][r]);
    }
    names.push_back(names_[c]);
    cols.push_back(std::move(col));
  }
  names_ = std::move(names);
  columns_ = std::move(cols);

  // 4. Median imputation for whatever holes remain. A column with no
  //    finite value at all (possible when min_column_coverage == 0) has
  //    nothing to impute from and is dropped instead.
  std::vector<std::string> final_names;
  std::vector<std::vector<double>> final_cols;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    auto& col = columns_[c];
    const bool any_nan = std::any_of(
        col.begin(), col.end(), [](double v) { return std::isnan(v); });
    if (any_nan) {
      const double med = nan_median(col);
      if (!std::isfinite(med)) {
        report.dropped_columns.push_back(names_[c]);
        continue;
      }
      std::size_t imputed = 0;
      for (double& v : col) {
        if (std::isnan(v)) {
          v = med;
          ++imputed;
        }
      }
      report.imputed_cells += imputed;
      report.imputed_columns.push_back(names_[c]);
    }
    final_names.push_back(std::move(names_[c]));
    final_cols.push_back(std::move(col));
  }
  names_ = std::move(final_names);
  columns_ = std::move(final_cols);
  return report;
}

linalg::Matrix Dataset::to_matrix(
    const std::vector<std::string>& features) const {
  linalg::Matrix x(num_rows(), features.size());
  for (std::size_t j = 0; j < features.size(); ++j) {
    const auto& col = column(features[j]);
    for (std::size_t i = 0; i < col.size(); ++i) x(i, j) = col[i];
  }
  return x;
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  BF_CHECK_MSG(a.names_ == b.names_,
               "concat requires identical schemas");
  Dataset out;
  for (std::size_t c = 0; c < a.names_.size(); ++c) {
    std::vector<double> col = a.columns_[c];
    col.insert(col.end(), b.columns_[c].begin(), b.columns_[c].end());
    out.add_column(a.names_[c], std::move(col));
  }
  return out;
}

CsvTable Dataset::to_csv() const {
  CsvTable table(names_);
  const std::size_t n = num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    row.reserve(names_.size());
    for (std::size_t c = 0; c < names_.size(); ++c) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", columns_[c][r]);
      row.emplace_back(buf);
    }
    table.add_row(std::move(row));
  }
  return table;
}

Dataset Dataset::from_csv(const CsvTable& table) {
  Dataset out;
  for (std::size_t c = 0; c < table.num_cols(); ++c) {
    std::vector<double> col;
    col.reserve(table.num_rows());
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      col.push_back(table.cell_as_double(r, c));
    }
    out.add_column(table.header()[c], std::move(col));
  }
  return out;
}

TrainTestSplit train_test_split(const Dataset& ds, double test_fraction,
                                Rng& rng) {
  BF_CHECK_MSG(test_fraction >= 0.0 && test_fraction < 1.0,
               "test_fraction must be in [0,1)");
  const std::size_t n = ds.num_rows();
  BF_CHECK_MSG(n >= 2, "need at least 2 rows to split");
  std::size_t n_test =
      static_cast<std::size_t>(std::llround(test_fraction * static_cast<double>(n)));
  if (test_fraction > 0.0) n_test = std::max<std::size_t>(1, n_test);
  n_test = std::min(n_test, n - 1);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);

  TrainTestSplit out;
  out.test_indices.assign(order.begin(),
                          order.begin() + static_cast<std::ptrdiff_t>(n_test));
  out.train_indices.assign(order.begin() + static_cast<std::ptrdiff_t>(n_test),
                           order.end());
  std::sort(out.test_indices.begin(), out.test_indices.end());
  std::sort(out.train_indices.begin(), out.train_indices.end());
  out.train = ds.select_rows(out.train_indices);
  out.test = ds.select_rows(out.test_indices);
  return out;
}

}  // namespace bf::ml
