#include "ml/flat_forest.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"

namespace bf::ml {
namespace {

/// Rows per block of the batched kernel: small enough that the lane
/// state stays in registers/L1, large enough that one tree's nodes are
/// reused across the whole block.
constexpr std::size_t kRowBlock = 32;

/// Trees per tile of the batched kernel, measured in nodes: a tile is
/// sized to sit in L2, and every probe row is streamed through a tile
/// before the next tile's nodes are touched. The forest is therefore
/// pulled out of L3/DRAM once per predict() call instead of once per
/// row block — the blocking that makes batched prediction compute-bound
/// on forests much bigger than the cache.
constexpr std::size_t kTreeTileNodes = 48 * 1024;

/// Lane state of a compacted walk: which lane (tree for the single-row
/// kernel, row for the block kernel) in the low half, its current node
/// in the high half. One 8-byte load per step recovers both.
inline std::int64_t pack_lane(std::int32_t lane, std::int32_t node) {
  return static_cast<std::int64_t>(static_cast<std::uint32_t>(lane)) |
         (static_cast<std::int64_t>(node) << 32);
}

}  // namespace

const char* tree_layout_name(TreeLayout layout) {
  switch (layout) {
    case TreeLayout::kDepthFirst:
      return "df";
    case TreeLayout::kBreadthFirst:
      return "bf";
  }
  BF_CHECK_MSG(false, "unknown tree layout");
  return "?";
}

TreeLayout tree_layout_from_name(const std::string& name) {
  if (name == "df") return TreeLayout::kDepthFirst;
  if (name == "bf") return TreeLayout::kBreadthFirst;
  BF_CHECK_MSG(false, "unknown tree layout name: " << name);
  return TreeLayout::kDepthFirst;
}

FlatForest FlatForest::freeze(const RandomForest& forest, TreeLayout layout) {
  BF_CHECK_MSG(forest.fitted(), "freeze on unfitted forest");
  FlatForest out;
  out.layout_ = layout;
  out.feature_names_ = forest.feature_names();
  out.feature_medians_ = forest.feature_medians();
  BF_CHECK_MSG(out.feature_medians_.size() == out.feature_names_.size(),
               "medians/features size mismatch");

  std::size_t upper = 0;
  for (std::size_t t = 0; t < forest.n_trees(); ++t) {
    upper += forest.tree(t).node_count();
  }
  BF_CHECK_MSG(upper < static_cast<std::size_t>(
                           std::numeric_limits<std::int32_t>::max()),
               "forest too large for the flat int32 layout");
  out.nodes_.reserve(upper);
  out.roots_.reserve(forest.n_trees());

  const auto alloc_node = [&out]() {
    const auto idx = static_cast<std::int32_t>(out.nodes_.size());
    out.nodes_.push_back(FlatNode{});
    return idx;
  };

  // (source node, destination slot) work items. Depth-first consumes the
  // list as a stack, breadth-first as a queue; in both cases a node's
  // children are allocated as an adjacent pair the moment the node is
  // placed, which is what keeps right == left + 1 true for either order.
  std::vector<std::pair<std::int32_t, std::int32_t>> work;
  for (std::size_t t = 0; t < forest.n_trees(); ++t) {
    const RegressionTree& tree = forest.tree(t);
    out.roots_.push_back(alloc_node());
    work.clear();
    std::size_t head = 0;
    work.emplace_back(0, out.roots_.back());
    while (head < work.size()) {
      std::pair<std::int32_t, std::int32_t> item;
      if (layout == TreeLayout::kDepthFirst) {
        item = work.back();
        work.pop_back();
      } else {
        item = work[head++];
      }
      const auto [src, dst] = item;
      const RegressionTree::NodeView view = tree.node_view(src);
      FlatNode& node = out.nodes_[static_cast<std::size_t>(dst)];
      if (view.left == -1) {
        // Leaf: flag packed in the sign of left, feature 0 kept a valid
        // index so the stepping kernel loads unconditionally.
        node.left = -1;
        node.feature = 0;
        node.tv = view.value;
        continue;
      }
      const std::int32_t l = alloc_node();
      const std::int32_t r = alloc_node();
      BF_CHECK(r == l + 1);
      // alloc_node may have reallocated the table; re-resolve the slot.
      FlatNode& placed = out.nodes_[static_cast<std::size_t>(dst)];
      placed.left = l;
      placed.feature = view.feature;
      placed.tv = view.threshold;
      if (layout == TreeLayout::kDepthFirst) {
        work.emplace_back(view.right, r);
        work.emplace_back(view.left, l);
      } else {
        work.emplace_back(view.left, l);
        work.emplace_back(view.right, r);
      }
    }
  }
  return out;
}

const double* FlatForest::sanitize_row(const double* row,
                                       double* buffer) const {
  const std::size_t p = feature_medians_.size();
  // Same repair path as RandomForest::sanitize_row, including the
  // injected single-feature corruption, so guarded predictions stay
  // bit-identical under armed faults too.
  if (fault::should_fire(fault::points::kForestNanFeature)) {
    std::copy(row, row + p, buffer);
    buffer[0] = std::numeric_limits<double>::quiet_NaN();
    row = buffer;
  }
  for (std::size_t f = 0; f < p; ++f) {
    if (std::isfinite(row[f])) continue;
    if (row != buffer) {
      std::copy(row, row + p, buffer);
      row = buffer;
    }
    buffer[f] = feature_medians_[f];
  }
  return row;
}

void FlatForest::tree_leaf_values(const double* row, double* out,
                                  ForestScratch& scratch) const {
  const FlatNode* const nodes = nodes_.data();
  const std::size_t nt = roots_.size();
  scratch.walk_lanes.resize(nt);
  std::int64_t* const lane = scratch.walk_lanes.data();

  // Every tree is one lane of the shared walk, compacted each round: a
  // lane visits its leaf exactly once (the visit that writes the lane's
  // final value) and is then dropped from the list, so a shallow tree
  // never spins while a deep one finishes.
  std::size_t n_active = 0;
  for (std::size_t t = 0; t < nt; ++t) {
    lane[n_active++] = pack_lane(static_cast<std::int32_t>(t), roots_[t]);
  }
  while (n_active > 0) {
    std::size_t w = 0;
    for (std::size_t j = 0; j < n_active; ++j) {
      const std::int64_t e = lane[j];
      const auto t = static_cast<std::int32_t>(e);
      const auto i = static_cast<std::int32_t>(e >> 32);
      const FlatNode node = nodes[i];
      const std::int32_t nxt =
          node.left + (row[node.feature] > node.tv ? 1 : 0);
      // Unconditional: internal visits store a threshold that a later
      // visit of the same lane overwrites; the lane's last visit is its
      // leaf, whose tv is the leaf value.
      out[t] = node.tv;
      lane[w] = pack_lane(t, nxt);
      w += node.left >= 0 ? 1 : 0;
    }
    n_active = w;
  }
}

// GCC's default unroller leaves the block kernel's inner loop with one
// dependent bookkeeping chain per iteration; unrolling it lets the lanes
// of a round issue in parallel, which is the whole point of the walk.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC optimize("unroll-loops")
#endif

void FlatForest::accumulate_block(const double* rows, std::size_t p,
                                  std::size_t n, std::size_t t0,
                                  std::size_t t1, double* acc) const {
  const FlatNode* const nodes = nodes_.data();
  BF_CHECK(n >= 1 && n <= kRowBlock);

  // Tree-major: every row of the block walks the same tree before the
  // next tree's nodes are touched, so a tree's working set is pulled
  // into cache once per block instead of once per row. Within a tree the
  // rows are parked lanes: one that reached its leaf stays there (the
  // conditional move keeps idx unchanged) and the sign bits of the left
  // links, ANDed across lanes, say when every lane has parked. Leaf
  // values are added straight into the per-row accumulators; the caller
  // drives tree ranges in ascending order, so each row's sum is built in
  // tree order exactly like the pointer path.
  for (std::size_t t = t0; t < t1; ++t) {
    const std::int32_t root = roots_[t];
    std::int32_t idx[kRowBlock];
    for (std::size_t k = 0; k < n; ++k) idx[k] = root;
    for (;;) {
      std::int32_t all_done = -1;
      for (std::size_t k = 0; k < n; ++k) {
        const std::int32_t i = idx[k];
        const FlatNode node = nodes[i];
        const std::int32_t next =
            node.left + (rows[k * p + node.feature] > node.tv ? 1 : 0);
        idx[k] = node.left < 0 ? i : next;
        all_done &= node.left;
      }
      if (all_done < 0) break;
    }
    for (std::size_t k = 0; k < n; ++k) acc[k] += nodes[idx[k]].tv;
  }
}

double FlatForest::predict_row(const double* row,
                               ForestScratch& scratch) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted flat forest");
  const std::size_t nt = roots_.size();
  scratch.repaired.resize(feature_medians_.size());
  scratch.tree_values.resize(nt);
  row = sanitize_row(row, scratch.repaired.data());
  tree_leaf_values(row, scratch.tree_values.data(), scratch);
  double acc = 0.0;
  for (std::size_t t = 0; t < nt; ++t) acc += scratch.tree_values[t];
  return acc / static_cast<double>(nt);
}

double FlatForest::predict_row(const double* row) const {
  ForestScratch scratch;
  return predict_row(row, scratch);
}

void FlatForest::predict(const linalg::Matrix& x, std::vector<double>& out,
                         ForestScratch& scratch) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted flat forest");
  BF_CHECK_MSG(x.cols() == feature_names_.size(),
               "prediction matrix has wrong number of columns");
  const std::size_t nt = roots_.size();
  const std::size_t p = feature_medians_.size();
  const std::size_t n_rows = x.rows();
  out.assign(n_rows, 0.0);

  // Sanitize every row exactly once, up front (same per-row fault and
  // repair order as predict_row), into one contiguous row-major block
  // shared by all tile passes over the matrix.
  scratch.repaired.resize(n_rows * p);
  for (std::size_t r = 0; r < n_rows; ++r) {
    double* buf = scratch.repaired.data() + r * p;
    const double* s = sanitize_row(x.row_ptr(r), buf);
    if (s != buf) std::copy(s, s + p, buf);
  }

  // Freeze lays trees out consecutively, so a tree range is one
  // contiguous node span; a tile groups trees until that span outgrows
  // the L2 budget, and every row block is streamed through the tile
  // while its nodes are resident.
  const auto tree_end = [&](std::size_t t) {
    return t + 1 < nt ? static_cast<std::size_t>(roots_[t + 1])
                      : nodes_.size();
  };
  std::size_t t0 = 0;
  while (t0 < nt) {
    std::size_t t1 = t0 + 1;
    while (t1 < nt && tree_end(t1) - static_cast<std::size_t>(roots_[t0]) <=
                          kTreeTileNodes) {
      ++t1;
    }
    for (std::size_t r0 = 0; r0 < n_rows; r0 += kRowBlock) {
      const std::size_t n = std::min(kRowBlock, n_rows - r0);
      accumulate_block(scratch.repaired.data() + r0 * p, p, n, t0, t1,
                       out.data() + r0);
    }
    t0 = t1;
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    out[r] /= static_cast<double>(nt);
  }
}

std::vector<double> FlatForest::predict(const linalg::Matrix& x) const {
  std::vector<double> out;
  ForestScratch scratch;
  predict(x, out, scratch);
  return out;
}

PredictionInterval FlatForest::predict_interval(const double* row,
                                                double alpha,
                                                ForestScratch& scratch) const {
  BF_CHECK_MSG(fitted(), "predict_interval on unfitted flat forest");
  BF_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  const std::size_t nt = roots_.size();
  scratch.repaired.resize(feature_medians_.size());
  scratch.tree_values.resize(nt);
  row = sanitize_row(row, scratch.repaired.data());
  tree_leaf_values(row, scratch.tree_values.data(), scratch);
  std::vector<double>& preds = scratch.tree_values;
  // Sum before sorting: tree order first, same as the pointer path.
  double acc = 0.0;
  for (std::size_t t = 0; t < nt; ++t) acc += preds[t];
  std::sort(preds.begin(), preds.end());
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(preds.size() - 1);
    const std::size_t i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= preds.size()) return preds.back();
    return preds[i] * (1.0 - frac) + preds[i + 1] * frac;
  };
  PredictionInterval out;
  out.mean = acc / static_cast<double>(nt);
  out.lo = quantile(alpha / 2.0);
  out.hi = quantile(1.0 - alpha / 2.0);
  return out;
}

PredictionInterval FlatForest::predict_interval(const double* row,
                                                double alpha) const {
  ForestScratch scratch;
  return predict_interval(row, alpha, scratch);
}

std::vector<PredictionInterval> FlatForest::predict_intervals(
    const linalg::Matrix& x, double alpha) const {
  BF_CHECK_MSG(x.cols() == feature_names_.size(),
               "prediction matrix has wrong number of columns");
  std::vector<PredictionInterval> out;
  out.reserve(x.rows());
  ForestScratch scratch;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_interval(x.row_ptr(r), alpha, scratch));
  }
  return out;
}

void FlatForest::save(std::ostream& os) const {
  BF_CHECK_MSG(fitted(), "save on unfitted flat forest");
  os << "bf_flat_forest 1\n";
  os.precision(17);
  os << "layout " << tree_layout_name(layout_) << "\n";
  os << "features " << feature_names_.size();
  for (const auto& name : feature_names_) os << ' ' << name;
  os << "\n";
  os << "medians";
  for (const double m : feature_medians_) os << ' ' << m;
  os << "\n";
  os << "roots " << roots_.size();
  for (const std::int32_t r : roots_) os << ' ' << r;
  os << "\n";
  os << "nodes " << nodes_.size() << "\n";
  for (const FlatNode& node : nodes_) {
    os << node.left << ' ' << node.feature << ' ' << node.tv << "\n";
  }
}

FlatForest FlatForest::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_flat_forest", 1);
  (void)format_version;
  FlatForest ff;
  std::string tag;
  std::string layout_name;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> layout_name) && tag == "layout",
               "bf_flat_forest: malformed layout record");
  ff.layout_ = tree_layout_from_name(layout_name);
  std::size_t p = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> p) && tag == "features" &&
                   p >= 1 && p <= 100'000,
               "bf_flat_forest: malformed features header");
  ff.feature_names_.resize(p);
  for (auto& name : ff.feature_names_) {
    BF_CHECK_MSG(static_cast<bool>(is >> name),
                 "bf_flat_forest: truncated feature names");
  }
  BF_CHECK_MSG(static_cast<bool>(is >> tag) && tag == "medians",
               "bf_flat_forest: malformed medians record");
  ff.feature_medians_.resize(p);
  for (auto& m : ff.feature_medians_) {
    BF_CHECK_MSG(static_cast<bool>(is >> m),
                 "bf_flat_forest: truncated medians");
  }
  std::size_t n_trees = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n_trees) && tag == "roots" &&
                   n_trees >= 1 && n_trees <= 1'000'000,
               "bf_flat_forest: malformed roots header");
  ff.roots_.resize(n_trees);
  std::size_t n_nodes_hdr = 0;
  for (auto& r : ff.roots_) {
    BF_CHECK_MSG(static_cast<bool>(is >> r),
                 "bf_flat_forest: truncated root table");
  }
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n_nodes_hdr) && tag == "nodes" &&
                   n_nodes_hdr >= n_trees &&
                   n_nodes_hdr <= static_cast<std::size_t>(
                                      std::numeric_limits<std::int32_t>::max()),
               "bf_flat_forest: malformed nodes header");
  ff.nodes_.resize(n_nodes_hdr);
  const auto n_nodes = static_cast<std::int32_t>(n_nodes_hdr);
  for (std::size_t i = 0; i < n_nodes_hdr; ++i) {
    FlatNode& node = ff.nodes_[i];
    BF_CHECK_MSG(
        static_cast<bool>(is >> node.left >> node.feature >> node.tv),
        "bf_flat_forest: truncated node table");
    // Structural validation: a corrupt node table must fail the load,
    // never walk out of bounds at predict time.
    BF_CHECK_MSG(node.left == -1 ||
                     (node.left > static_cast<std::int32_t>(i) &&
                      node.left + 1 < n_nodes),
                 "bf_flat_forest: node child out of range");
    BF_CHECK_MSG(node.feature >= 0 &&
                     static_cast<std::size_t>(node.feature) < p,
                 "bf_flat_forest: node feature out of range");
  }
  for (const std::int32_t r : ff.roots_) {
    BF_CHECK_MSG(r >= 0 && r < n_nodes,
                 "bf_flat_forest: root index out of range");
  }
  return ff;
}

}  // namespace bf::ml
