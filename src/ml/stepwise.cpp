#include "ml/stepwise.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "linalg/solve.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {
namespace {

/// OLS RSS of y ~ intercept + x[:, subset]; also returns coefficients.
std::pair<double, std::vector<double>> fit_subset(
    const linalg::Matrix& x, const std::vector<double>& y,
    const std::vector<std::size_t>& subset) {
  const std::size_t n = x.rows();
  linalg::Matrix design(n, subset.size() + 1);
  for (std::size_t i = 0; i < n; ++i) {
    design(i, 0) = 1.0;
    for (std::size_t j = 0; j < subset.size(); ++j) {
      design(i, j + 1) = x(i, subset[j]);
    }
  }
  const auto sol = linalg::qr_least_squares(design, y);
  return {sol.residual_norm * sol.residual_norm, sol.coefficients};
}

}  // namespace

double StepwiseRegression::criterion_of(double rss, std::size_t n,
                                        std::size_t k) const {
  const double nn = static_cast<double>(n);
  const double safe_rss = std::max(rss, 1e-300);
  const double loglik_term = nn * std::log(safe_rss / nn);
  const double penalty = params_.criterion == StepwiseCriterion::kAic
                             ? 2.0
                             : std::log(nn);
  // k selected variables + intercept + variance = k + 2 parameters.
  return loglik_term + penalty * (static_cast<double>(k) + 2.0);
}

void StepwiseRegression::fit(const linalg::Matrix& x,
                             const std::vector<double>& y,
                             std::vector<std::string> names,
                             const StepwiseParams& params) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  BF_CHECK_MSG(n == y.size(), "X/y row mismatch");
  BF_CHECK_MSG(names.size() == p, "name count mismatch");
  BF_CHECK_MSG(n >= 3, "need at least 3 observations");
  params_ = params;
  num_inputs_ = p;
  names_ = std::move(names);

  std::vector<std::size_t> current;
  auto [rss, coef] = fit_subset(x, y, current);
  double best_crit = criterion_of(rss, n, 0);
  coef_ = coef;

  const std::size_t cap =
      params.max_variables == 0 ? p : std::min(p, params.max_variables);

  bool changed = true;
  while (changed) {
    changed = false;

    // Forward step: try adding each remaining variable.
    if (current.size() < cap) {
      double step_best = best_crit;
      std::size_t add = p;
      std::vector<double> add_coef;
      for (std::size_t j = 0; j < p; ++j) {
        if (std::find(current.begin(), current.end(), j) != current.end()) {
          continue;
        }
        auto cand = current;
        cand.push_back(j);
        if (cand.size() + 2 >= n) continue;  // keep the fit determined
        const auto [c_rss, c_coef] = fit_subset(x, y, cand);
        const double crit = criterion_of(c_rss, n, cand.size());
        if (crit < step_best - params.min_improvement) {
          step_best = crit;
          add = j;
          add_coef = c_coef;
        }
      }
      if (add != p) {
        current.push_back(add);
        best_crit = step_best;
        coef_ = add_coef;
        changed = true;
      }
    }

    // Backward step: try dropping each selected variable.
    if (current.size() > 1) {
      double step_best = best_crit;
      std::size_t drop = current.size();
      std::vector<double> drop_coef;
      for (std::size_t d = 0; d < current.size(); ++d) {
        auto cand = current;
        cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(d));
        const auto [c_rss, c_coef] = fit_subset(x, y, cand);
        const double crit = criterion_of(c_rss, n, cand.size());
        if (crit < step_best - params.min_improvement) {
          step_best = crit;
          drop = d;
          drop_coef = c_coef;
        }
      }
      if (drop != current.size()) {
        current.erase(current.begin() + static_cast<std::ptrdiff_t>(drop));
        best_crit = step_best;
        coef_ = drop_coef;
        changed = true;
      }
    }
  }

  selected_idx_ = current;
  selected_.clear();
  for (const std::size_t j : current) selected_.push_back(names_[j]);
  criterion_value_ = best_crit;

  const auto [final_rss, final_coef] = fit_subset(x, y, current);
  coef_ = final_coef;
  double tss = 0.0;
  const double ybar = mean(y);
  for (const double v : y) tss += (v - ybar) * (v - ybar);
  r_squared_ = tss > 0.0 ? 1.0 - final_rss / tss : 0.0;
}

double StepwiseRegression::predict_row(const double* row,
                                       std::size_t num_inputs) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted stepwise model");
  BF_CHECK_MSG(num_inputs == num_inputs_, "input arity mismatch");
  double acc = coef_[0];
  for (std::size_t j = 0; j < selected_idx_.size(); ++j) {
    acc += coef_[j + 1] * row[selected_idx_[j]];
  }
  return acc;
}

std::vector<double> StepwiseRegression::predict(
    const linalg::Matrix& x) const {
  BF_CHECK_MSG(x.cols() == num_inputs_, "prediction arity mismatch");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_row(x.row_ptr(i), num_inputs_);
  }
  return out;
}

}  // namespace bf::ml
