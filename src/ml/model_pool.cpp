#include "ml/model_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "linalg/solve.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {

const char* basis_name(BasisKind kind) {
  switch (kind) {
    case BasisKind::kIdentity: return "id";
    case BasisKind::kSquare: return "square";
    case BasisKind::kCube: return "cube";
    case BasisKind::kSqrt: return "sqrt";
    case BasisKind::kLog2: return "log2";
    case BasisKind::kXLog2X: return "xlog2x";
  }
  return "?";
}

double basis_eval(BasisKind kind, double x) {
  switch (kind) {
    case BasisKind::kIdentity: return x;
    case BasisKind::kSquare: return x * x;
    case BasisKind::kCube: return x * x * x;
    case BasisKind::kSqrt: return std::sqrt(std::max(0.0, x));
    case BasisKind::kLog2: return std::log2(std::max(0.0, x) + 1.0);
    case BasisKind::kXLog2X:
      return x * std::log2(std::max(0.0, x) + 1.0);
  }
  return 0.0;
}

linalg::Matrix ModelPoolRegression::build_design(
    const linalg::Matrix& x, const std::vector<Term>& terms) const {
  linalg::Matrix d(x.rows(), terms.size() + 1);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    d(i, 0) = 1.0;
    for (std::size_t t = 0; t < terms.size(); ++t) {
      d(i, t + 1) = basis_eval(terms[t].kind, x(i, terms[t].var));
    }
  }
  return d;
}

namespace {

/// Leave-chunk-out cross-validated RSS of y ~ design.
double cv_rss(const linalg::Matrix& design, const std::vector<double>& y,
              std::size_t folds) {
  const std::size_t n = design.rows();
  folds = std::min(folds, n);
  double total = 0.0;
  for (std::size_t f = 0; f < folds; ++f) {
    // Contiguous chunks keep this deterministic and simple.
    const std::size_t lo = f * n / folds;
    const std::size_t hi = (f + 1) * n / folds;
    if (lo == hi) continue;
    linalg::Matrix train(n - (hi - lo), design.cols());
    std::vector<double> ytrain;
    ytrain.reserve(n - (hi - lo));
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi) continue;
      for (std::size_t c = 0; c < design.cols(); ++c) {
        train(r, c) = design(i, c);
      }
      ytrain.push_back(y[i]);
      ++r;
    }
    if (ytrain.size() <= design.cols()) return 1e300;  // under-determined
    const auto sol = linalg::qr_least_squares(train, ytrain);
    for (std::size_t i = lo; i < hi; ++i) {
      double pred = 0.0;
      for (std::size_t c = 0; c < design.cols(); ++c) {
        pred += design(i, c) * sol.coefficients[c];
      }
      total += (y[i] - pred) * (y[i] - pred);
    }
  }
  return total;
}

}  // namespace

void ModelPoolRegression::fit(const linalg::Matrix& x,
                              const std::vector<double>& y,
                              std::vector<std::string> names,
                              const ModelPoolParams& params) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  BF_CHECK_MSG(n == y.size(), "X/y row mismatch");
  BF_CHECK_MSG(names.size() == p, "name count mismatch");
  BF_CHECK_MSG(n >= 4, "need at least 4 observations");
  num_inputs_ = p;
  names_ = std::move(names);

  static constexpr BasisKind kPool[] = {
      BasisKind::kIdentity, BasisKind::kSquare,   BasisKind::kCube,
      BasisKind::kSqrt,     BasisKind::kLog2,     BasisKind::kXLog2X};

  terms_.clear();
  double best_cv = cv_rss(build_design(x, terms_), y, params.folds);

  while (terms_.size() < params.max_terms) {
    double round_best = best_cv;
    Term round_term;
    bool found = false;
    for (std::size_t var = 0; var < p; ++var) {
      for (const BasisKind kind : kPool) {
        const bool dup = std::any_of(
            terms_.begin(), terms_.end(), [&](const Term& t) {
              return t.var == var && t.kind == kind;
            });
        if (dup) continue;
        auto cand = terms_;
        cand.push_back(Term{var, kind});
        const double cv = cv_rss(build_design(x, cand), y, params.folds);
        if (cv < round_best) {
          round_best = cv;
          round_term = Term{var, kind};
          found = true;
        }
      }
    }
    if (!found) break;
    if (best_cv > 0 &&
        (best_cv - round_best) < params.min_improvement * best_cv) {
      // Accept the term only if it still helps noticeably.
      break;
    }
    terms_.push_back(round_term);
    best_cv = round_best;
  }

  const auto design = build_design(x, terms_);
  const auto sol = linalg::qr_least_squares(design, y);
  coef_ = sol.coefficients;
  const double rss = sol.residual_norm * sol.residual_norm;
  double tss = 0.0;
  const double ybar = mean(y);
  for (const double v : y) tss += (v - ybar) * (v - ybar);
  r_squared_ = tss > 0.0 ? 1.0 - rss / tss : 0.0;
}

double ModelPoolRegression::predict_row(const double* row,
                                        std::size_t num_inputs) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted model-pool regression");
  BF_CHECK_MSG(num_inputs == num_inputs_, "input arity mismatch");
  double acc = coef_[0];
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    acc += coef_[t + 1] * basis_eval(terms_[t].kind, row[terms_[t].var]);
  }
  return acc;
}

std::vector<double> ModelPoolRegression::predict(
    const linalg::Matrix& x) const {
  BF_CHECK_MSG(x.cols() == num_inputs_, "prediction arity mismatch");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_row(x.row_ptr(i), num_inputs_);
  }
  return out;
}

std::string ModelPoolRegression::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << coef_[0];
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    const double c = coef_[t + 1];
    os << (c >= 0 ? " + " : " - ") << std::fabs(c) << "*"
       << basis_name(terms_[t].kind) << "(" << names_[terms_[t].var] << ")";
  }
  return os.str();
}

}  // namespace bf::ml
