// Flat-forest inference engine: the entire forest frozen into one
// contiguous structure-of-arrays node table, herring/FIL-style.
//
// The training-side RandomForest walks per-tree std::vector<Node> objects
// of 40-byte AoS nodes through an out-of-line call per tree — a chain of
// dependent cache misses per prediction. FlatForest freezes a fitted
// forest into one contiguous table of 16-byte node records shared by
// every tree:
//
//   left     int32   left-child index; the right child is always
//                    left + 1 (children are allocated as adjacent
//                    pairs). Leaves pack the leaf flag into the sign:
//                    left == -1.
//   feature  int32   split feature (leaves store 0, a valid index, so
//                    the stepping kernel may load unconditionally)
//   tv       double  split threshold for internal nodes, the leaf
//                    value for leaves (they are never both needed)
//
// plus a per-tree root-index table. One node costs 16 bytes instead of
// 40, a visit touches a single cache line instead of three arrays, and
// the branchy child select becomes the branchless step
//
//   i = node.left + (row[node.feature] > node.tv)
//
// which is the exact negation of the pointer tree's
// `row[f] <= thr ? left : right` for the finite values a sanitized row
// contains. Walks run as a compacted list of interleaved lanes: the
// dependent-load latency of one lane hides behind the others, and a
// lane that reaches its leaf is dropped from the list instead of
// spinning until the deepest lane finishes.
//
// Two freeze-time layouts are supported: depth-first (child pairs
// allocated as the left spine unwinds — subtree-local, good when few
// lanes run) and breadth-first (level-order — the top levels of all
// subtrees stay packed, good for wide lane counts). Both obey the
// adjacent-pair invariant, so the stepping kernel is layout-agnostic.
//
// Predictions are bit-identical to RandomForest: per-tree leaf values are
// materialised into scratch and summed sequentially in tree order
// (`acc += v; acc / n_trees`), NaN features are repaired with the same
// training medians in the same order, and the ml.forest.nan_feature fault
// point fires once per predict call exactly like the pointer path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/forest.hpp"

namespace bf::ml {

/// Node ordering chosen when a forest is frozen.
enum class TreeLayout {
  kDepthFirst,
  kBreadthFirst,
};

/// Stable one-token names ("df", "bf") for serialisation and reports.
const char* tree_layout_name(TreeLayout layout);
TreeLayout tree_layout_from_name(const std::string& name);

/// One frozen node: 16 bytes, naturally aligned, so a visit touches
/// exactly one cache line.
struct FlatNode {
  std::int32_t left = -1;   ///< left child; -1 marks a leaf
  std::int32_t feature = 0;  ///< split feature (0 on leaves, still valid)
  double tv = 0.0;           ///< threshold (internal) or value (leaf)
};

class FlatForest {
 public:
  /// Freeze a fitted forest into the flat layout. The forest keeps its
  /// training-side representation; the flat form is a pure view for
  /// inference (pruned-dead nodes are dropped in the process).
  static FlatForest freeze(const RandomForest& forest,
                           TreeLayout layout = TreeLayout::kDepthFirst);

  /// Predict one row, bit-identical to RandomForest::predict_row.
  double predict_row(const double* row, ForestScratch& scratch) const;
  /// Convenience overload that allocates its own scratch.
  double predict_row(const double* row) const;

  /// Batched prediction over the rows of `x`. The forest is split into
  /// L2-sized tiles of consecutive trees and every block of rows is
  /// streamed through a tile while its nodes are cache-resident, so the
  /// node table is pulled from outer memory once per call instead of
  /// once per row. Per-row sums are still accumulated in ascending tree
  /// order, so results match predict_row exactly.
  void predict(const linalg::Matrix& x, std::vector<double>& out,
               ForestScratch& scratch) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  /// Prediction with the empirical per-tree interval, bit-identical to
  /// RandomForest::predict_interval. After the call scratch.tree_values
  /// holds the sorted per-tree leaf values (quantile input).
  PredictionInterval predict_interval(const double* row, double alpha,
                                      ForestScratch& scratch) const;
  PredictionInterval predict_interval(const double* row,
                                      double alpha = 0.1) const;
  std::vector<PredictionInterval> predict_intervals(const linalg::Matrix& x,
                                                    double alpha = 0.1) const;

  std::size_t n_trees() const { return roots_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  bool fitted() const { return !roots_.empty(); }
  TreeLayout layout() const { return layout_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<double>& feature_medians() const {
    return feature_medians_;
  }

  /// Serialise the frozen form ("bf_flat_forest 1"): layout, features,
  /// repair medians, root table and the node arrays. This is what
  /// .bfmodel bundles store, so serving never rebuilds pointer trees.
  void save(std::ostream& os) const;
  static FlatForest load(std::istream& is);

 private:
  /// Same repair semantics as RandomForest::sanitize_row, over a raw
  /// buffer of feature-count capacity. Returns the row to predict from
  /// (`row` itself when clean).
  const double* sanitize_row(const double* row, double* buffer) const;

  /// Per-tree leaf values for one sanitized row: every tree is a lane in
  /// one compacted walk list (scratch provides the lane state).
  void tree_leaf_values(const double* row, double* out,
                        ForestScratch& scratch) const;
  /// Walk trees [t0, t1) for `n` sanitized rows (row-major, stride `p`)
  /// and add each tree's leaf value into acc[k], in tree order.
  void accumulate_block(const double* rows, std::size_t p, std::size_t n,
                        std::size_t t0, std::size_t t1, double* acc) const;

  TreeLayout layout_ = TreeLayout::kDepthFirst;
  std::vector<std::int32_t> roots_;
  std::vector<FlatNode> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> feature_medians_;
};

}  // namespace bf::ml
