// CART regression tree (Breiman et al.), the base learner of the random
// forest. Splits greedily minimise the within-node sum of squared errors
// (paper eq. 3); leaves predict the node mean (paper eq. 1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace bf::ml {

struct TreeParams {
  /// Minimum observations in a node for it to be split further. The paper
  /// quotes the classic default of 5 for regression.
  std::size_t min_node_size = 5;
  /// Maximum tree depth (0 = unlimited). Forests grow unpruned trees.
  std::size_t max_depth = 0;
  /// Number of candidate features per split; 0 = use all features
  /// (plain CART). Random forests pass mtry ~ p/3.
  std::size_t mtry = 0;
};

class RegressionTree {
 public:
  /// Fit on rows `sample` (with multiplicity — a bootstrap sample) of the
  /// design matrix. `rng` drives the per-node feature subsampling.
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           const std::vector<std::size_t>& sample, const TreeParams& params,
           Rng& rng);

  /// Convenience: fit on all rows.
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           const TreeParams& params, Rng& rng);

  double predict_row(const double* row) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;
  bool fitted() const { return !nodes_.empty(); }

  /// Sum over internal nodes of the SSE decrease attributed to each
  /// feature — the "impurity" flavour of variable importance.
  std::vector<double> impurity_importance(std::size_t num_features) const;

  /// Read-only view of one node, for freezing the tree into flat
  /// inference layouts (ml::FlatForest) without exposing the node table.
  struct NodeView {
    std::int32_t left = -1;     ///< -1 for leaves
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;
  };
  NodeView node_view(std::int32_t id) const;

  /// Serialise the node table as one text line per node.
  void save(std::ostream& os) const;
  /// Reconstruct a tree saved by save(); throws bf::Error on bad input.
  static RegressionTree load(std::istream& is);

  /// Cost-complexity (weakest-link) pruning, as §4.1.1 of the paper
  /// describes for standalone trees: repeatedly collapse the internal
  /// node whose subtree buys the least SSE per leaf until every remaining
  /// subtree earns at least `alpha` SSE per pruned leaf. Forests use
  /// unpruned trees; this is for single-tree modelling and for the
  /// pruning-ablation tests. Returns the number of collapsed nodes.
  std::size_t prune(double alpha);

 private:
  struct Node {
    // Internal nodes: feature/threshold and child links.
    // Leaves: left == -1 and `value` holds the prediction.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    double sse_decrease = 0.0;
  };

  std::int32_t build_node(const linalg::Matrix& x,
                          const std::vector<double>& y,
                          std::vector<std::size_t>& rows, std::size_t begin,
                          std::size_t end, std::size_t depth,
                          const TreeParams& params, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace bf::ml
