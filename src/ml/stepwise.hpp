// Stepwise linear regression — the statistical engine of Stargazer
// (Jia, Shaw, Martonosi, ISPASS 2012), one of the related-work baselines
// the paper positions BlackForest against (§2).
//
// Forward selection with backward pruning under an information criterion
// (AIC by default): at each step add the variable whose inclusion most
// improves the criterion, then drop any variable whose removal improves
// it, until neither helps. The selection order doubles as a variable-
// importance ranking, which is exactly how Stargazer identifies the most
// influential parameters.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bf::ml {

enum class StepwiseCriterion { kAic, kBic };

struct StepwiseParams {
  StepwiseCriterion criterion = StepwiseCriterion::kAic;
  /// Hard cap on selected variables (0 = no cap).
  std::size_t max_variables = 0;
  /// Stop when the criterion improves by less than this.
  double min_improvement = 1e-6;
};

class StepwiseRegression {
 public:
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           std::vector<std::string> names, const StepwiseParams& params = {});

  double predict_row(const double* row, std::size_t num_inputs) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  /// Selected variables in order of entry (Stargazer's influence ranking).
  const std::vector<std::string>& selected() const { return selected_; }
  /// Criterion value of the final model.
  double criterion_value() const { return criterion_value_; }
  double r_squared() const { return r_squared_; }
  bool fitted() const { return !coef_.empty(); }

 private:
  double criterion_of(double rss, std::size_t n, std::size_t k) const;

  StepwiseParams params_;
  std::size_t num_inputs_ = 0;
  std::vector<std::string> names_;
  std::vector<std::size_t> selected_idx_;
  std::vector<std::string> selected_;
  std::vector<double> coef_;  ///< intercept + one per selected variable
  double criterion_value_ = 0.0;
  double r_squared_ = 0.0;
};

}  // namespace bf::ml
