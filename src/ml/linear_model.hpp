// (Generalised) linear models for counter modelling.
//
// Stage 5 of the paper's methodology fits each retained counter as a
// function of problem characteristics; "unless confronted with trivial
// cases … (generalized) linear models are adequate". We provide ordinary
// least squares on a configurable polynomial/log basis, plus a Gaussian GLM
// with a log link (fit by IRLS) for strictly positive counters, and report
// the residual deviance the paper quotes for the MM counter models.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bf::ml {

enum class LinkFunction {
  kIdentity,  ///< ordinary least squares
  kLog,       ///< Gaussian GLM with log link (IRLS)
};

struct GlmParams {
  LinkFunction link = LinkFunction::kIdentity;
  /// Polynomial degree of the basis expansion of each input (>=1).
  int degree = 2;
  /// Also include log2(x+1) of each input in the basis — counters are
  /// frequently polynomial in the problem size's logarithm.
  bool log_terms = true;
  int max_irls_iter = 50;
  double irls_tol = 1e-9;
};

/// A fitted (generalised) linear model y ~ basis(x).
class Glm {
 public:
  /// Fit with rows of `x` as observations of the raw inputs; the basis
  /// expansion declared in `params` is applied internally.
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           const GlmParams& params = {});

  double predict_row(const double* row, std::size_t num_inputs) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  /// Residual deviance: for the Gaussian family this is the residual sum
  /// of squares on the response scale (what R's glm reports).
  double residual_deviance() const { return residual_deviance_; }
  /// Null deviance (intercept-only model), for pseudo-R^2.
  double null_deviance() const { return null_deviance_; }
  double r_squared() const;

  const std::vector<double>& coefficients() const { return coef_; }
  bool fitted() const { return !coef_.empty(); }

  /// Serialise the fitted model (basis parameters + coefficients) so a
  /// .bfmodel bundle can round-trip it bit for bit.
  void save(std::ostream& os) const;
  static Glm load(std::istream& is);

 private:
  std::vector<double> expand_basis(const double* row,
                                   std::size_t num_inputs) const;

  GlmParams params_;
  std::size_t num_inputs_ = 0;
  std::vector<double> coef_;
  double residual_deviance_ = 0.0;
  double null_deviance_ = 0.0;
};

}  // namespace bf::ml
