#include "ml/mars.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "linalg/solve.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {

double Mars::eval_term(const Term& term, const double* row) const {
  double v = 1.0;
  for (const Hinge& h : term.hinges) {
    const double x = row[h.var];
    if (h.direction > 0) {
      v *= std::max(x - h.knot, 0.0);
    } else if (h.direction < 0) {
      v *= std::max(h.knot - x, 0.0);
    } else {
      v *= x;
    }
    if (v == 0.0) return 0.0;
  }
  return v;
}

linalg::Matrix Mars::build_design(const linalg::Matrix& x,
                                  const std::vector<Term>& terms) const {
  linalg::Matrix d(x.rows(), terms.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_ptr(i);
    for (std::size_t t = 0; t < terms.size(); ++t) {
      d(i, t) = eval_term(terms[t], row);
    }
  }
  return d;
}

double Mars::gcv_of(double rss, std::size_t n, std::size_t n_terms) const {
  // Effective parameters: terms + penalty * knots (knots ~ terms - 1).
  const double penalty =
      params_.penalty >= 0 ? params_.penalty
                           : (params_.max_degree > 1 ? 3.0 : 2.0);
  const double eff = static_cast<double>(n_terms) +
                     penalty * 0.5 * static_cast<double>(n_terms - 1);
  const double nn = static_cast<double>(n);
  const double denom = 1.0 - std::min(eff / nn, 0.99);
  return rss / nn / (denom * denom);
}

void Mars::fit(const linalg::Matrix& x, const std::vector<double>& y,
               const MarsParams& params) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  BF_CHECK_MSG(n == y.size(), "X/y row mismatch");
  BF_CHECK_MSG(n >= 4, "MARS needs at least 4 observations");
  BF_CHECK_MSG(p >= 1, "MARS needs at least one input");
  params_ = params;
  num_inputs_ = p;

  // Candidate knots per variable: distinct quantiles of observed values,
  // excluding the extremes (a hinge at the max/min is degenerate).
  std::vector<std::vector<double>> knots(p);
  for (std::size_t j = 0; j < p; ++j) {
    std::vector<double> vals = x.column_vec(j);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    if (vals.size() <= 2) continue;
    const std::size_t interior = vals.size() - 2;
    const std::size_t take = std::min(params.max_knots_per_var, interior);
    for (std::size_t k = 0; k < take; ++k) {
      const std::size_t idx =
          1 + (k * interior) / take;  // spread across the interior
      knots[j].push_back(vals[idx]);
    }
    knots[j].erase(std::unique(knots[j].begin(), knots[j].end()),
                   knots[j].end());
  }

  // ---- Forward pass ----
  std::vector<Term> terms;
  terms.push_back(Term{});  // intercept

  double y_ss = 0.0;
  {
    const double ybar = mean(y);
    for (double v : y) y_ss += (v - ybar) * (v - ybar);
  }
  if (y_ss <= 0.0) {
    // Constant response: intercept-only model.
    terms_ = terms;
    coef_ = {mean(y)};
    gcv_ = 0.0;
    r_squared_ = 0.0;
    return;
  }

  linalg::Matrix design = build_design(x, terms);
  double best_rss = y_ss;

  while (terms.size() + 2 <= params.max_terms) {
    double round_best_rss = best_rss;
    std::size_t best_parent = 0;
    Hinge best_hinge;
    bool found = false;

    for (std::size_t parent = 0; parent < terms.size(); ++parent) {
      const int parent_degree = static_cast<int>(terms[parent].hinges.size());
      if (parent_degree >= params.max_degree) continue;
      for (std::size_t j = 0; j < p; ++j) {
        // earth disallows a variable appearing twice in one term.
        bool var_in_parent = false;
        for (const Hinge& h : terms[parent].hinges) {
          if (h.var == j) var_in_parent = true;
        }
        if (var_in_parent) continue;

        for (double knot : knots[j]) {
          // Candidate design = current + reflected pair.
          std::vector<Term> cand = terms;
          Term pos = terms[parent];
          pos.hinges.push_back(Hinge{j, knot, +1});
          Term neg = terms[parent];
          neg.hinges.push_back(Hinge{j, knot, -1});
          cand.push_back(pos);
          cand.push_back(neg);

          const linalg::Matrix cd = build_design(x, cand);
          const auto sol = linalg::qr_least_squares(cd, y);
          const double rss = sol.residual_norm * sol.residual_norm;
          if (rss < round_best_rss - 1e-12) {
            round_best_rss = rss;
            best_parent = parent;
            best_hinge = Hinge{j, knot, +1};
            found = true;
          }
        }
      }
    }

    if (!found) break;
    if ((best_rss - round_best_rss) < params.min_rss_improvement * y_ss) {
      break;
    }
    Term pos = terms[best_parent];
    pos.hinges.push_back(best_hinge);
    Term neg = terms[best_parent];
    best_hinge.direction = -1;
    neg.hinges.push_back(best_hinge);
    terms.push_back(pos);
    terms.push_back(neg);
    best_rss = round_best_rss;
  }

  // ---- Backward pruning by GCV ----
  // Iteratively delete the term whose removal best improves GCV, keeping
  // the best subset seen (the intercept never leaves).
  std::vector<Term> current = terms;
  auto fit_subset = [&](const std::vector<Term>& subset)
      -> std::pair<std::vector<double>, double> {
    const linalg::Matrix d = build_design(x, subset);
    const auto sol = linalg::qr_least_squares(d, y);
    return {sol.coefficients, sol.residual_norm * sol.residual_norm};
  };

  auto [cur_coef, cur_rss] = fit_subset(current);
  std::vector<Term> best_terms = current;
  std::vector<double> best_coef = cur_coef;
  double best_gcv = gcv_of(cur_rss, n, current.size());
  double best_terms_rss = cur_rss;

  while (current.size() > 1) {
    double round_gcv = std::numeric_limits<double>::infinity();
    std::size_t drop = 0;
    std::vector<double> round_coef;
    double round_rss = 0.0;
    for (std::size_t t = 1; t < current.size(); ++t) {  // keep intercept
      std::vector<Term> subset;
      subset.reserve(current.size() - 1);
      for (std::size_t u = 0; u < current.size(); ++u) {
        if (u != t) subset.push_back(current[u]);
      }
      const auto [c, rss] = fit_subset(subset);
      const double g = gcv_of(rss, n, subset.size());
      if (g < round_gcv) {
        round_gcv = g;
        drop = t;
        round_coef = c;
        round_rss = rss;
      }
    }
    if (!std::isfinite(round_gcv)) break;
    current.erase(current.begin() + static_cast<std::ptrdiff_t>(drop));
    if (round_gcv < best_gcv) {
      best_gcv = round_gcv;
      best_terms = current;
      best_coef = round_coef;
      best_terms_rss = round_rss;
    }
  }

  terms_ = std::move(best_terms);
  coef_ = std::move(best_coef);
  gcv_ = best_gcv;
  r_squared_ = 1.0 - best_terms_rss / y_ss;
}

double Mars::predict_row(const double* row, std::size_t num_inputs) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted MARS model");
  BF_CHECK_MSG(num_inputs == num_inputs_, "input arity mismatch");
  double acc = 0.0;
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    acc += coef_[t] * eval_term(terms_[t], row);
  }
  return acc;
}

std::vector<double> Mars::predict(const linalg::Matrix& x) const {
  BF_CHECK_MSG(x.cols() == num_inputs_, "prediction arity mismatch");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_row(x.row_ptr(i), num_inputs_);
  }
  return out;
}

std::string Mars::to_string(const std::vector<std::string>& var_names) const {
  auto var_label = [&](std::size_t v) -> std::string {
    if (v < var_names.size()) return var_names[v];
    std::ostringstream os;
    os << "x" << v;
    return os.str();
  };
  std::ostringstream os;
  os.precision(4);
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    const double c = coef_[t];
    if (t == 0) {
      os << c;
      continue;
    }
    os << (c >= 0 ? " + " : " - ") << std::fabs(c);
    for (const Hinge& h : terms_[t].hinges) {
      if (h.direction > 0) {
        os << "*h(" << var_label(h.var) << "-" << h.knot << ")";
      } else if (h.direction < 0) {
        os << "*h(" << h.knot << "-" << var_label(h.var) << ")";
      } else {
        os << "*" << var_label(h.var);
      }
    }
  }
  return os.str();
}

void Mars::save(std::ostream& os) const {
  // An unfitted model (0 terms) is a legal record: counter-model entries
  // only fit the members their chain actually uses.
  os.precision(17);
  os << "bf_mars 1\n";
  os << params_.max_terms << ' ' << params_.max_degree << ' '
     << params_.penalty << ' ' << params_.min_rss_improvement << ' '
     << params_.max_knots_per_var << "\n";
  os << num_inputs_ << ' ' << terms_.size() << ' ' << gcv_ << ' '
     << r_squared_ << "\n";
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    os << coef_[t] << ' ' << terms_[t].hinges.size();
    for (const Hinge& h : terms_[t].hinges) {
      os << ' ' << h.var << ' ' << h.knot << ' ' << h.direction;
    }
    os << "\n";
  }
}

Mars Mars::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_mars", 1);
  (void)format_version;
  Mars m;
  std::size_t n_terms = 0;
  BF_CHECK_MSG(
      static_cast<bool>(is >> m.params_.max_terms >> m.params_.max_degree >>
                        m.params_.penalty >> m.params_.min_rss_improvement >>
                        m.params_.max_knots_per_var >> m.num_inputs_ >>
                        n_terms >> m.gcv_ >> m.r_squared_),
      "malformed bf_mars record");
  BF_CHECK_MSG(n_terms <= 100'000, "bf_mars: implausible term count");
  m.terms_.resize(n_terms);
  m.coef_.resize(n_terms);
  for (std::size_t t = 0; t < n_terms; ++t) {
    std::size_t n_hinges = 0;
    BF_CHECK_MSG(static_cast<bool>(is >> m.coef_[t] >> n_hinges),
                 "bf_mars: truncated term header");
    BF_CHECK_MSG(n_hinges <= 64, "bf_mars: implausible hinge count");
    m.terms_[t].hinges.resize(n_hinges);
    for (Hinge& h : m.terms_[t].hinges) {
      BF_CHECK_MSG(static_cast<bool>(is >> h.var >> h.knot >> h.direction),
                   "bf_mars: truncated hinge");
      BF_CHECK_MSG(h.var < m.num_inputs_ && h.direction >= -1 &&
                       h.direction <= 1,
                   "bf_mars: hinge out of range");
    }
  }
  return m;
}

}  // namespace bf::ml
