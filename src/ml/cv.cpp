#include "ml/cv.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {

CvResult kfold_cv(
    const Dataset& ds, const std::string& response, std::size_t folds,
    Rng& rng,
    const std::function<std::vector<double>(const Dataset&,
                                            const Dataset&)>& fit_predict) {
  const std::size_t n = ds.num_rows();
  BF_CHECK_MSG(folds >= 2, "need at least 2 folds");
  BF_CHECK_MSG(n >= folds, "need at least one row per fold");
  BF_CHECK_MSG(ds.has_column(response), "missing response column");
  BF_CHECK_MSG(static_cast<bool>(fit_predict), "missing fit_predict");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  CvResult out;
  out.predictions.assign(n, std::numeric_limits<double>::quiet_NaN());
  const auto& truth = ds.column(response);

  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % folds == f) {
        test_rows.push_back(order[i]);
      } else {
        train_rows.push_back(order[i]);
      }
    }
    const Dataset train = ds.select_rows(train_rows);
    const Dataset test = ds.select_rows(test_rows);
    const auto pred = fit_predict(train, test);
    BF_CHECK_MSG(pred.size() == test_rows.size(),
                 "fit_predict returned " << pred.size() << " predictions for "
                                         << test_rows.size() << " rows");
    std::vector<double> fold_truth;
    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      out.predictions[test_rows[i]] = pred[i];
      fold_truth.push_back(truth[test_rows[i]]);
    }
    out.fold_mse.push_back(mse(fold_truth, pred));
  }

  out.mean_mse = mean(out.fold_mse);
  out.sd_mse = sample_sd(out.fold_mse);
  return out;
}

double cv_rmse(const Dataset& ds, const std::string& response,
               std::size_t folds, std::uint64_t seed,
               const std::function<std::vector<double>(const Dataset&,
                                                       const Dataset&)>&
                   fit_predict) {
  const std::size_t n = ds.num_rows();
  if (n < 2) return std::numeric_limits<double>::infinity();
  folds = std::min(folds, n);
  if (folds < 2) folds = 2;
  try {
    Rng rng(seed);
    const CvResult result = kfold_cv(ds, response, folds, rng, fit_predict);
    if (!std::isfinite(result.mean_mse)) {
      return std::numeric_limits<double>::infinity();
    }
    return std::sqrt(std::max(0.0, result.mean_mse));
  } catch (const Error&) {
    // A model that cannot even fit its folds ranks last, not fatal.
    return std::numeric_limits<double>::infinity();
  }
}

}  // namespace bf::ml
