#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bf::ml {
namespace {

void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  BF_CHECK_MSG(a.size() == b.size() && !a.empty(),
               "metric needs equal-length non-empty vectors");
}

}  // namespace

double mse(const std::vector<double>& y_true,
           const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return acc / static_cast<double>(y_true.size());
}

double rmse(const std::vector<double>& y_true,
            const std::vector<double>& y_pred) {
  return std::sqrt(mse(y_true, y_pred));
}

double mae(const std::vector<double>& y_true,
           const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    acc += std::fabs(y_true[i] - y_pred[i]);
  }
  return acc / static_cast<double>(y_true.size());
}

double median_abs_pct_error(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred, double eps) {
  check_sizes(y_true, y_pred);
  std::vector<double> errs;
  errs.reserve(y_true.size());
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (std::fabs(y_true[i]) < eps) continue;
    errs.push_back(100.0 * std::fabs(y_pred[i] - y_true[i]) /
                   std::fabs(y_true[i]));
  }
  if (errs.empty()) return 0.0;
  std::sort(errs.begin(), errs.end());
  const std::size_t n = errs.size();
  return (n % 2 == 1) ? errs[n / 2] : 0.5 * (errs[n / 2 - 1] + errs[n / 2]);
}

double r2(const std::vector<double>& y_true,
          const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  const double m = mean(y_true);
  double rss = 0.0;
  double tss = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    const double t = y_true[i] - m;
    rss += d * d;
    tss += t * t;
  }
  if (tss <= 0.0) return rss <= 0.0 ? 0.0 : -1.0;
  return 1.0 - rss / tss;
}

double explained_variance(const std::vector<double>& y_true,
                          const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  const double var = variance(y_true);
  if (var <= 0.0) return 0.0;
  return 1.0 - mse(y_true, y_pred) / var;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double sample_sd(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  check_sizes(a, b);
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace bf::ml
