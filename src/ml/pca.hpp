// Principal component analysis with varimax rotation.
//
// The paper's refinement stage (§4.2) runs PCA over the counter data
// (R prcomp) and applies varimax rotation so that each retained component
// loads strongly on a small group of counters; the factor loadings are then
// interpreted as performance facets (memory intensity, ILP/MIMD
// parallelism, SIMD efficiency, memory-subsystem throughput — §5.2).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bf::ml {

struct PcaParams {
  /// Standardise columns to unit variance before the eigendecomposition
  /// (prcomp's scale.=TRUE). Required when counters live on wildly
  /// different scales, which they always do.
  bool scale = true;
  /// Keep components until this fraction of total variance is covered.
  double variance_target = 0.97;
  /// Hard cap on retained components (0 = no cap).
  std::size_t max_components = 0;
};

class Pca {
 public:
  /// Fit on a data matrix (rows = observations, cols = variables).
  void fit(const linalg::Matrix& x, std::vector<std::string> variable_names,
           const PcaParams& params = {});

  std::size_t num_components() const { return sdev_.size(); }
  std::size_t num_retained() const { return retained_; }

  /// Standard deviation of each component (sqrt of eigenvalue).
  const std::vector<double>& sdev() const { return sdev_; }

  /// Proportion of variance per component, and the cumulative curve.
  std::vector<double> variance_proportion() const;
  std::vector<double> cumulative_variance() const;

  /// Rotation matrix: column j holds the loadings of component j on the
  /// original variables (prcomp's `rotation`).
  const linalg::Matrix& rotation() const { return rotation_; }

  /// Scores of the training data on all components.
  const linalg::Matrix& scores() const { return scores_; }

  const std::vector<std::string>& variable_names() const { return names_; }

  /// Project new observations into component space (applies the stored
  /// centering/scaling).
  linalg::Matrix transform(const linalg::Matrix& x) const;

  /// Loading of variable `var` on retained component `comp` (0-based),
  /// after varimax if `varimax_loadings` was computed, else raw.
  double loading(const std::string& var, std::size_t comp) const;

  /// Varimax-rotate the loadings of the retained components; returns the
  /// rotated loading matrix (vars x retained). Subsequent loading() calls
  /// use the rotated values.
  const linalg::Matrix& varimax(int max_iter = 100, double tol = 1e-8);

  /// For each retained component, the variables with |loading| >= cutoff,
  /// sorted by |loading| descending. Pairs of (name, loading).
  std::vector<std::vector<std::pair<std::string, double>>> strong_loadings(
      double cutoff = 0.3) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> center_;
  std::vector<double> scale_;
  std::vector<double> sdev_;
  linalg::Matrix rotation_;   // p x p
  linalg::Matrix scores_;     // n x p
  linalg::Matrix rotated_;    // p x retained (after varimax)
  bool have_rotated_ = false;
  std::size_t retained_ = 0;
};

}  // namespace bf::ml
