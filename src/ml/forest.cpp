#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <fstream>
#include <mutex>
#include <numeric>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "common/thread_pool.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {
namespace {

// Per-tree training artefacts gathered before cross-tree aggregation.
struct TreeFitResult {
  RegressionTree tree;
  std::vector<std::size_t> oob_rows;
  // OOB MSE increase per permuted feature, and the baseline OOB MSE.
  std::vector<double> perm_increase;
  double oob_mse = 0.0;
};

TreeFitResult fit_one_tree(const linalg::Matrix& x,
                           const std::vector<double>& y,
                           const TreeParams& tree_params, bool importance,
                           Rng rng) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  TreeFitResult out;

  const std::vector<std::size_t> sample = rng.bootstrap_indices(n);
  std::vector<bool> in_bag(n, false);
  for (std::size_t r : sample) in_bag[r] = true;
  for (std::size_t r = 0; r < n; ++r) {
    if (!in_bag[r]) out.oob_rows.push_back(r);
  }

  out.tree.fit(x, y, sample, tree_params, rng);

  if (!importance || out.oob_rows.empty()) return out;

  // Baseline OOB error for this tree.
  std::vector<double> oob_true;
  std::vector<double> oob_pred;
  oob_true.reserve(out.oob_rows.size());
  oob_pred.reserve(out.oob_rows.size());
  for (std::size_t r : out.oob_rows) {
    oob_true.push_back(y[r]);
    oob_pred.push_back(out.tree.predict_row(x.row_ptr(r)));
  }
  out.oob_mse = mse(oob_true, oob_pred);

  // Permute each feature among the OOB rows and re-measure.
  out.perm_increase.assign(p, 0.0);
  std::vector<double> row(p);
  std::vector<std::size_t> perm(out.oob_rows.size());
  for (std::size_t f = 0; f < p; ++f) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.oob_rows.size(); ++i) {
      const std::size_t r = out.oob_rows[i];
      const std::size_t donor = out.oob_rows[perm[i]];
      const double* src = x.row_ptr(r);
      std::copy(src, src + p, row.begin());
      row[f] = x(donor, f);
      const double d = y[r] - out.tree.predict_row(row.data());
      acc += d * d;
    }
    const double permuted_mse =
        acc / static_cast<double>(out.oob_rows.size());
    out.perm_increase[f] = permuted_mse - out.oob_mse;
  }
  return out;
}

}  // namespace

void RandomForest::fit(const linalg::Matrix& x, const std::vector<double>& y,
                       std::vector<std::string> feature_names,
                       const ForestParams& params) {
  BF_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  BF_CHECK_MSG(x.rows() >= 2, "need at least 2 training rows");
  BF_CHECK_MSG(feature_names.size() == x.cols(),
               "feature_names size mismatch: " << feature_names.size()
                                               << " vs " << x.cols()
                                               << " columns");
  BF_CHECK_MSG(params.n_trees >= 1, "need at least one tree");

  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  feature_names_ = std::move(feature_names);
  train_x_ = x;
  train_y_ = y;
  has_importance_ = params.importance;

  TreeParams tree_params;
  tree_params.min_node_size = params.min_node_size;
  tree_params.max_depth = params.max_depth;
  tree_params.mtry =
      params.mtry != 0 ? params.mtry : std::max<std::size_t>(1, p / 3);

  Rng master(params.seed);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(params.n_trees);
  for (std::size_t t = 0; t < params.n_trees; ++t) {
    tree_rngs.push_back(master.split());
  }

  std::vector<TreeFitResult> results(params.n_trees);
  const auto fit_tree = [&](std::size_t t) {
    results[t] =
        fit_one_tree(x, y, tree_params, params.importance, tree_rngs[t]);
  };
  if (params.threads <= 1) {
    for (std::size_t t = 0; t < params.n_trees; ++t) fit_tree(t);
  } else {
    ThreadPool pool(params.threads);
    pool.parallel_for(0, params.n_trees, fit_tree);
  }

  // Aggregate trees, OOB votes and importance.
  trees_.clear();
  trees_.reserve(params.n_trees);
  std::vector<double> oob_sum(n, 0.0);
  std::vector<std::size_t> oob_count(n, 0);
  std::vector<double> imp_sum(p, 0.0);
  std::vector<double> imp_sq(p, 0.0);
  std::size_t imp_trees = 0;

  for (auto& res : results) {
    for (std::size_t r : res.oob_rows) {
      oob_sum[r] += res.tree.predict_row(x.row_ptr(r));
      oob_count[r] += 1;
    }
    if (!res.perm_increase.empty()) {
      for (std::size_t f = 0; f < p; ++f) {
        imp_sum[f] += res.perm_increase[f];
        imp_sq[f] += res.perm_increase[f] * res.perm_increase[f];
      }
      ++imp_trees;
    }
    trees_.push_back(std::move(res.tree));
  }

  oob_predictions_.assign(n, std::numeric_limits<double>::quiet_NaN());
  std::vector<double> covered_true;
  std::vector<double> covered_pred;
  for (std::size_t r = 0; r < n; ++r) {
    if (oob_count[r] == 0) continue;
    oob_predictions_[r] = oob_sum[r] / static_cast<double>(oob_count[r]);
    covered_true.push_back(y[r]);
    covered_pred.push_back(oob_predictions_[r]);
  }
  if (!covered_true.empty()) {
    oob_mse_ = mse(covered_true, covered_pred);
    const double var = variance(train_y_);
    pct_var_explained_ = var > 0.0 ? 100.0 * (1.0 - oob_mse_ / var) : 0.0;
  } else {
    oob_mse_ = 0.0;
    pct_var_explained_ = 0.0;
  }

  imp_mean_.assign(p, 0.0);
  imp_sd_.assign(p, 0.0);
  imp_purity_.assign(p, 0.0);
  if (params.importance && imp_trees > 0) {
    const double nt = static_cast<double>(imp_trees);
    for (std::size_t f = 0; f < p; ++f) {
      imp_mean_[f] = imp_sum[f] / nt;
      const double var_f =
          std::max(0.0, imp_sq[f] / nt - imp_mean_[f] * imp_mean_[f]);
      imp_sd_[f] = std::sqrt(var_f);
    }
    for (const auto& tree : trees_) {
      const auto purity = tree.impurity_importance(p);
      for (std::size_t f = 0; f < p; ++f) imp_purity_[f] += purity[f];
    }
  }
  compute_feature_medians();
}

void RandomForest::compute_feature_medians() {
  const std::size_t n = train_x_.rows();
  const std::size_t p = train_x_.cols();
  feature_medians_.assign(p, 0.0);
  if (n == 0) return;
  std::vector<double> col(n);
  for (std::size_t f = 0; f < p; ++f) {
    for (std::size_t r = 0; r < n; ++r) col[r] = train_x_(r, f);
    std::sort(col.begin(), col.end());
    feature_medians_[f] =
        n % 2 == 1 ? col[n / 2] : 0.5 * (col[n / 2 - 1] + col[n / 2]);
  }
}

const double* RandomForest::sanitize_row(const double* row,
                                         std::vector<double>& buffer) const {
  const std::size_t p = feature_names_.size();
  // Injected corruption: one feature becomes NaN before the trees see
  // it, exercising the same repair path real dropped counters take.
  if (fault::should_fire(fault::points::kForestNanFeature)) {
    buffer.assign(row, row + p);
    buffer[0] = std::numeric_limits<double>::quiet_NaN();
    row = buffer.data();
  }
  for (std::size_t f = 0; f < p; ++f) {
    if (std::isfinite(row[f])) continue;
    if (buffer.empty()) {
      buffer.assign(row, row + p);
      row = buffer.data();
    }
    buffer[f] = feature_medians_[f];
  }
  return row;
}

double RandomForest::predict_row(const double* row) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted forest");
  std::vector<double> repaired;
  row = sanitize_row(row, repaired);
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict_row(row);
  return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(const linalg::Matrix& x) const {
  BF_CHECK_MSG(x.cols() == feature_names_.size(),
               "prediction matrix has wrong number of columns");
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = predict_row(x.row_ptr(r));
  }
  return out;
}

std::vector<VariableImportance> RandomForest::importance() const {
  BF_CHECK_MSG(fitted(), "importance on unfitted forest");
  BF_CHECK_MSG(has_importance_,
               "forest was fitted with importance disabled");
  const std::size_t p = feature_names_.size();
  std::vector<VariableImportance> out(p);
  const double nt = std::sqrt(static_cast<double>(trees_.size()));
  for (std::size_t f = 0; f < p; ++f) {
    out[f].name = feature_names_[f];
    out[f].mean_inc_mse = imp_mean_[f];
    // R's %IncMSE: mean increase scaled by its standard error over trees.
    const double se = imp_sd_[f] / nt;
    out[f].pct_inc_mse = se > 1e-30 ? imp_mean_[f] / se : 0.0;
    out[f].inc_node_purity = imp_purity_[f];
  }
  std::sort(out.begin(), out.end(),
            [](const VariableImportance& a, const VariableImportance& b) {
              return a.pct_inc_mse > b.pct_inc_mse;
            });
  return out;
}

std::vector<std::string> RandomForest::top_variables(std::size_t k) const {
  const auto imp = importance();
  std::vector<std::string> out;
  for (std::size_t i = 0; i < imp.size() && i < k; ++i) {
    out.push_back(imp[i].name);
  }
  return out;
}

PredictionInterval RandomForest::predict_interval(const double* row,
                                                  double alpha) const {
  ForestScratch scratch;
  return predict_interval(row, alpha, scratch);
}

PredictionInterval RandomForest::predict_interval(
    const double* row, double alpha, ForestScratch& scratch) const {
  BF_CHECK_MSG(fitted(), "predict_interval on unfitted forest");
  BF_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  // sanitize_row uses emptiness to mean "row not yet copied"; a reused
  // scratch buffer must start empty (capacity is retained, so no
  // allocation happens after the first call).
  scratch.repaired.clear();
  row = sanitize_row(row, scratch.repaired);
  std::vector<double>& preds = scratch.tree_values;
  preds.clear();
  preds.reserve(trees_.size());
  double acc = 0.0;
  for (const auto& tree : trees_) {
    const double v = tree.predict_row(row);
    preds.push_back(v);
    acc += v;
  }
  std::sort(preds.begin(), preds.end());
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(preds.size() - 1);
    const std::size_t i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= preds.size()) return preds.back();
    return preds[i] * (1.0 - frac) + preds[i + 1] * frac;
  };
  PredictionInterval out;
  out.mean = acc / static_cast<double>(trees_.size());
  out.lo = quantile(alpha / 2.0);
  out.hi = quantile(1.0 - alpha / 2.0);
  return out;
}

std::vector<PredictionInterval> RandomForest::predict_intervals(
    const linalg::Matrix& x, double alpha) const {
  BF_CHECK_MSG(x.cols() == feature_names_.size(),
               "prediction matrix has wrong number of columns");
  std::vector<PredictionInterval> out;
  out.reserve(x.rows());
  ForestScratch scratch;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_interval(x.row_ptr(r), alpha, scratch));
  }
  return out;
}

std::vector<PartialDependenceInterval>
RandomForest::partial_dependence_interval(const std::string& feature,
                                          std::size_t grid_points,
                                          double alpha) const {
  BF_CHECK_MSG(fitted(), "partial_dependence_interval on unfitted forest");
  BF_CHECK_MSG(grid_points >= 2, "need at least 2 grid points");
  const auto it =
      std::find(feature_names_.begin(), feature_names_.end(), feature);
  BF_CHECK_MSG(it != feature_names_.end(), "unknown feature: " << feature);
  const std::size_t f =
      static_cast<std::size_t>(it - feature_names_.begin());

  const std::size_t n = train_x_.rows();
  const std::size_t p = train_x_.cols();
  double lo_x = std::numeric_limits<double>::infinity();
  double hi_x = -lo_x;
  for (std::size_t r = 0; r < n; ++r) {
    lo_x = std::min(lo_x, train_x_(r, f));
    hi_x = std::max(hi_x, train_x_(r, f));
  }

  std::vector<PartialDependenceInterval> curve(grid_points);
  std::vector<double> row(p);
  for (std::size_t g = 0; g < grid_points; ++g) {
    const double v = lo_x + (hi_x - lo_x) * static_cast<double>(g) /
                                static_cast<double>(grid_points - 1);
    // Per tree: the average prediction over the training rows with the
    // feature clamped; the band is over trees, matching how bagging
    // variance is usually visualised.
    std::vector<double> per_tree(trees_.size(), 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      const double* src = train_x_.row_ptr(r);
      std::copy(src, src + p, row.begin());
      row[f] = v;
      for (std::size_t t = 0; t < trees_.size(); ++t) {
        per_tree[t] += trees_[t].predict_row(row.data());
      }
    }
    for (auto& s : per_tree) s /= static_cast<double>(n);
    std::sort(per_tree.begin(), per_tree.end());
    const auto quantile = [&](double q) {
      const double pos = q * static_cast<double>(per_tree.size() - 1);
      const std::size_t i = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(i);
      if (i + 1 >= per_tree.size()) return per_tree.back();
      return per_tree[i] * (1.0 - frac) + per_tree[i + 1] * frac;
    };
    double mean = 0.0;
    for (const double s : per_tree) mean += s;
    curve[g].x = v;
    curve[g].y.mean = mean / static_cast<double>(per_tree.size());
    curve[g].y.lo = quantile(alpha / 2.0);
    curve[g].y.hi = quantile(1.0 - alpha / 2.0);
  }
  return curve;
}

void RandomForest::save(std::ostream& os) const {
  BF_CHECK_MSG(fitted(), "save on unfitted forest");
  os << "bf_forest 1\n";
  os.precision(17);
  os << "features " << feature_names_.size();
  for (const auto& name : feature_names_) os << ' ' << name;
  os << "\n";
  os << "stats " << oob_mse_ << ' ' << pct_var_explained_ << ' '
     << (has_importance_ ? 1 : 0) << "\n";
  os << "importance";
  for (std::size_t f = 0; f < imp_mean_.size(); ++f) {
    os << ' ' << imp_mean_[f] << ' ' << imp_sd_[f] << ' ' << imp_purity_[f];
  }
  os << "\n";
  os << "train " << train_x_.rows() << ' ' << train_x_.cols() << "\n";
  for (std::size_t r = 0; r < train_x_.rows(); ++r) {
    for (std::size_t c = 0; c < train_x_.cols(); ++c) {
      os << train_x_(r, c) << ' ';
    }
    os << train_y_[r] << "\n";
  }
  // OOB predictions can be NaN (rows never out-of-bag); text streams do
  // not round-trip NaN portably, so store only the finite entries.
  std::size_t finite = 0;
  for (const double v : oob_predictions_) {
    if (!std::isnan(v)) ++finite;
  }
  os << "oob " << finite;
  for (std::size_t r = 0; r < oob_predictions_.size(); ++r) {
    if (!std::isnan(oob_predictions_[r])) {
      os << ' ' << r << ' ' << oob_predictions_[r];
    }
  }
  os << "\n";
  os << "trees " << trees_.size() << "\n";
  for (const auto& tree : trees_) tree.save(os);
}

void RandomForest::save_file(const std::string& path) const {
  std::ofstream os(path);
  BF_CHECK_MSG(os.good(), "cannot open for writing: " << path);
  save(os);
  BF_CHECK_MSG(os.good(), "write failed: " << path);
}

RandomForest RandomForest::load(std::istream& is) {
  RandomForest rf;
  const int format_version = read_format_version(is, "bf_forest", 1);
  (void)format_version;
  std::string tag;
  std::size_t p = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> p) && tag == "features",
               "malformed features header");
  rf.feature_names_.resize(p);
  for (auto& name : rf.feature_names_) {
    BF_CHECK_MSG(static_cast<bool>(is >> name), "missing feature name");
  }
  int has_imp = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> rf.oob_mse_ >>
                                 rf.pct_var_explained_ >> has_imp) &&
                   tag == "stats",
               "malformed stats");
  rf.has_importance_ = has_imp != 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag) && tag == "importance",
               "malformed importance");
  rf.imp_mean_.resize(p);
  rf.imp_sd_.resize(p);
  rf.imp_purity_.resize(p);
  for (std::size_t f = 0; f < p; ++f) {
    BF_CHECK_MSG(static_cast<bool>(is >> rf.imp_mean_[f] >> rf.imp_sd_[f] >>
                                   rf.imp_purity_[f]),
                 "malformed importance row");
  }
  std::size_t n = 0;
  std::size_t cols = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n >> cols) && tag == "train" &&
                   cols == p,
               "malformed train header");
  rf.train_x_ = linalg::Matrix(n, p);
  rf.train_y_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      BF_CHECK_MSG(static_cast<bool>(is >> rf.train_x_(r, c)),
                   "malformed train row");
    }
    BF_CHECK_MSG(static_cast<bool>(is >> rf.train_y_[r]),
                 "malformed train response");
  }
  std::size_t finite = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> finite) && tag == "oob" &&
                   finite <= n,
               "malformed oob header");
  rf.oob_predictions_.assign(n, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < finite; ++i) {
    std::size_t idx = 0;
    double v = 0.0;
    BF_CHECK_MSG(static_cast<bool>(is >> idx >> v) && idx < n,
                 "malformed oob entry");
    rf.oob_predictions_[idx] = v;
  }
  std::size_t n_trees = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> n_trees) && tag == "trees" &&
                   n_trees >= 1,
               "malformed trees header");
  rf.trees_.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    rf.trees_.push_back(RegressionTree::load(is));
  }
  // Medians are derived state; recomputing keeps the on-disk format at
  // version 1 while loaded forests still repair NaN queries.
  rf.compute_feature_medians();
  return rf;
}

RandomForest RandomForest::load_file(const std::string& path) {
  std::ifstream is(path);
  BF_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  return load(is);
}

std::vector<PartialDependencePoint> RandomForest::partial_dependence(
    const std::string& feature, std::size_t grid_points) const {
  BF_CHECK_MSG(fitted(), "partial_dependence on unfitted forest");
  BF_CHECK_MSG(grid_points >= 2, "need at least 2 grid points");
  const auto it =
      std::find(feature_names_.begin(), feature_names_.end(), feature);
  BF_CHECK_MSG(it != feature_names_.end(), "unknown feature: " << feature);
  const std::size_t f =
      static_cast<std::size_t>(it - feature_names_.begin());

  const std::size_t n = train_x_.rows();
  const std::size_t p = train_x_.cols();
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (std::size_t r = 0; r < n; ++r) {
    lo = std::min(lo, train_x_(r, f));
    hi = std::max(hi, train_x_(r, f));
  }

  std::vector<PartialDependencePoint> curve(grid_points);
  std::vector<double> row(p);
  for (std::size_t g = 0; g < grid_points; ++g) {
    const double v =
        lo + (hi - lo) * static_cast<double>(g) /
                 static_cast<double>(grid_points - 1);
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double* src = train_x_.row_ptr(r);
      std::copy(src, src + p, row.begin());
      row[f] = v;
      acc += predict_row(row.data());
    }
    curve[g].x = v;
    curve[g].y = acc / static_cast<double>(n);
  }
  return curve;
}

}  // namespace bf::ml
