#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace bf::ml {
namespace {

struct SplitCandidate {
  bool valid = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double sse_after = 0.0;  // combined SSE of the two children
};

// Best split of rows[begin,end) on one feature, by sorting the node's rows
// on that feature and scanning the prefix sums (classic CART scan).
SplitCandidate best_split_on_feature(const linalg::Matrix& x,
                                     const std::vector<double>& y,
                                     const std::vector<std::size_t>& rows,
                                     std::size_t begin, std::size_t end,
                                     std::size_t feature,
                                     std::size_t min_node_size,
                                     std::vector<std::size_t>& scratch) {
  const std::size_t n = end - begin;
  scratch.assign(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                 rows.begin() + static_cast<std::ptrdiff_t>(end));
  std::sort(scratch.begin(), scratch.end(),
            [&](std::size_t a, std::size_t b) {
              return x(a, feature) < x(b, feature);
            });

  double total_sum = 0.0;
  for (std::size_t r : scratch) total_sum += y[r];

  SplitCandidate best;
  double left_sum = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += y[scratch[i]];
    const std::size_t n_left = i + 1;
    const std::size_t n_right = n - n_left;
    // Can only split between distinct feature values.
    const double v_here = x(scratch[i], feature);
    const double v_next = x(scratch[i + 1], feature);
    if (v_here == v_next) continue;
    if (n_left < min_node_size || n_right < min_node_size) continue;

    // SSE(child) = sum(y^2) - n*mean^2; the sum(y^2) terms are common to
    // every candidate split so comparing -n*mean^2 suffices. We track the
    // negative explained part for comparability.
    const double right_sum = total_sum - left_sum;
    const double gain = left_sum * left_sum / static_cast<double>(n_left) +
                        right_sum * right_sum / static_cast<double>(n_right);
    if (!best.valid || gain > best.sse_after) {
      best.valid = true;
      best.feature = feature;
      best.threshold = 0.5 * (v_here + v_next);
      best.sse_after = gain;  // NB: larger is better here (explained sum)
    }
  }
  return best;
}

double node_sse(const std::vector<double>& y,
                const std::vector<std::size_t>& rows, std::size_t begin,
                std::size_t end) {
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += y[rows[i]];
    sq += y[rows[i]] * y[rows[i]];
  }
  const double n = static_cast<double>(end - begin);
  return sq - sum * sum / n;
}

}  // namespace

void RegressionTree::fit(const linalg::Matrix& x, const std::vector<double>& y,
                         const std::vector<std::size_t>& sample,
                         const TreeParams& params, Rng& rng) {
  BF_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  BF_CHECK_MSG(!sample.empty(), "empty training sample");
  BF_CHECK_MSG(x.cols() > 0, "no features");
  nodes_.clear();
  std::vector<std::size_t> rows = sample;
  build_node(x, y, rows, 0, rows.size(), 0, params, rng);
}

void RegressionTree::fit(const linalg::Matrix& x, const std::vector<double>& y,
                         const TreeParams& params, Rng& rng) {
  std::vector<std::size_t> all(x.rows());
  std::iota(all.begin(), all.end(), std::size_t{0});
  fit(x, y, all, params, rng);
}

std::int32_t RegressionTree::build_node(
    const linalg::Matrix& x, const std::vector<double>& y,
    std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
    std::size_t depth, const TreeParams& params, Rng& rng) {
  const std::size_t n = end - begin;
  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y[rows[i]];
  nodes_[node_id].value = sum / static_cast<double>(n);

  const bool depth_ok = params.max_depth == 0 || depth < params.max_depth;
  if (n < 2 * params.min_node_size || !depth_ok) {
    return node_id;  // leaf
  }

  // Candidate features: either all of them or a random subset of mtry.
  const std::size_t p = x.cols();
  std::vector<std::size_t> features;
  if (params.mtry == 0 || params.mtry >= p) {
    features.resize(p);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(p, params.mtry);
  }

  SplitCandidate best;
  std::vector<std::size_t> scratch;
  for (std::size_t f : features) {
    const SplitCandidate cand = best_split_on_feature(
        x, y, rows, begin, end, f, params.min_node_size, scratch);
    if (cand.valid && (!best.valid || cand.sse_after > best.sse_after)) {
      best = cand;
    }
  }
  if (!best.valid) return node_id;  // all candidate features constant here

  // Record the impurity decrease: SSE(parent) - SSE(children).
  const double parent_sse = node_sse(y, rows, begin, end);
  const double explained = best.sse_after - sum * sum / static_cast<double>(n);
  nodes_[node_id].sse_decrease = std::max(0.0, explained);
  // `explained` equals SSE(parent) - SSE(children) because the sum-of-y^2
  // terms cancel; keep parent_sse computed for the numerical guard below.
  if (nodes_[node_id].sse_decrease <= 1e-12 * std::max(1.0, parent_sse)) {
    nodes_[node_id].sse_decrease = 0.0;
    return node_id;  // no meaningful improvement
  }

  // Partition rows in place around the threshold.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) { return x(r, best.feature) <= best.threshold; });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - rows.begin());
  BF_CHECK(mid > begin && mid < end);

  nodes_[node_id].feature = static_cast<std::int32_t>(best.feature);
  nodes_[node_id].threshold = best.threshold;
  const std::int32_t left =
      build_node(x, y, rows, begin, mid, depth + 1, params, rng);
  const std::int32_t right =
      build_node(x, y, rows, mid, end, depth + 1, params, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::predict_row(const double* row) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted tree");
  std::int32_t id = 0;
  while (nodes_[static_cast<std::size_t>(id)].left != -1) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    id = (row[n.feature] <= n.threshold) ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(id)].value;
}

RegressionTree::NodeView RegressionTree::node_view(std::int32_t id) const {
  BF_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
               "node id out of range");
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  return NodeView{n.left, n.right, n.feature, n.threshold, n.value};
}

std::vector<double> RegressionTree::predict(const linalg::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = predict_row(x.row_ptr(r));
  }
  return out;
}

std::size_t RegressionTree::leaf_count() const {
  // Traverse from the root: pruning can leave unreachable nodes in the
  // table, which must not be counted.
  if (nodes_.empty()) return 0;
  std::size_t count = 0;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (n.left == -1) {
      ++count;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return count;
}

std::size_t RegressionTree::depth() const {
  // Iterative depth computation over the implicit tree structure.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.left != -1) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

std::size_t RegressionTree::prune(double alpha) {
  BF_CHECK_MSG(fitted(), "prune on unfitted tree");
  BF_CHECK_MSG(alpha >= 0.0, "alpha must be non-negative");

  // For each node, the total SSE decrease and leaf count of its subtree.
  const std::size_t n = nodes_.size();
  std::vector<double> subtree_gain(n, 0.0);
  std::vector<std::size_t> subtree_leaves(n, 1);
  // Children always have larger indices than their parent (preorder
  // construction), so one reverse sweep suffices.
  for (std::size_t i = n; i-- > 0;) {
    const Node& node = nodes_[i];
    if (node.left == -1) continue;
    const auto l = static_cast<std::size_t>(node.left);
    const auto r = static_cast<std::size_t>(node.right);
    subtree_gain[i] = node.sse_decrease + subtree_gain[l] + subtree_gain[r];
    subtree_leaves[i] = subtree_leaves[l] + subtree_leaves[r];
  }

  // Weakest-link: collapse any internal node whose subtree earns less
  // than alpha per leaf it would remove. Collapsing a parent subsumes
  // its descendants, so marking is done top-down.
  std::size_t collapsed = 0;
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i] || nodes_[i].left == -1) continue;
    const double per_leaf =
        subtree_gain[i] /
        static_cast<double>(subtree_leaves[i] - 1);
    if (per_leaf < alpha) {
      // Collapse: mark the whole subtree dead and turn i into a leaf.
      std::vector<std::size_t> stack{i};
      while (!stack.empty()) {
        const std::size_t j = stack.back();
        stack.pop_back();
        if (nodes_[j].left != -1) {
          stack.push_back(static_cast<std::size_t>(nodes_[j].left));
          stack.push_back(static_cast<std::size_t>(nodes_[j].right));
        }
        if (j != i) {
          dead[j] = true;
          ++collapsed;
          // Neutralise so impurity_importance never credits dead nodes.
          nodes_[j].left = -1;
          nodes_[j].right = -1;
          nodes_[j].feature = -1;
          nodes_[j].sse_decrease = 0.0;
        }
      }
      nodes_[i].left = -1;
      nodes_[i].right = -1;
      nodes_[i].feature = -1;
      nodes_[i].sse_decrease = 0.0;
      ++collapsed;
    }
  }
  // Dead nodes stay in the table (unreachable); predict_row never visits
  // them, and save/load round-trips them harmlessly.
  return collapsed;
}

void RegressionTree::save(std::ostream& os) const {
  os << "tree " << nodes_.size() << "\n";
  os.precision(17);
  for (const Node& n : nodes_) {
    os << n.left << ' ' << n.right << ' ' << n.feature << ' '
       << n.threshold << ' ' << n.value << ' ' << n.sse_decrease << "\n";
  }
}

// Trees are sub-records of a bf_forest stream; the enclosing forest
// header carries the format_version for both.
RegressionTree RegressionTree::load(std::istream& is) {  // bf-lint: allow(artifact-version)
  std::string tag;
  std::size_t count = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> tag >> count) && tag == "tree",
               "malformed tree header");
  RegressionTree tree;
  tree.nodes_.resize(count);
  for (Node& n : tree.nodes_) {
    BF_CHECK_MSG(static_cast<bool>(is >> n.left >> n.right >> n.feature >>
                                   n.threshold >> n.value >>
                                   n.sse_decrease),
                 "malformed tree node");
    const auto in_range = [&](std::int32_t id) {
      return id == -1 ||
             (id >= 0 && static_cast<std::size_t>(id) < count);
    };
    BF_CHECK_MSG(in_range(n.left) && in_range(n.right),
                 "tree node child out of range");
  }
  BF_CHECK_MSG(!tree.nodes_.empty(), "empty tree");
  return tree;
}

std::vector<double> RegressionTree::impurity_importance(
    std::size_t num_features) const {
  std::vector<double> imp(num_features, 0.0);
  for (const auto& node : nodes_) {
    if (node.left != -1) {
      BF_CHECK(static_cast<std::size_t>(node.feature) < num_features);
      imp[static_cast<std::size_t>(node.feature)] += node.sse_decrease;
    }
  }
  return imp;
}

}  // namespace bf::ml
