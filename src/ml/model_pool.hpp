// Model-pool parametric regression — the Eiger baseline (Kerr, Anger,
// Hendry, Yalamanchili, WPEA 2012) from the paper's related work (§2):
// "An analytical performance model is constructed using parametric
// regression analysis over training data and a model pool consisting of
// basis functions."
//
// For every input variable the pool offers a family of basis functions
// (identity, square, cube, sqrt, log2, x*log2 x). A greedy pass selects
// the pool member whose addition most reduces leave-chunk-out
// cross-validated RSS, yielding a closed-form analytical model.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bf::ml {

enum class BasisKind { kIdentity, kSquare, kCube, kSqrt, kLog2, kXLog2X };

const char* basis_name(BasisKind kind);
double basis_eval(BasisKind kind, double x);

struct ModelPoolParams {
  std::size_t max_terms = 8;
  /// Folds for the cross-validated selection criterion.
  std::size_t folds = 4;
  double min_improvement = 1e-4;  ///< relative CV-RSS improvement to keep going
};

class ModelPoolRegression {
 public:
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           std::vector<std::string> names,
           const ModelPoolParams& params = {});

  double predict_row(const double* row, std::size_t num_inputs) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  double r_squared() const { return r_squared_; }
  bool fitted() const { return !coef_.empty(); }

  /// Closed form, e.g. "4.1 + 0.3*log2(size) + 2e-9*cube(size)".
  std::string to_string() const;

 private:
  struct Term {
    std::size_t var = 0;
    BasisKind kind = BasisKind::kIdentity;
  };

  linalg::Matrix build_design(const linalg::Matrix& x,
                              const std::vector<Term>& terms) const;

  std::size_t num_inputs_ = 0;
  std::vector<std::string> names_;
  std::vector<Term> terms_;
  std::vector<double> coef_;  ///< intercept + one per term
  double r_squared_ = 0.0;
};

}  // namespace bf::ml
