// Column-oriented numeric dataset (a tiny data frame).
//
// A Dataset is what the profiler sweep produces and what every statistical
// stage consumes: named double columns of equal length, e.g. one column per
// hardware performance counter plus "size" and the "time_ms" response.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace bf::ml {

/// Median of the finite entries of `values` (NaN/inf cells are ignored,
/// mirroring dropped counters); NaN when no finite entry exists.
double nan_median(std::vector<double> values);

/// What resolve_missing() did to a degraded dataset, for warnings and
/// degradation reports.
struct MissingValueReport {
  std::vector<std::string> dropped_columns;  ///< coverage below threshold
  std::vector<std::size_t> dropped_rows;     ///< original row indices
  std::vector<std::string> imputed_columns;  ///< received median imputation
  std::size_t imputed_cells = 0;
  bool empty() const {
    return dropped_columns.empty() && dropped_rows.empty() &&
           imputed_cells == 0;
  }
  /// Human-readable warning lines (empty when nothing happened).
  std::vector<std::string> to_lines() const;
};

class Dataset {
 public:
  Dataset() = default;

  /// Append a named column; all columns must share the same length.
  void add_column(std::string name, std::vector<double> values);

  /// Append one row given values for every existing column (in order).
  void add_row(const std::vector<double>& values);

  std::size_t num_rows() const;
  std::size_t num_cols() const { return names_.size(); }
  bool empty() const { return names_.empty() || num_rows() == 0; }

  const std::vector<std::string>& column_names() const { return names_; }
  bool has_column(const std::string& name) const;
  std::size_t column_index(const std::string& name) const;

  const std::vector<double>& column(std::size_t i) const;
  const std::vector<double>& column(const std::string& name) const;
  std::vector<double>& mutable_column(const std::string& name);

  double at(std::size_t row, const std::string& name) const;

  /// New dataset with the given rows (indices may repeat — bootstrap).
  Dataset select_rows(const std::vector<std::size_t>& rows) const;

  /// New dataset restricted to the named columns, in the given order.
  Dataset select_columns(const std::vector<std::string>& cols) const;

  /// New dataset without the named columns.
  Dataset drop_columns(const std::vector<std::string>& cols) const;

  /// Drop columns whose values are (numerically) constant; returns the
  /// names that were removed. Constant counters carry no information for
  /// the forest and break permutation importance. NaN cells are ignored
  /// when measuring spread (an all-NaN column counts as constant).
  std::vector<std::string> drop_constant_columns(double tol = 1e-12);

  /// True when any cell is NaN (a dropped counter / missing value).
  bool has_missing() const;
  /// Total NaN cells across the dataset.
  std::size_t missing_count() const;

  /// Resolve missing (NaN) cells in place so downstream model stages can
  /// run on degraded collections instead of throwing:
  ///   1. rows with a NaN in any `required` column are dropped (the
  ///      response cannot be imputed),
  ///   2. non-required columns with finite-value coverage below
  ///      `min_column_coverage` are dropped,
  ///   3. rows with remaining coverage below `min_row_coverage` are
  ///      dropped,
  ///   4. surviving NaN cells are imputed with the column median.
  /// Returns what was dropped/imputed. No-op on fully-observed data.
  MissingValueReport resolve_missing(
      double min_column_coverage = 0.5, double min_row_coverage = 0.5,
      const std::vector<std::string>& required = {});

  /// Row-major design matrix over the named feature columns.
  linalg::Matrix to_matrix(const std::vector<std::string>& features) const;

  /// Vertically concatenate two datasets with identical schemas.
  static Dataset concat(const Dataset& a, const Dataset& b);

  CsvTable to_csv() const;
  static Dataset from_csv(const CsvTable& table);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

/// An 80:20-style random split, as used throughout the paper.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Uniformly sample `test_fraction` of the rows (at least 1 when the
/// dataset has >= 2 rows) into the test set; the rest train.
TrainTestSplit train_test_split(const Dataset& ds, double test_fraction,
                                Rng& rng);

}  // namespace bf::ml
