// Column-oriented numeric dataset (a tiny data frame).
//
// A Dataset is what the profiler sweep produces and what every statistical
// stage consumes: named double columns of equal length, e.g. one column per
// hardware performance counter plus "size" and the "time_ms" response.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace bf::ml {

class Dataset {
 public:
  Dataset() = default;

  /// Append a named column; all columns must share the same length.
  void add_column(std::string name, std::vector<double> values);

  /// Append one row given values for every existing column (in order).
  void add_row(const std::vector<double>& values);

  std::size_t num_rows() const;
  std::size_t num_cols() const { return names_.size(); }
  bool empty() const { return names_.empty() || num_rows() == 0; }

  const std::vector<std::string>& column_names() const { return names_; }
  bool has_column(const std::string& name) const;
  std::size_t column_index(const std::string& name) const;

  const std::vector<double>& column(std::size_t i) const;
  const std::vector<double>& column(const std::string& name) const;
  std::vector<double>& mutable_column(const std::string& name);

  double at(std::size_t row, const std::string& name) const;

  /// New dataset with the given rows (indices may repeat — bootstrap).
  Dataset select_rows(const std::vector<std::size_t>& rows) const;

  /// New dataset restricted to the named columns, in the given order.
  Dataset select_columns(const std::vector<std::string>& cols) const;

  /// New dataset without the named columns.
  Dataset drop_columns(const std::vector<std::string>& cols) const;

  /// Drop columns whose values are (numerically) constant; returns the
  /// names that were removed. Constant counters carry no information for
  /// the forest and break permutation importance.
  std::vector<std::string> drop_constant_columns(double tol = 1e-12);

  /// Row-major design matrix over the named feature columns.
  linalg::Matrix to_matrix(const std::vector<std::string>& features) const;

  /// Vertically concatenate two datasets with identical schemas.
  static Dataset concat(const Dataset& a, const Dataset& b);

  CsvTable to_csv() const;
  static Dataset from_csv(const CsvTable& table);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

/// An 80:20-style random split, as used throughout the paper.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Uniformly sample `test_fraction` of the rows (at least 1 when the
/// dataset has >= 2 rows) into the test set; the rest train.
TrainTestSplit train_test_split(const Dataset& ds, double test_fraction,
                                Rng& rng);

}  // namespace bf::ml
