// Multivariate adaptive regression splines (Friedman 1991), following the
// `earth` R package the paper uses for the NW counter models.
//
// The model is f(x) = sum_i c_i * B_i(x) (paper eq. 4) where each basis
// function B_i is the intercept, a hinge max(x_j - c, 0) / max(c - x_j, 0),
// or a product of hinges (interactions). Fitting is the classic two-phase
// procedure: a greedy forward pass that adds reflected hinge pairs, then a
// backward pruning pass that deletes terms to minimise generalised
// cross-validation (GCV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bf::ml {

struct MarsParams {
  /// Maximum number of basis terms (including the intercept) after the
  /// forward pass (earth's nk).
  std::size_t max_terms = 21;
  /// Maximum interaction degree (1 = additive, 2 = pairwise products).
  int max_degree = 2;
  /// GCV knot penalty per hinge pair (earth's default penalty is 3 when
  /// degree > 1, 2 otherwise; we follow that when < 0).
  double penalty = -1.0;
  /// Stop the forward pass early when RSS improves by less than this
  /// fraction of the response sum of squares.
  double min_rss_improvement = 1e-5;
  /// Candidate knots per variable (quantiles of observed values).
  std::size_t max_knots_per_var = 32;
};

class Mars {
 public:
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           const MarsParams& params = {});

  double predict_row(const double* row, std::size_t num_inputs) const;
  std::vector<double> predict(const linalg::Matrix& x) const;

  /// GCV criterion of the final (pruned) model.
  double gcv() const { return gcv_; }
  /// Training R^2 of the final model (earth's RSq).
  double r_squared() const { return r_squared_; }
  /// Final number of terms including the intercept.
  std::size_t num_terms() const { return terms_.size(); }
  bool fitted() const { return !terms_.empty(); }

  /// Human-readable model, e.g. "3.2 + 1.4*h(x0-128) - 0.8*h(256-x1)".
  std::string to_string(const std::vector<std::string>& var_names = {}) const;

  /// Serialise the fitted model (terms + coefficients) so a .bfmodel
  /// bundle can round-trip it bit for bit.
  void save(std::ostream& os) const;
  static Mars load(std::istream& is);

 private:
  struct Hinge {
    std::size_t var = 0;
    double knot = 0.0;
    /// +1 for max(x - knot, 0), -1 for max(knot - x, 0), 0 for a linear
    /// term (entered when the knot sits at the minimum of the variable).
    int direction = +1;
  };
  struct Term {
    std::vector<Hinge> hinges;  // empty = intercept
  };

  double eval_term(const Term& term, const double* row) const;
  linalg::Matrix build_design(const linalg::Matrix& x,
                              const std::vector<Term>& terms) const;
  double gcv_of(double rss, std::size_t n, std::size_t n_terms) const;

  MarsParams params_;
  std::size_t num_inputs_ = 0;
  std::vector<Term> terms_;
  std::vector<double> coef_;
  double gcv_ = 0.0;
  double r_squared_ = 0.0;
};

}  // namespace bf::ml
