#include "ml/linear_model.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "linalg/solve.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {
namespace {

// Guard the log-link inverse against overflow for wild IRLS intermediate
// steps; counters never legitimately exceed e^60.
double safe_exp(double v) { return std::exp(std::clamp(v, -60.0, 60.0)); }

}  // namespace

std::vector<double> Glm::expand_basis(const double* row,
                                      std::size_t num_inputs) const {
  std::vector<double> out;
  out.reserve(1 + num_inputs * (static_cast<std::size_t>(params_.degree) +
                                (params_.log_terms ? 1 : 0)));
  out.push_back(1.0);  // intercept
  for (std::size_t j = 0; j < num_inputs; ++j) {
    double pow_term = 1.0;
    for (int d = 1; d <= params_.degree; ++d) {
      pow_term *= row[j];
      out.push_back(pow_term);
    }
    if (params_.log_terms) {
      out.push_back(std::log2(std::max(0.0, row[j]) + 1.0));
    }
  }
  return out;
}

void Glm::fit(const linalg::Matrix& x, const std::vector<double>& y,
              const GlmParams& params) {
  BF_CHECK_MSG(x.rows() == y.size(), "X/y row mismatch");
  BF_CHECK_MSG(x.rows() >= 2, "need at least 2 observations");
  BF_CHECK_MSG(params.degree >= 1, "degree must be >= 1");
  params_ = params;
  num_inputs_ = x.cols();

  const std::size_t n = x.rows();
  // Build the design matrix once.
  const std::vector<double> probe = expand_basis(x.row_ptr(0), num_inputs_);
  const std::size_t pb = probe.size();
  linalg::Matrix design(n, pb);
  for (std::size_t i = 0; i < n; ++i) {
    const auto basis = expand_basis(x.row_ptr(i), num_inputs_);
    for (std::size_t j = 0; j < pb; ++j) design(i, j) = basis[j];
  }

  if (params_.link == LinkFunction::kIdentity) {
    const auto sol = linalg::qr_least_squares(design, y);
    coef_ = sol.coefficients;
  } else {
    // IRLS for a Gaussian family with log link: mu = exp(eta).
    // Working response z = eta + (y - mu)/mu', weights w = (mu')^2.
    for (double v : y) {
      BF_CHECK_MSG(v > 0.0, "log link requires positive responses");
    }
    // Start from the identity fit on log(y).
    std::vector<double> log_y(n);
    for (std::size_t i = 0; i < n; ++i) log_y[i] = std::log(y[i]);
    coef_ = linalg::qr_least_squares(design, log_y).coefficients;

    std::vector<double> eta(n);
    for (int iter = 0; iter < params_.max_irls_iter; ++iter) {
      for (std::size_t i = 0; i < n; ++i) {
        eta[i] = 0.0;
        for (std::size_t j = 0; j < pb; ++j) {
          eta[i] += design(i, j) * coef_[j];
        }
      }
      // Weighted least squares step.
      linalg::Matrix wdesign(n, pb);
      std::vector<double> wz(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double mu = safe_exp(eta[i]);
        const double w = mu;  // sqrt of weight mu^2
        const double z = eta[i] + (y[i] - mu) / std::max(mu, 1e-12);
        for (std::size_t j = 0; j < pb; ++j) {
          wdesign(i, j) = design(i, j) * w;
        }
        wz[i] = z * w;
      }
      const auto sol = linalg::qr_least_squares(wdesign, wz);
      double delta = 0.0;
      for (std::size_t j = 0; j < pb; ++j) {
        delta = std::max(delta, std::fabs(sol.coefficients[j] - coef_[j]));
      }
      coef_ = sol.coefficients;
      if (delta < params_.irls_tol) break;
    }
  }

  // Deviance bookkeeping on the response scale.
  const auto pred = predict(x);
  residual_deviance_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual_deviance_ += (y[i] - pred[i]) * (y[i] - pred[i]);
  }
  const double ybar = mean(y);
  null_deviance_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    null_deviance_ += (y[i] - ybar) * (y[i] - ybar);
  }
}

double Glm::predict_row(const double* row, std::size_t num_inputs) const {
  BF_CHECK_MSG(fitted(), "predict on unfitted GLM");
  BF_CHECK_MSG(num_inputs == num_inputs_, "input arity mismatch");
  const auto basis = expand_basis(row, num_inputs);
  double eta = 0.0;
  for (std::size_t j = 0; j < basis.size(); ++j) {
    eta += basis[j] * coef_[j];
  }
  return params_.link == LinkFunction::kLog ? safe_exp(eta) : eta;
}

std::vector<double> Glm::predict(const linalg::Matrix& x) const {
  BF_CHECK_MSG(x.cols() == num_inputs_, "prediction arity mismatch");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_row(x.row_ptr(i), num_inputs_);
  }
  return out;
}

double Glm::r_squared() const {
  if (null_deviance_ <= 0.0) return 0.0;
  return 1.0 - residual_deviance_ / null_deviance_;
}

void Glm::save(std::ostream& os) const {
  // An unfitted GLM (coef count 0) is a legal record: counter-model
  // entries only fit the members their chain actually uses.
  os.precision(17);
  os << "bf_glm 1\n";
  os << (params_.link == LinkFunction::kLog ? 1 : 0) << ' ' << params_.degree
     << ' ' << (params_.log_terms ? 1 : 0) << ' ' << params_.max_irls_iter
     << ' ' << params_.irls_tol << "\n";
  os << num_inputs_ << ' ' << coef_.size();
  for (const double c : coef_) os << ' ' << c;
  os << ' ' << residual_deviance_ << ' ' << null_deviance_ << "\n";
}

Glm Glm::load(std::istream& is) {
  const int format_version = read_format_version(is, "bf_glm", 1);
  (void)format_version;
  Glm g;
  int link = 0;
  int log_terms = 0;
  std::size_t ncoef = 0;
  BF_CHECK_MSG(static_cast<bool>(is >> link >> g.params_.degree >> log_terms >>
                                 g.params_.max_irls_iter >>
                                 g.params_.irls_tol >> g.num_inputs_ >> ncoef),
               "malformed bf_glm record");
  BF_CHECK_MSG(link == 0 || link == 1, "bf_glm: bad link code " << link);
  g.params_.link = link == 1 ? LinkFunction::kLog : LinkFunction::kIdentity;
  g.params_.log_terms = log_terms != 0;
  BF_CHECK_MSG(ncoef <= 1'000'000, "bf_glm: implausible coefficient count");
  g.coef_.resize(ncoef);
  for (double& c : g.coef_) {
    BF_CHECK_MSG(static_cast<bool>(is >> c), "bf_glm: truncated coefficients");
  }
  BF_CHECK_MSG(
      static_cast<bool>(is >> g.residual_deviance_ >> g.null_deviance_),
      "bf_glm: truncated deviance record");
  return g;
}

}  // namespace bf::ml
