// Regression quality metrics used across model validation.
#pragma once

#include <vector>

namespace bf::ml {

/// Mean squared error between predictions and truth.
double mse(const std::vector<double>& y_true,
           const std::vector<double>& y_pred);

/// Root mean squared error.
double rmse(const std::vector<double>& y_true,
            const std::vector<double>& y_pred);

/// Mean absolute error.
double mae(const std::vector<double>& y_true,
           const std::vector<double>& y_pred);

/// Median absolute relative error (the paper's related-work accuracy
/// metric), in percent. Entries with |y_true| < eps are skipped.
double median_abs_pct_error(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred,
                            double eps = 1e-12);

/// Coefficient of determination R^2 = 1 - RSS/TSS. Returns 0 when the
/// response is constant and predictions are exact, negative when worse
/// than the mean predictor.
double r2(const std::vector<double>& y_true,
          const std::vector<double>& y_pred);

/// Fraction of response variance explained, as randomForest reports it:
/// 1 - MSE / Var(y). In percent terms multiply by 100.
double explained_variance(const std::vector<double>& y_true,
                          const std::vector<double>& y_pred);

/// Mean of a vector (0 for empty).
double mean(const std::vector<double>& v);

/// Population variance (denominator n).
double variance(const std::vector<double>& v);

/// Sample standard deviation (denominator n-1; 0 when n < 2).
double sample_sd(const std::vector<double>& v);

/// Pearson correlation; 0 if either side is constant.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace bf::ml
