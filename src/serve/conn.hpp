// The fleet-shaped connection layer: a poll-driven, overload-safe
// NDJSON server over bf::serve::Server.
//
// One I/O thread owns every socket (accept, framing, reply flushing,
// timeouts); a small pool of worker threads runs request batches
// through Server::handle_batch. The contract, in order of importance:
//
//   * Pipelined, ordered replies without half-close. Each complete
//     request line is answered as soon as its batch completes; replies
//     come back strictly in request order per connection. A client that
//     does half-close (the PR-5 protocol) still works: the trailing
//     unterminated line is treated as a final request.
//   * Bounded everything. Admission control caps admitted-but-
//     unanswered requests at max_queue; beyond it new requests are shed
//     *immediately* with {"ok":false,"code":"shed",...} instead of
//     queueing without bound. Per-connection write backlogs are capped
//     (a client that stops reading stops being read from), request
//     lines are capped, and connection count is capped (max_conns,
//     refused with an explicit reply). The server never OOMs and never
//     stops accepting because one client is slow.
//   * Graceful degradation and drain. A peer vanishing mid-request or
//     mid-reply closes that connection only (EPIPE is a counter, not a
//     signal — see net.hpp). request_stop() (or one byte written to
//     stop_fd(), async-signal-safely, from a SIGTERM/SIGINT handler)
//     stops accepting, finishes or times out in-flight requests within
//     drain_ms, flushes, and run() returns 0.
//
// Fault points serve.net.disconnect (a parsed request forcibly drops
// its connection) and serve.net.stall (a ready write is skipped for a
// round) let the chaos suite drive the rare paths deterministically.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hpp"
#include "serve/server.hpp"

namespace bf::serve {

struct NetServerOptions {
  /// Unix-domain listener path; empty disables the Unix listener.
  std::string unix_path;
  /// TCP listener port; < 0 disables TCP, 0 binds an ephemeral port
  /// (see NetServer::tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// listen(2) backlog for both listeners.
  int backlog = 64;
  /// Maximum simultaneously open connections; beyond it a new
  /// connection is answered with one structured error line and closed.
  std::size_t max_conns = 256;
  /// Maximum admitted-but-unanswered requests across all connections;
  /// beyond it new requests are shed with an explicit error reply.
  std::size_t max_queue = 1024;
  /// Per-connection inactivity budget (no bytes read, no bytes written,
  /// no reply delivered): exceeded connections are closed.
  int timeout_ms = 30000;
  /// Drain budget after request_stop(): in-flight requests that miss it
  /// are answered with a "timeout" error before the server exits.
  int drain_ms = 5000;
  /// Worker threads running Server::handle_batch.
  std::size_t workers = 2;
  /// Per-connection cap on buffered unsent reply bytes; a connection
  /// over the cap is not read from until it drains (backpressure).
  std::size_t max_write_buffer = 4u << 20;
  /// Cap on one request line (longer poisons the connection).
  std::size_t max_line = LineBuffer::kDefaultMaxLine;
  /// Exit after the first accepted connection closes (bf_serve --once).
  bool once = false;
  /// Test hook: runs on the worker thread before each batch (lets the
  /// overload tests hold the queue saturated deterministically).
  std::function<void()> before_batch;
};

class NetServer {
 public:
  /// Binds every configured listener (so clients may connect as soon as
  /// the constructor returns; they are served once run() starts).
  /// Throws bf::Error when no listener is configured or a bind fails.
  NetServer(Server& server, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Serve until a stop is requested, then drain and return 0.
  int run();

  /// Thread-safe stop request (begins the drain).
  void request_stop();

  /// Writing any single byte to this fd requests a stop; write(2) is
  /// async-signal-safe, so SIGTERM/SIGINT handlers use exactly this.
  int stop_fd() const { return wake_write_fd_; }

  /// The bound TCP port (resolves tcp_port == 0), 0 when TCP is off.
  std::uint16_t tcp_port() const { return tcp_port_; }

  const NetCounters& counters() const { return counters_; }

 private:
  struct Conn;
  struct Job {
    std::uint64_t conn_id = 0;
    std::vector<std::uint64_t> seqs;
    std::vector<std::string> lines;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::vector<std::uint64_t> seqs;
    std::vector<std::string> replies;
  };

  void worker_loop();
  void accept_pending(int listener);
  void admit_lines(Conn& conn, std::vector<std::string>& lines);
  void handle_readable(Conn& conn);
  void flush(Conn& conn);
  void dispatch(Conn& conn);
  void deliver_completions();
  void close_conn(Conn& conn);
  void force_close(Conn& conn, bool count_disconnect);
  void begin_drain();
  void finish_drain();
  bool fully_drained() const;

  Server& server_;
  NetServerOptions options_;
  NetCounters counters_;

  std::vector<int> listeners_;
  std::uint16_t tcp_port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  // I/O-thread-only state.
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t queued_ = 0;  ///< mirror of counters_.queue_depth
  bool draining_ = false;
  bool accepted_any_ = false;
  std::int64_t accept_cooldown_until_ms_ = 0;
  std::int64_t drain_deadline_ms_ = 0;

  // Worker hand-off.
  std::mutex jobs_mu_;
  std::condition_variable jobs_ready_;
  std::deque<Job> jobs_;
  bool workers_stop_ = false;
  std::mutex completions_mu_;
  std::vector<Completion> completions_;
  std::vector<std::thread> workers_;
};

}  // namespace bf::serve
