// Thread-safe model registry: the serving layer's bundle cache.
//
// get() resolves a model name to a loaded, immutable bundle. Loads are
// single-flight — when N threads request a bundle that is not resident,
// exactly one thread performs the disk load while the others wait on a
// shared future, so a popular model is never parsed twice concurrently.
// Resident bundles are evicted least-recently-used once the cache holds
// more than `capacity` completed entries; shared_ptr ownership keeps an
// evicted bundle alive for requests already holding it. A failed load
// (missing file, corrupt bundle, injected serve.cache.load_fail fault)
// propagates its error to every waiter and removes the cache entry, so
// the next request for that name retries from disk instead of replaying
// a stale failure forever.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/artifact.hpp"

namespace bf::serve {

struct RegistryStats {
  std::uint64_t hits = 0;       ///< served from a resident entry
  std::uint64_t misses = 0;     ///< entry not resident; a load started
  std::uint64_t loads = 0;      ///< disk loads actually performed
  std::uint64_t evictions = 0;  ///< LRU evictions
  std::uint64_t failures = 0;   ///< loads that threw
};

class ModelRegistry {
 public:
  /// Bundles live in `model_dir` as "<name>.bfmodel". `capacity` bounds
  /// the number of resident bundles (>= 1).
  explicit ModelRegistry(std::string model_dir, std::size_t capacity = 8);

  /// Resolve `name` to its loaded bundle, loading from disk on a miss.
  /// Throws bf::Error when the bundle is missing or corrupt (corrupt
  /// files are quarantined by the artifact layer).
  std::shared_ptr<const ModelBundle> get(const std::string& name);

  /// Disk path a model name resolves to.
  std::string path_for(const std::string& name) const;

  /// Names of resident (successfully loaded) bundles, sorted.
  std::vector<std::string> resident() const;

  RegistryStats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using Future = std::shared_future<std::shared_ptr<const ModelBundle>>;

  struct Entry {
    Future future;
    std::uint64_t last_used = 0;
    std::uint64_t id = 0;  ///< identity for failure-path erasure
    bool ready = false;    ///< set once the load completed successfully
  };

  /// Evict least-recently-used ready entries beyond capacity. Entries
  /// still loading are never evicted (eviction mid-flight would let a
  /// second load start and break single-flight accounting).
  void evict_locked();

  mutable std::mutex mu_;
  std::string dir_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_id_ = 1;
  RegistryStats stats_;
  std::map<std::string, Entry> entries_;
};

}  // namespace bf::serve
