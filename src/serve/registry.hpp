// Thread-safe model registry: the serving layer's supervised bundle cache.
//
// get() resolves a model name to a loaded, immutable bundle generation.
// Loads are single-flight — when N threads request a bundle that is not
// resident, exactly one thread performs the disk load while the others
// wait on a shared future, so a popular model is never parsed twice
// concurrently. Resident bundles are evicted least-recently-used once the
// cache holds more than `capacity` completed entries; shared_ptr
// ownership keeps an evicted generation alive for requests already
// holding it.
//
// Hot reload (supervised, reversible): the registry tracks each bundle's
// on-disk identity — path, fnv1a64 payload checksum, outer format
// version, stat snapshot — plus a per-name monotonically increasing
// generation counter that survives eviction. reload(name) stages the new
// file off the request path, validates it against the golden-probe
// canary, and only then atomically promotes it via shared_ptr swap:
// in-flight batches keep the generation they pinned, so no request ever
// sees a torn model. A corrupt or canary-failing replacement is
// quarantined, the old generation keeps serving, and a rollback is
// counted. check_stale()/poll_stale() drive watch-style staleness
// detection (stat mtime/size first, re-checksum on change) with bounded
// exponential backoff after failures; pin(name) freezes a generation
// against both reload and eviction.
//
// A failed load (missing file, corrupt bundle, injected
// serve.cache.load_fail fault) propagates its error to every waiter and
// removes the cache entry; subsequent requests within the backoff window
// fail fast on the cached error instead of turning every miss into a
// disk storm.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/artifact.hpp"

namespace bf::serve {

/// One immutable, promoted model generation. Requests pin it with a
/// shared_ptr for the whole batch; reloads swap the registry slot but
/// never mutate a LoadedModel in place.
struct LoadedModel {
  ModelBundle bundle;
  std::uint64_t generation = 0;  ///< per-name, monotonic, survives eviction
  std::string checksum;          ///< fnv1a64 hex of the bundle payload
  int format_version = 0;        ///< outer "bfmodel" header version
  std::string loaded_at;         ///< UTC timestamp of the promotion
  std::uint64_t size_bytes = 0;  ///< stat snapshot at load time
  std::int64_t mtime_ns = 0;
};

/// Reload supervision knobs (the PR 2 sweep retry-policy shape: an
/// initial delay doubling per consecutive failure, capped).
struct ReloadPolicy {
  /// First-failure backoff; 0 disables backoff entirely (every request
  /// retries the disk — the pre-supervision behaviour, used by tests).
  std::uint64_t backoff_initial_ms = 100;
  std::uint64_t backoff_max_ms = 5000;
  /// Relative tolerance of golden-probe canary validation. Bundle
  /// round-trips are bit-identical, so healthy reloads pass at any
  /// tolerance; the slack only absorbs float formatting in the probes.
  double canary_rtol = 1e-9;
};

struct ReloadResult {
  enum class Status {
    kPromoted,     ///< new generation validated and swapped in
    kUnchanged,    ///< on-disk bundle identical (checksum match)
    kRolledBack,   ///< staged bundle rejected; old generation kept
    kPinned,       ///< model pinned; reload refused
    kNotResident,  ///< nothing loaded under this name
    kBusy,         ///< another reload of this name is in flight
    kBackoff,      ///< within the failure backoff window; not retried
  };
  Status status = Status::kUnchanged;
  std::uint64_t generation = 0;  ///< generation serving after the call
  std::string error;             ///< first violation when rolled back
};

/// Per-resident-model identity row for the stats reply.
struct ModelInfo {
  std::string name;
  std::uint64_t generation = 0;
  std::string checksum;
  std::string loaded_at;
  std::uint64_t rollbacks = 0;
  bool pinned = false;
  bool power = false;  ///< bundle carries the v3 power record
};

struct RegistryStats {
  std::uint64_t hits = 0;        ///< served from a resident entry
  std::uint64_t misses = 0;      ///< entry not resident; a load started
  std::uint64_t loads = 0;       ///< disk loads actually performed
  std::uint64_t evictions = 0;   ///< LRU evictions
  std::uint64_t failures = 0;    ///< loads that threw
  std::uint64_t fast_fails = 0;  ///< misses rejected inside the backoff window
  std::uint64_t reloads = 0;     ///< reload attempts (admin verb or watcher)
  std::uint64_t promotions = 0;  ///< reloads that swapped in a new generation
  std::uint64_t rollbacks = 0;   ///< reloads rejected (corrupt / canary)
};

class ModelRegistry {
 public:
  /// Bundles live in `model_dir` as "<name>.bfmodel". `capacity` bounds
  /// the number of resident bundles (>= 1).
  explicit ModelRegistry(std::string model_dir, std::size_t capacity = 8,
                         ReloadPolicy policy = {});

  /// Resolve `name` to its loaded bundle generation, loading from disk
  /// on a miss. Throws bf::Error when the bundle is missing or corrupt
  /// (corrupt files are quarantined by the artifact layer) — and,
  /// within the backoff window after a failed load, fails fast on the
  /// cached error without touching the disk.
  std::shared_ptr<const LoadedModel> get(const std::string& name);

  /// Force a reload of a resident model: stage the on-disk bundle,
  /// canary-validate, promote atomically. Explicit reloads bypass the
  /// failure backoff window (an operator forcing a retry means it).
  ReloadResult reload(const std::string& name);

  /// Watch-style staleness check: stat the file (cheap) and reload only
  /// when size/mtime changed since the resident generation was loaded.
  /// Honours pin and the failure backoff window.
  ReloadResult check_stale(const std::string& name);

  /// check_stale() every resident model; returns the names whose result
  /// was anything but kUnchanged, paired with that result.
  std::vector<std::pair<std::string, ReloadResult>> poll_stale();

  /// Freeze / unfreeze a model's current generation: a pinned model is
  /// exempt from reload, staleness promotion and LRU eviction. Returns
  /// true when the model is currently resident.
  bool pin(const std::string& name);
  bool unpin(const std::string& name);

  /// Disk path a model name resolves to.
  std::string path_for(const std::string& name) const;

  /// Names of resident (successfully loaded) bundles, sorted.
  std::vector<std::string> resident() const;

  /// Identity rows of every resident bundle, sorted by name.
  std::vector<ModelInfo> models() const;

  RegistryStats stats() const;
  std::size_t capacity() const { return capacity_; }
  const ReloadPolicy& policy() const { return policy_; }

 private:
  using Clock = std::chrono::steady_clock;
  using Future = std::shared_future<std::shared_ptr<const LoadedModel>>;

  struct Entry {
    Future future;
    std::uint64_t last_used = 0;
    std::uint64_t id = 0;  ///< identity for failure-path erasure
    bool ready = false;    ///< set once the load completed successfully
    /// Stat snapshot of the file content this entry was loaded from;
    /// refreshed on checksum-identical reloads so a touch that changes
    /// nothing does not re-read the bundle on every poll.
    std::uint64_t stat_size = 0;
    std::int64_t stat_mtime_ns = 0;
  };

  /// Per-name lifecycle state. Lives in a separate map so it survives
  /// eviction: a model that is evicted and re-loaded continues its
  /// generation sequence instead of restarting at 1.
  struct Lifecycle {
    std::uint64_t next_generation = 1;
    std::uint64_t rollbacks = 0;
    bool pinned = false;
    bool reloading = false;  ///< a staged reload is in flight
    std::uint64_t consecutive_failures = 0;
    Clock::time_point retry_after{};  ///< failure backoff deadline
    std::string last_error;
  };

  /// Evict least-recently-used ready entries beyond capacity. Entries
  /// still loading are never evicted (eviction mid-flight would let a
  /// second load start and break single-flight accounting); pinned
  /// entries are never evicted either.
  void evict_locked();

  /// Current backoff delay after `failures` consecutive failures
  /// (0 when backoff is disabled).
  std::uint64_t backoff_ms(std::uint64_t failures) const;

  /// Record a load/reload failure in the lifecycle: bump the failure
  /// count, arm the backoff deadline, cache the error text.
  void note_failure_locked(Lifecycle& lc, const std::string& error);

  /// Build a LoadedModel from a staged file and install it as a ready
  /// entry under `name`, assigning the next generation. Returns the
  /// promoted model. Caller holds the lock.
  std::shared_ptr<const LoadedModel> promote_locked(const std::string& name,
                                                    BundleFile&& staged);

  mutable std::mutex mu_;
  std::string dir_;
  std::size_t capacity_;
  ReloadPolicy policy_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_id_ = 1;
  RegistryStats stats_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, Lifecycle> lifecycle_;
};

/// Human-readable tag of a reload status ("promoted", "rolled_back", ...)
/// for stats replies and logs.
const char* to_string(ReloadResult::Status status);

}  // namespace bf::serve
