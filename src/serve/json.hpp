// A minimal JSON reader/writer for the bf_serve request/response
// protocol (newline-delimited JSON objects). Supports the full value
// grammar (objects, arrays, strings with escapes, numbers, booleans,
// null) but is tuned for the small flat objects the server exchanges;
// numbers are parsed through bf::parse_double so trailing garbage is an
// error, not a silent truncation.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bf::serve {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* find(std::string_view key) const;
};

/// Parse one JSON document; throws bf::Error on malformed input or
/// trailing non-whitespace.
JsonValue parse_json(std::string_view text);

/// Escape a string for embedding between double quotes.
std::string json_escape(std::string_view s);

/// Render a double as JSON: shortest round-trip decimal; non-finite
/// values (which JSON cannot carry) become null.
std::string json_number(double v);

}  // namespace bf::serve
