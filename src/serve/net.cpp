#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"

namespace bf::serve {
namespace {

std::string errno_text() { return std::strerror(errno); }

}  // namespace

// ---------------------------------------------------------------------------
// line framing

bool LineBuffer::append(const char* data, std::size_t n,
                        std::vector<std::string>& out) {
  if (overflowed_) return false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != '\n') continue;
    partial_.append(data + start, i - start);
    start = i + 1;
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    if (!partial_.empty()) out.push_back(std::move(partial_));
    partial_.clear();
  }
  partial_.append(data + start, n - start);
  if (partial_.size() > max_line_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

bool LineBuffer::take_partial(std::string& line) {
  if (overflowed_) return false;
  if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
  if (partial_.empty()) return false;
  line = std::move(partial_);
  partial_.clear();
  return true;
}

std::vector<std::string> split_requests(const std::string& text) {
  std::vector<std::string> lines;
  LineBuffer buffer(text.size() + 1);
  buffer.append(text.data(), text.size(), lines);
  std::string tail;
  if (buffer.take_partial(tail)) lines.push_back(std::move(tail));
  return lines;
}

// ---------------------------------------------------------------------------
// listeners

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  BF_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " << errno_text());
  BF_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL, O_NONBLOCK): " << errno_text());
}

int listen_unix(const std::string& path, int backlog) {
  ignore_sigpipe();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BF_CHECK_MSG(fd >= 0, "socket(AF_UNIX): " << errno_text());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    BF_FAIL("unix socket path too long (" << path.size() << " bytes): "
                                          << path);
  }
  path.copy(addr.sun_path, path.size());
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = errno_text();
    ::close(fd);
    BF_FAIL("cannot bind " << path << ": " << why);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    BF_FAIL("cannot listen on " << path << ": " << why);
  }
  set_nonblocking(fd);
  return fd;
}

int listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BF_CHECK_MSG(fd >= 0, "socket(AF_INET): " << errno_text());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    BF_FAIL("not a numeric IPv4 address: " << host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = errno_text();
    ::close(fd);
    BF_FAIL("cannot bind " << host << ":" << port << ": " << why);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    BF_FAIL("cannot listen on " << host << ":" << port << ": " << why);
  }
  set_nonblocking(fd);
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  BF_CHECK_MSG(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
                   0,
               "getsockname: " << errno_text());
  return ntohs(addr.sin_port);
}

AcceptResult accept_ready(int listener, int* out_fd) {
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) {
      set_nonblocking(fd);
      // Latency over batching for small NDJSON replies; a Unix-domain
      // fd rejects the option harmlessly.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out_fd = fd;
      return AcceptResult::kAccepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return AcceptResult::kNone;
    // EMFILE/ENFILE (fd exhaustion), ECONNABORTED (peer gave up while
    // queued), ENOBUFS/ENOMEM: all transient — the caller backs off
    // instead of spinning on an error that will repeat immediately.
    return AcceptResult::kTransient;
  }
}

// ---------------------------------------------------------------------------
// byte I/O

int read_some(int fd, char* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::read(fd, buf, n);
    if (r > 0) return static_cast<int>(r);
    if (r == 0) return kIoEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
    return kIoPeerGone;
  }
}

int send_some(int fd, const char* buf, std::size_t n) {
#ifdef MSG_NOSIGNAL
  constexpr int kFlags = MSG_NOSIGNAL;
#else
  constexpr int kFlags = 0;  // ignore_sigpipe() covers this platform
#endif
  while (true) {
    const ssize_t w = ::send(fd, buf, n, kFlags);
    if (w > 0) return static_cast<int>(w);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return kIoWouldBlock;
    }
    return kIoPeerGone;
  }
}

}  // namespace bf::serve
