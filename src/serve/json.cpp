#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace bf::serve {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    BF_CHECK_MSG(pos_ == text_.size(),
                 "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    BF_CHECK_MSG(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    BF_CHECK_MSG(peek() == c, "json: expected '" << c << "' at offset "
                                                 << pos_ << ", got '"
                                                 << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Basic-multilingual-plane escapes only; enough for the ASCII
          // protocol (model names, error text) this server speaks.
          BF_CHECK_MSG(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              BF_FAIL("json: bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          BF_FAIL("json: bad escape '\\" << esc << "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char =
          (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E';
      if (!number_char) break;
      ++pos_;
    }
    BF_CHECK_MSG(pos_ > start, "json: expected a value at offset " << start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = parse_double(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace bf::serve
