// bf::serve networking primitives: the portable-POSIX substrate the
// connection layer (serve/conn.hpp) is built on.
//
// Three concerns live here, deliberately below any knowledge of the
// request protocol:
//
//   * NDJSON line framing. LineBuffer turns an arbitrary byte stream
//     into complete request lines incrementally (CR stripped, blank
//     lines dropped, a bounded maximum line length), so pipelined
//     clients are answered line-by-line without waiting for EOF.
//     split_requests() is the whole-buffer convenience used by the
//     stdin/batch paths and shares the exact same line semantics.
//
//   * Listener setup. listen_unix()/listen_tcp() create non-blocking
//     listeners with a configurable backlog; accept_ready() drains one
//     ready listener EINTR-safely and classifies transient failures
//     (EMFILE/ENFILE/ECONNABORTED) so the event loop can back off
//     instead of spinning hot on a failing accept.
//
//   * EINTR/EPIPE-safe byte I/O. read_some()/send_some() never raise
//     SIGPIPE (MSG_NOSIGNAL; ignore_sigpipe() covers the paths the flag
//     cannot) and collapse errno handling into three caller-visible
//     outcomes: progress, would-block, and peer-gone.
//
// Everything here is single-purpose and synchronous; policy (admission
// control, timeouts, draining) lives one layer up in serve/conn.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bf::serve {

/// Incremental NDJSON line framer. Bytes go in via append(); complete
/// lines come out with the trailing '\n' removed, a final '\r' stripped
/// (CRLF clients) and blank lines dropped. A line longer than max_line
/// bytes marks the buffer overflowed — the caller should answer with a
/// structured error and close, since resynchronising inside an
/// arbitrarily long line is not possible.
class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_line = kDefaultMaxLine) noexcept
      : max_line_(max_line) {}

  /// Append raw bytes, moving every completed line into `out`.
  /// Returns false when the partial line exceeded max_line (the buffer
  /// is poisoned; no further lines are produced).
  bool append(const char* data, std::size_t n, std::vector<std::string>& out);

  /// EOF semantics: a trailing unterminated line is still a request
  /// (clients that half-close without a final newline). Returns true
  /// and fills `line` when a non-blank partial was pending.
  bool take_partial(std::string& line);

  /// Bytes buffered waiting for a terminating newline.
  std::size_t pending() const { return partial_.size(); }

  bool overflowed() const { return overflowed_; }

  static constexpr std::size_t kDefaultMaxLine = 1 << 20;

 private:
  std::string partial_;
  std::size_t max_line_;
  bool overflowed_ = false;
};

/// Split a whole request buffer into lines with LineBuffer's semantics
/// (CR stripped, blanks dropped, trailing newline-less line kept).
std::vector<std::string> split_requests(const std::string& text);

/// Counters shared between the event loop, its workers and stats
/// readers (the `{"cmd":"stats"}` reply). All fields are monotonic
/// except queue_depth and active_conns, which track current occupancy.
struct NetCounters {
  std::atomic<std::uint64_t> accepted{0};       ///< connections accepted
  std::atomic<std::uint64_t> active_conns{0};   ///< currently open
  std::atomic<std::uint64_t> requests{0};       ///< request lines read
  std::atomic<std::uint64_t> replies{0};        ///< reply lines delivered
  std::atomic<std::uint64_t> shed{0};           ///< requests refused by admission control
  std::atomic<std::uint64_t> timeouts{0};       ///< connections closed by a timeout
  std::atomic<std::uint64_t> disconnects{0};    ///< peers that vanished mid-stream
  std::atomic<std::uint64_t> overloaded_conns{0};  ///< connections refused at max_conns
  std::atomic<std::uint64_t> accept_errors{0};  ///< transient accept failures
  std::atomic<std::uint64_t> queue_depth{0};    ///< admitted, unanswered requests
};

/// Process-wide SIGPIPE immunity: a client closing mid-write must
/// surface as EPIPE from send(), never as a process-killing signal.
/// Idempotent; called by every listener constructor and by the tools.
void ignore_sigpipe();

/// Put an fd into non-blocking mode; throws bf::Error on failure.
void set_nonblocking(int fd);

/// Create a non-blocking Unix-domain listener at `path` (any stale
/// socket file is replaced). Throws bf::Error with errno context.
int listen_unix(const std::string& path, int backlog);

/// Create a non-blocking TCP listener on host:port (numeric IPv4 host;
/// port 0 picks an ephemeral port). Throws bf::Error with errno context.
int listen_tcp(const std::string& host, std::uint16_t port, int backlog);

/// The port a TCP listener actually bound (resolves port 0).
std::uint16_t local_port(int fd);

/// One accept() attempt on a non-blocking listener.
enum class AcceptResult {
  kAccepted,   ///< *out_fd holds a new non-blocking connection
  kNone,       ///< nothing pending (EAGAIN) — go back to poll
  kTransient,  ///< EMFILE/ENFILE/ECONNABORTED/...: log, back off, retry
};
AcceptResult accept_ready(int listener, int* out_fd);

/// Byte-I/O outcomes for non-blocking sockets.
inline constexpr int kIoEof = 0;         ///< orderly peer shutdown (read)
inline constexpr int kIoWouldBlock = -1; ///< EAGAIN — wait for poll
inline constexpr int kIoPeerGone = -2;   ///< ECONNRESET/EPIPE/any hard error

/// Read up to n bytes; returns bytes read (> 0), kIoEof, kIoWouldBlock
/// or kIoPeerGone. EINTR is retried internally.
int read_some(int fd, char* buf, std::size_t n);

/// Send up to n bytes without ever raising SIGPIPE; returns bytes
/// written (> 0), kIoWouldBlock or kIoPeerGone. EINTR is retried.
int send_some(int fd, const char* buf, std::size_t n);

}  // namespace bf::serve
