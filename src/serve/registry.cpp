#include "serve/registry.hpp"

#include <algorithm>
#include <ctime>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace bf::serve {
namespace {

/// UTC wall-clock timestamp of a promotion ("2026-08-07T12:34:56Z").
std::string now_utc() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

const char* to_string(ReloadResult::Status status) {
  switch (status) {
    case ReloadResult::Status::kPromoted: return "promoted";
    case ReloadResult::Status::kUnchanged: return "unchanged";
    case ReloadResult::Status::kRolledBack: return "rolled_back";
    case ReloadResult::Status::kPinned: return "pinned";
    case ReloadResult::Status::kNotResident: return "not_resident";
    case ReloadResult::Status::kBusy: return "busy";
    case ReloadResult::Status::kBackoff: return "backoff";
  }
  return "unknown";
}

ModelRegistry::ModelRegistry(std::string model_dir, std::size_t capacity,
                             ReloadPolicy policy)
    : dir_(std::move(model_dir)),
      capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy) {}

std::string ModelRegistry::path_for(const std::string& name) const {
  if (dir_.empty()) return name + kBundleSuffix;
  const char last = dir_.back();
  const std::string sep = (last == '/' || last == '\\') ? "" : "/";
  return dir_ + sep + name + kBundleSuffix;
}

std::uint64_t ModelRegistry::backoff_ms(std::uint64_t failures) const {
  if (policy_.backoff_initial_ms == 0 || failures == 0) return 0;
  std::uint64_t delay = policy_.backoff_initial_ms;
  for (std::uint64_t i = 1; i < failures; ++i) {
    if (delay >= policy_.backoff_max_ms / 2) return policy_.backoff_max_ms;
    delay *= 2;
  }
  return std::min(delay, policy_.backoff_max_ms);
}

void ModelRegistry::note_failure_locked(Lifecycle& lc,
                                        const std::string& error) {
  ++lc.consecutive_failures;
  lc.last_error = error;
  const std::uint64_t delay = backoff_ms(lc.consecutive_failures);
  // delay == 0 (backoff disabled) leaves retry_after in the past, so
  // every request retries the disk immediately.
  lc.retry_after = Clock::now() + std::chrono::milliseconds(delay);
}

std::shared_ptr<const LoadedModel> ModelRegistry::promote_locked(
    const std::string& name, BundleFile&& staged) {
  Lifecycle& lc = lifecycle_[name];
  auto model = std::make_shared<LoadedModel>();
  model->bundle = std::move(staged.bundle);
  model->generation = lc.next_generation++;
  model->checksum = std::move(staged.checksum);
  model->format_version = staged.format_version;
  model->loaded_at = now_utc();
  model->size_bytes = staged.size_bytes;
  model->mtime_ns = staged.mtime_ns;
  lc.consecutive_failures = 0;
  lc.last_error.clear();

  std::promise<std::shared_ptr<const LoadedModel>> ready_promise;
  ready_promise.set_value(model);
  Entry entry;
  entry.future = ready_promise.get_future().share();
  entry.last_used = ++tick_;
  entry.id = next_id_++;
  entry.ready = true;
  entry.stat_size = staged.size_bytes;
  entry.stat_mtime_ns = staged.mtime_ns;
  entries_[name] = std::move(entry);
  ++stats_.promotions;
  evict_locked();
  return model;
}

std::shared_ptr<const LoadedModel> ModelRegistry::get(
    const std::string& name) {
  Future future;
  std::promise<std::shared_ptr<const LoadedModel>> promise;
  std::uint64_t my_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      ++stats_.hits;
      it->second.last_used = ++tick_;
      future = it->second.future;
    } else {
      // Fail fast inside the backoff window: the last load of this name
      // failed moments ago, so rethrow its error without a disk storm.
      auto lit = lifecycle_.find(name);
      if (lit != lifecycle_.end() && lit->second.consecutive_failures > 0 &&
          Clock::now() < lit->second.retry_after) {
        ++stats_.fast_fails;
        BF_FAIL("model " << name << " unavailable (failure backoff): "
                         << lit->second.last_error);
      }
      ++stats_.misses;
      ++stats_.loads;
      future = promise.get_future().share();
      my_id = next_id_++;
      Entry entry;
      entry.future = future;
      entry.last_used = ++tick_;
      entry.id = my_id;
      entries_.emplace(name, std::move(entry));
    }
  }

  if (my_id != 0) {
    // This thread won the single-flight race: perform the load outside
    // the lock so concurrent gets for *other* models are not serialised
    // behind disk I/O.
    try {
      BF_CHECK_MSG(!fault::should_fire(fault::points::kServeCacheLoadFail),
                   "injected load failure for model " << name);
      const std::string path = path_for(name);
      BundleFile staged = load_bundle_file(path);
      std::string why;
      if (!validate_canary(staged.bundle, policy_.canary_rtol, &why)) {
        quarantine_bundle(path);
        BF_FAIL("model " << name << " failed canary validation: " << why);
      }
      std::shared_ptr<const LoadedModel> model;
      {
        std::lock_guard<std::mutex> lock(mu_);
        Lifecycle& lc = lifecycle_[name];
        auto loaded = std::make_shared<LoadedModel>();
        loaded->bundle = std::move(staged.bundle);
        loaded->generation = lc.next_generation++;
        loaded->checksum = std::move(staged.checksum);
        loaded->format_version = staged.format_version;
        loaded->loaded_at = now_utc();
        loaded->size_bytes = staged.size_bytes;
        loaded->mtime_ns = staged.mtime_ns;
        lc.consecutive_failures = 0;
        lc.last_error.clear();
        model = loaded;
        auto it = entries_.find(name);
        if (it != entries_.end() && it->second.id == my_id) {
          it->second.ready = true;
          it->second.stat_size = staged.size_bytes;
          it->second.stat_mtime_ns = staged.mtime_ns;
        }
        // Evict only once the load succeeded: a failed load must never
        // push a good bundle out of the cache.
        evict_locked();
      }
      promise.set_value(std::move(model));
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failures;
        note_failure_locked(lifecycle_[name], e.what());
        auto it = entries_.find(name);
        // Erase only our own entry — a later retry may already have
        // replaced it.
        if (it != entries_.end() && it->second.id == my_id) {
          entries_.erase(it);
        }
      }
      promise.set_exception(std::current_exception());
    }
  }

  return future.get();  // rethrows the load error for every waiter
}

ReloadResult ModelRegistry::reload(const std::string& name) {
  std::shared_ptr<const LoadedModel> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reloads;
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.ready) {
      return {ReloadResult::Status::kNotResident, 0, "model not resident"};
    }
    current = it->second.future.get();  // ready: does not block
    Lifecycle& lc = lifecycle_[name];
    if (lc.pinned) {
      return {ReloadResult::Status::kPinned, current->generation,
              "model pinned"};
    }
    if (lc.reloading) {
      return {ReloadResult::Status::kBusy, current->generation,
              "reload already in flight"};
    }
    lc.reloading = true;
  }

  // Stage the replacement off the request path: parse, checksum-compare
  // and canary-validate happen outside the lock, so in-flight batches
  // keep predicting through the current generation meanwhile.
  const std::string path = path_for(name);
  try {
    BundleFile staged = load_bundle_file(path);
    if (staged.checksum == current->checksum) {
      std::lock_guard<std::mutex> lock(mu_);
      lifecycle_[name].reloading = false;
      auto it = entries_.find(name);
      if (it != entries_.end() && it->second.ready) {
        // Refresh the stat snapshot so a content-identical touch stops
        // triggering re-reads on every staleness poll.
        it->second.stat_size = staged.size_bytes;
        it->second.stat_mtime_ns = staged.mtime_ns;
      }
      return {ReloadResult::Status::kUnchanged, current->generation, ""};
    }
    std::string why;
    if (!validate_canary(staged.bundle, policy_.canary_rtol, &why)) {
      quarantine_bundle(path);
      std::lock_guard<std::mutex> lock(mu_);
      Lifecycle& lc = lifecycle_[name];
      lc.reloading = false;
      ++lc.rollbacks;
      ++stats_.rollbacks;
      note_failure_locked(lc, why);
      return {ReloadResult::Status::kRolledBack, current->generation, why};
    }
    std::lock_guard<std::mutex> lock(mu_);
    Lifecycle& lc = lifecycle_[name];
    lc.reloading = false;
    if (lc.pinned) {
      // Pinned while we were staging: the pin wins.
      return {ReloadResult::Status::kPinned, current->generation,
              "model pinned"};
    }
    auto model = promote_locked(name, std::move(staged));
    return {ReloadResult::Status::kPromoted, model->generation, ""};
  } catch (const std::exception& e) {
    // Corrupt replacement (already quarantined by the artifact layer):
    // keep serving the old generation, count a rollback, arm backoff.
    std::lock_guard<std::mutex> lock(mu_);
    Lifecycle& lc = lifecycle_[name];
    lc.reloading = false;
    ++lc.rollbacks;
    ++stats_.rollbacks;
    note_failure_locked(lc, e.what());
    return {ReloadResult::Status::kRolledBack, current->generation, e.what()};
  }
}

ReloadResult ModelRegistry::check_stale(const std::string& name) {
  std::shared_ptr<const LoadedModel> current;
  std::uint64_t stat_size = 0;
  std::int64_t stat_mtime_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.ready) {
      return {ReloadResult::Status::kNotResident, 0, "model not resident"};
    }
    current = it->second.future.get();
    Lifecycle& lc = lifecycle_[name];
    if (lc.pinned) {
      return {ReloadResult::Status::kPinned, current->generation,
              "model pinned"};
    }
    if (lc.consecutive_failures > 0 && Clock::now() < lc.retry_after) {
      return {ReloadResult::Status::kBackoff, current->generation,
              lc.last_error};
    }
    stat_size = it->second.stat_size;
    stat_mtime_ns = it->second.stat_mtime_ns;
  }
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;
  if (!stat_bundle(path_for(name), &size, &mtime_ns)) {
    // File deleted out from under us: keep serving the resident
    // generation (shared_ptr ownership makes that safe indefinitely).
    return {ReloadResult::Status::kUnchanged, current->generation, ""};
  }
  if (size == stat_size && mtime_ns == stat_mtime_ns) {
    return {ReloadResult::Status::kUnchanged, current->generation, ""};
  }
  return reload(name);
}

std::vector<std::pair<std::string, ReloadResult>> ModelRegistry::poll_stale() {
  std::vector<std::pair<std::string, ReloadResult>> events;
  for (const auto& name : resident()) {
    ReloadResult result = check_stale(name);
    if (result.status != ReloadResult::Status::kUnchanged) {
      events.emplace_back(name, std::move(result));
    }
  }
  return events;
}

bool ModelRegistry::pin(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  lifecycle_[name].pinned = true;
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.ready;
}

bool ModelRegistry::unpin(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  lifecycle_[name].pinned = false;
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.ready;
}

std::vector<std::string> ModelRegistry::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.ready) names.push_back(name);
  }
  return names;
}

std::vector<ModelInfo> ModelRegistry::models() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelInfo> infos;
  for (const auto& [name, entry] : entries_) {
    if (!entry.ready) continue;
    const auto model = entry.future.get();  // ready: does not block
    ModelInfo info;
    info.name = name;
    info.generation = model->generation;
    info.checksum = model->checksum;
    info.loaded_at = model->loaded_at;
    info.power = model->bundle.power.has_value();
    auto lit = lifecycle_.find(name);
    if (lit != lifecycle_.end()) {
      info.rollbacks = lit->second.rollbacks;
      info.pinned = lit->second.pinned;
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ModelRegistry::evict_locked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) continue;
      auto lit = lifecycle_.find(it->first);
      if (lit != lifecycle_.end() && lit->second.pinned) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    // Everything over capacity is still loading or pinned: let the cache
    // run hot rather than evicting an in-flight load or a pinned model.
    if (victim == entries_.end()) return;
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace bf::serve
