#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace bf::serve {

ModelRegistry::ModelRegistry(std::string model_dir, std::size_t capacity)
    : dir_(std::move(model_dir)), capacity_(capacity == 0 ? 1 : capacity) {}

std::string ModelRegistry::path_for(const std::string& name) const {
  if (dir_.empty()) return name + kBundleSuffix;
  const char last = dir_.back();
  const std::string sep = (last == '/' || last == '\\') ? "" : "/";
  return dir_ + sep + name + kBundleSuffix;
}

std::shared_ptr<const ModelBundle> ModelRegistry::get(
    const std::string& name) {
  Future future;
  std::promise<std::shared_ptr<const ModelBundle>> promise;
  std::uint64_t my_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      ++stats_.hits;
      it->second.last_used = ++tick_;
      future = it->second.future;
    } else {
      ++stats_.misses;
      ++stats_.loads;
      future = promise.get_future().share();
      my_id = next_id_++;
      Entry entry;
      entry.future = future;
      entry.last_used = ++tick_;
      entry.id = my_id;
      entries_.emplace(name, std::move(entry));
    }
  }

  if (my_id != 0) {
    // This thread won the single-flight race: perform the load outside
    // the lock so concurrent gets for *other* models are not serialised
    // behind disk I/O.
    try {
      BF_CHECK_MSG(!fault::should_fire(fault::points::kServeCacheLoadFail),
                   "injected load failure for model " << name);
      auto bundle =
          std::make_shared<const ModelBundle>(load_bundle(path_for(name)));
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(name);
        if (it != entries_.end() && it->second.id == my_id) {
          it->second.ready = true;
        }
        // Evict only once the load succeeded: a failed load must never
        // push a good bundle out of the cache.
        evict_locked();
      }
      promise.set_value(std::move(bundle));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failures;
        auto it = entries_.find(name);
        // Erase only our own entry — a later retry may already have
        // replaced it.
        if (it != entries_.end() && it->second.id == my_id) {
          entries_.erase(it);
        }
      }
      promise.set_exception(std::current_exception());
    }
  }

  return future.get();  // rethrows the load error for every waiter
}

std::vector<std::string> ModelRegistry::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.ready) names.push_back(name);
  }
  return names;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ModelRegistry::evict_locked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    // Everything over capacity is still loading: let the cache run hot
    // rather than evicting an in-flight load.
    if (victim == entries_.end()) return;
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace bf::serve
