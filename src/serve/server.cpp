#include "serve/server.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "power/predictor.hpp"
#include "serve/json.hpp"

namespace bf::serve {
namespace {

/// Render a scalar id value back into JSON so replies echo whatever key
/// the client used (string, number, bool). Containers are not echoed.
std::string render_id(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kString: {
      std::string quoted;
      quoted += '"';
      quoted += json_escape(v.str);
      quoted += '"';
      return quoted;
    }
    case JsonValue::Type::kNumber:
      return json_number(v.number);
    case JsonValue::Type::kBool:
      return v.boolean ? "true" : "false";
    default:
      return {};
  }
}

bool is_admin_cmd(const std::string& cmd) {
  return cmd == "reload" || cmd == "pin" || cmd == "unpin";
}

}  // namespace

std::string make_error_reply(const std::string& id_json,
                             const std::string& code,
                             const std::string& what) {
  std::ostringstream os;
  os << '{';
  if (!id_json.empty()) os << "\"id\":" << id_json << ',';
  os << "\"ok\":false,\"code\":\"" << json_escape(code) << "\",\"error\":\""
     << json_escape(what) << "\"}";
  return os.str();
}

struct Server::Request {
  bool valid = false;
  std::string parse_error;
  std::string cmd = "predict";
  std::string model;
  double size = 0.0;
  std::string id_json;
  /// Generation pinned for this request: the shared_ptr keeps the model
  /// alive across the whole batch even if it is evicted or a reload
  /// promotes a newer generation meanwhile.
  std::shared_ptr<const LoadedModel> model_ref;
  std::string model_error;
  /// Reply of an admin verb (reload/pin/unpin), rendered sequentially
  /// before the predict fan-out.
  std::string admin_rendered;
  /// Coalescing key: model + '\0' + canonical size rendering. Empty for
  /// anything that is not a computable predict request.
  std::string coalesce_key;
};

/// One prediction computed per distinct (model, size) in a batch; every
/// request sharing the key renders its reply from the same result.
struct Server::Computed {
  bool ok = false;
  std::string error;
  guard::PredictionGuardRecord rec{};
  /// Power response (filled only when the bundle carries the v3 power
  /// record; powerless replies stay byte-identical to the v2 wire shape).
  bool has_power = false;
  bf::power::PowerPrediction power{};
  double latency_us = 0.0;
};

Server::Server(const ServerOptions& options)
    : registry_(options.model_dir, options.cache_capacity, options.reload),
      allow_reload_(options.allow_reload),
      watch_ms_(options.allow_reload ? options.reload_watch_ms : 0) {
  if (options.threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(options.threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::global();
  }
  if (watch_ms_ > 0) {
    watcher_ = std::thread(&Server::watch_loop, this);
  }
}

Server::~Server() {
  if (watcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      stopping_ = true;
    }
    watch_cv_.notify_all();
    watcher_.join();
  }
}

void Server::watch_loop() {
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!stopping_) {
    const bool stop = watch_cv_.wait_for(
        lock, std::chrono::milliseconds(watch_ms_), [this] { return stopping_; });
    if (stop) break;
    lock.unlock();
    try {
      registry_.poll_stale();
    } catch (...) {
      // The watcher must outlive any single bad poll; failures are
      // already recorded in the registry's lifecycle state.
    }
    lock.lock();
  }
}

Server::Request Server::parse_request(const std::string& line) const {
  Request req;
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::exception& e) {
    req.parse_error = e.what();
    return req;
  }
  if (doc.type != JsonValue::Type::kObject) {
    req.parse_error = "request must be a JSON object";
    return req;
  }
  if (const JsonValue* id = doc.find("id")) req.id_json = render_id(*id);
  if (const JsonValue* cmd = doc.find("cmd")) {
    if (cmd->type != JsonValue::Type::kString) {
      req.parse_error = "\"cmd\" must be a string";
      return req;
    }
    req.cmd = cmd->str;
  }
  if (req.cmd == "stats") {
    req.valid = true;
    return req;
  }
  if (req.cmd != "predict" && !is_admin_cmd(req.cmd)) {
    req.parse_error = "unknown cmd \"" + req.cmd + "\"";
    return req;
  }
  const JsonValue* model = doc.find("model");
  if (model == nullptr || model->type != JsonValue::Type::kString ||
      model->str.empty()) {
    req.parse_error = req.cmd + " needs a string \"model\"";
    return req;
  }
  req.model = model->str;
  if (is_admin_cmd(req.cmd)) {
    req.valid = true;
    return req;
  }
  const JsonValue* size = doc.find("size");
  if (size == nullptr || size->type != JsonValue::Type::kNumber ||
      !std::isfinite(size->number) || size->number <= 0.0) {
    req.parse_error = "predict needs a finite positive \"size\"";
    return req;
  }
  req.size = size->number;
  req.valid = true;
  return req;
}

std::string Server::admin_reply(const Request& req) {
  if (!allow_reload_) {
    return make_error_reply(req.id_json, "reload_disabled",
                            "hot reload administration is disabled");
  }
  std::ostringstream os;
  os << '{';
  if (!req.id_json.empty()) os << "\"id\":" << req.id_json << ',';
  os << "\"ok\":true,\"cmd\":\"" << json_escape(req.cmd) << "\",\"model\":\""
     << json_escape(req.model) << '"';
  if (req.cmd == "reload") {
    const ReloadResult result = registry_.reload(req.model);
    os << ",\"status\":\"" << to_string(result.status) << "\""
       << ",\"generation\":" << result.generation;
    if (!result.error.empty()) {
      os << ",\"error\":\"" << json_escape(result.error) << '"';
    }
  } else {
    const bool resident = req.cmd == "pin" ? registry_.pin(req.model)
                                           : registry_.unpin(req.model);
    os << ",\"resident\":" << (resident ? "true" : "false");
  }
  os << '}';
  return os.str();
}

std::string Server::render_reply(const Request& req,
                                 const Computed& result) const {
  if (!result.ok) {
    return make_error_reply(req.id_json, "predict_failed", result.error);
  }
  const guard::PredictionGuardRecord& rec = result.rec;
  std::ostringstream os;
  os << '{';
  if (!req.id_json.empty()) os << "\"id\":" << req.id_json << ',';
  os << "\"ok\":true,\"model\":\"" << json_escape(req.model) << "\""
     << ",\"generation\":" << req.model_ref->generation
     << ",\"size\":" << json_number(req.size)
     << ",\"predicted_ms\":" << json_number(rec.value)
     << ",\"interval_lo_ms\":" << json_number(rec.lo)
     << ",\"interval_hi_ms\":" << json_number(rec.hi) << ",\"grade\":\""
     << guard::grade_letter(rec.grade) << "\",\"extrapolated\":"
     << (rec.extrapolated ? "true" : "false");
  if (result.has_power) {
    os << ",\"power_w\":" << json_number(result.power.power_w)
       << ",\"energy_j\":" << json_number(result.power.energy_j)
       << ",\"power_grade\":\""
       << guard::grade_letter(result.power.energy_grade) << '"';
  }
  os << ",\"latency_us\":" << json_number(result.latency_us) << '}';
  return os.str();
}

std::string Server::stats_reply() const {
  const RegistryStats s = registry_.stats();
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"stats\",\"hits\":" << s.hits
     << ",\"misses\":" << s.misses << ",\"loads\":" << s.loads
     << ",\"evictions\":" << s.evictions << ",\"failures\":" << s.failures
     << ",\"fast_fails\":" << s.fast_fails << ",\"reloads\":" << s.reloads
     << ",\"promotions\":" << s.promotions << ",\"rollbacks\":" << s.rollbacks
     << ",\"coalesced\":" << coalesced_.load(std::memory_order_relaxed)
     << ",\"resident\":[";
  bool first = true;
  for (const auto& name : registry_.resident()) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << '"';
  }
  os << "],\"models\":[";
  first = true;
  for (const auto& info : registry_.models()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(info.name)
       << "\",\"generation\":" << info.generation << ",\"checksum\":\""
       << json_escape(info.checksum) << "\",\"loaded_at\":\""
       << json_escape(info.loaded_at) << "\",\"rollbacks\":" << info.rollbacks
       << ",\"pinned\":" << (info.pinned ? "true" : "false")
       << ",\"power\":" << (info.power ? "true" : "false") << '}';
  }
  os << "]";
  if (net_ != nullptr) {
    os << ",\"net\":{\"accepted\":"
       << net_->accepted.load(std::memory_order_relaxed)
       << ",\"active_conns\":"
       << net_->active_conns.load(std::memory_order_relaxed)
       << ",\"requests\":" << net_->requests.load(std::memory_order_relaxed)
       << ",\"replies\":" << net_->replies.load(std::memory_order_relaxed)
       << ",\"queue_depth\":"
       << net_->queue_depth.load(std::memory_order_relaxed)
       << ",\"shed\":" << net_->shed.load(std::memory_order_relaxed)
       << ",\"timeouts\":" << net_->timeouts.load(std::memory_order_relaxed)
       << ",\"disconnects\":"
       << net_->disconnects.load(std::memory_order_relaxed)
       << ",\"overloaded_conns\":"
       << net_->overloaded_conns.load(std::memory_order_relaxed)
       << ",\"accept_errors\":"
       << net_->accept_errors.load(std::memory_order_relaxed) << '}';
  }
  os << '}';
  return os.str();
}

std::string Server::handle_line(const std::string& line) {
  std::vector<std::string> replies = handle_batch({line});
  return replies.front();
}

std::vector<std::string> Server::handle_batch(
    const std::vector<std::string>& lines) {
  std::vector<Request> requests;
  requests.reserve(lines.size());
  for (const auto& line : lines) requests.push_back(parse_request(line));

  // Admin verbs run first, sequentially, in input order — a reload in a
  // batch takes effect before that batch's predicts resolve, and two
  // verbs in one batch cannot race each other.
  for (auto& req : requests) {
    if (req.valid && is_admin_cmd(req.cmd)) {
      req.admin_rendered = admin_reply(req);
    }
  }

  // Resolve each distinct model once; the registry's single-flight path
  // already dedupes, this just avoids redundant future round-trips and
  // gives the whole batch one coherent generation per model.
  std::map<std::string, std::pair<std::shared_ptr<const LoadedModel>,
                                  std::string>>
      resolved;
  for (const auto& req : requests) {
    if (req.valid && req.cmd == "predict") resolved.emplace(req.model,
        std::pair<std::shared_ptr<const LoadedModel>, std::string>{});
  }
  std::vector<std::string> names;
  names.reserve(resolved.size());
  for (const auto& [name, unused] : resolved) names.push_back(name);
  pool_->parallel_for(0, names.size(), [&](std::size_t i) {
    // find() keeps the concurrent map access read-only on the tree
    // structure; each task writes only its own slot. Pool tasks must
    // not throw: fold load errors into the reply text.
    auto& slot = resolved.find(names[i])->second;
    try {
      slot.first = registry_.get(names[i]);
    } catch (const std::exception& e) {
      slot.second = e.what();
    }
  });

  // Coalesce identical (model, size) rows: one computation per distinct
  // key, every duplicate answered from it (with its own id echoed).
  std::map<std::string, Computed> computed;
  std::vector<const Request*> representative;
  std::vector<std::string> keys;
  std::uint64_t duplicates = 0;
  for (auto& req : requests) {
    if (!req.valid || req.cmd != "predict") continue;
    auto it = resolved.find(req.model);
    req.model_ref = it->second.first;
    req.model_error = it->second.second;
    if (req.model_ref == nullptr) continue;
    req.coalesce_key = req.model;
    req.coalesce_key += '\0';
    req.coalesce_key += json_number(req.size);
    const auto [slot, inserted] = computed.emplace(req.coalesce_key,
                                                   Computed{});
    if (inserted) {
      keys.push_back(req.coalesce_key);
      representative.push_back(&req);
    } else {
      ++duplicates;
    }
  }
  if (duplicates > 0) {
    coalesced_.fetch_add(duplicates, std::memory_order_relaxed);
  }
  pool_->parallel_for(0, keys.size(), [&](std::size_t i) {
    Computed& slot = computed.find(keys[i])->second;
    const Request& req = *representative[i];
    const auto t0 = std::chrono::steady_clock::now();
    try {
      slot.rec = req.model_ref->bundle.predictor.predict_guarded(req.size);
      if (req.model_ref->bundle.power.has_value()) {
        slot.power =
            req.model_ref->bundle.power->predict_guarded(req.size, slot.rec);
        slot.has_power = true;
      }
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    }
    const auto t1 = std::chrono::steady_clock::now();
    slot.latency_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
  });

  std::vector<std::string> replies(requests.size());
  pool_->parallel_for(0, requests.size(), [&](std::size_t i) {
    const Request& req = requests[i];
    if (!req.valid) {
      replies[i] = make_error_reply(req.id_json, "malformed", req.parse_error);
    } else if (req.cmd == "stats") {
      replies[i] = stats_reply();
    } else if (is_admin_cmd(req.cmd)) {
      replies[i] = req.admin_rendered;
    } else if (req.model_ref == nullptr) {
      replies[i] = make_error_reply(req.id_json, "model_unavailable",
                                    req.model_error.empty()
                                        ? "model unavailable"
                                        : req.model_error);
    } else {
      replies[i] = render_reply(req, computed.find(req.coalesce_key)->second);
    }
  });
  return replies;
}

}  // namespace bf::serve
