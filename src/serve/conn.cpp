#include "serve/conn.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <fcntl.h>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"

namespace bf::serve {
namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Transient-accept-failure backoff: long enough not to spin, short
/// enough that a freed descriptor is picked up promptly.
constexpr std::int64_t kAcceptBackoffMs = 50;

constexpr char kWakeStop = 's';
constexpr char kWakeCompletion = 'c';

}  // namespace

/// One reply slot per admitted request line, answered strictly FIFO:
/// slots become ready out of order (shed replies are ready at admission,
/// batch replies when the worker finishes) but are flushed in order.
struct NetServer::Conn {
  struct Slot {
    bool ready = false;
    std::string reply;
  };

  Conn(int fd_in, std::uint64_t id_in, std::size_t max_line,
       std::int64_t now)
      : fd(fd_in), id(id_in), in(max_line), last_activity_ms(now) {}

  int fd = -1;
  std::uint64_t id = 0;
  LineBuffer in;
  std::deque<Slot> slots;      ///< unanswered/unflushed replies, FIFO
  std::uint64_t front_seq = 0; ///< sequence number of slots.front()
  std::uint64_t next_seq = 0;
  /// Admitted lines waiting for the next batch (seq, request line).
  std::vector<std::pair<std::uint64_t, std::string>> backlog;
  std::size_t admitted_unanswered = 0;  ///< this conn's share of queued_
  bool job_in_flight = false;
  std::string out;            ///< rendered replies awaiting write
  std::size_t out_off = 0;
  std::int64_t last_activity_ms = 0;
  bool read_closed = false;   ///< EOF seen, poisoned, or draining
  bool dead = false;

  std::size_t unsent() const { return out.size() - out_off; }
  bool work_pending() const {
    return !slots.empty() || !backlog.empty() || job_in_flight ||
           unsent() > 0;
  }
};

NetServer::NetServer(Server& server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {
  BF_CHECK_MSG(!options_.unix_path.empty() || options_.tcp_port >= 0,
               "NetServer needs a Unix path and/or a TCP port");
  BF_CHECK_MSG(options_.workers > 0, "NetServer needs at least one worker");
  ignore_sigpipe();
  int pipe_fds[2] = {-1, -1};
  BF_CHECK_MSG(::pipe(pipe_fds) == 0,
               "cannot create wake pipe: " << std::strerror(errno));
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  if (!options_.unix_path.empty()) {
    listeners_.push_back(listen_unix(options_.unix_path, options_.backlog));
  }
  if (options_.tcp_port >= 0) {
    const int fd = listen_tcp(options_.tcp_host,
                              static_cast<std::uint16_t>(options_.tcp_port),
                              options_.backlog);
    listeners_.push_back(fd);
    tcp_port_ = local_port(fd);
  }
}

NetServer::~NetServer() {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    workers_stop_ = true;
  }
  jobs_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (const int fd : listeners_) ::close(fd);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  for (auto& [id, conn] : conns_) {
    if (!conn->dead) ::close(conn->fd);
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void NetServer::request_stop() {
  const char byte = kWakeStop;
  // A full pipe already guarantees a pending wake-up; the byte value is
  // then lost, so the reader also rechecks on every wake (see run()).
  (void)!::write(wake_write_fd_, &byte, 1);
}

void NetServer::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_ready_.wait(lock,
                       [this] { return workers_stop_ || !jobs_.empty(); });
      if (workers_stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (options_.before_batch) options_.before_batch();
    std::vector<std::string> replies;
    try {
      replies = server_.handle_batch(job.lines);
    } catch (const std::exception& e) {
      replies.assign(job.lines.size(),
                     make_error_reply("", "predict_failed", e.what()));
    }
    // handle_batch is positionally aligned by contract; pad defensively
    // so a short reply vector can never wedge a connection forever.
    replies.resize(job.lines.size(),
                   make_error_reply("", "predict_failed", "missing reply"));
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      Completion done;
      done.conn_id = job.conn_id;
      done.seqs = std::move(job.seqs);
      done.replies = std::move(replies);
      completions_.push_back(std::move(done));
    }
    const char byte = kWakeCompletion;
    (void)!::write(wake_write_fd_, &byte, 1);
  }
}

void NetServer::accept_pending(int listener) {
  while (true) {
    int fd = -1;
    const AcceptResult result = accept_ready(listener, &fd);
    if (result == AcceptResult::kNone) return;
    if (result == AcceptResult::kTransient) {
      counters_.accept_errors.fetch_add(1, std::memory_order_relaxed);
      accept_cooldown_until_ms_ = now_ms() + kAcceptBackoffMs;
      BF_WARN("bf_serve: accept failed transiently ("
              << std::strerror(errno) << "); backing off "
              << kAcceptBackoffMs << "ms");
      return;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    accepted_any_ = true;
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(fd, id, options_.max_line, now_ms());
    counters_.active_conns.fetch_add(1, std::memory_order_relaxed);
    if (conns_.size() >= options_.max_conns) {
      // Refuse loudly instead of letting the kernel backlog absorb the
      // connection silently: one structured reply, then close.
      counters_.overloaded_conns.fetch_add(1, std::memory_order_relaxed);
      Conn::Slot slot;
      slot.ready = true;
      slot.reply =
          make_error_reply("", "shed", "overloaded: connection limit reached");
      conn->slots.push_back(std::move(slot));
      conn->next_seq = 1;
      conn->read_closed = true;
    }
    Conn& ref = *conn;
    conns_.emplace(id, std::move(conn));
    flush(ref);  // the overload reply, if any, goes out immediately
  }
}

/// Admission control for freshly framed request lines. Runs on the I/O
/// thread; shedding is therefore O(1) per request with no parsing, no
/// allocation beyond the reply string, and no contention with workers.
void NetServer::admit_lines(Conn& conn, std::vector<std::string>& lines) {
  for (auto& line : lines) {
    if (conn.dead) return;
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    if (fault::should_fire(fault::points::kServeNetDisconnect)) {
      force_close(conn, true);
      return;
    }
    const bool shed = queued_ >= options_.max_queue;
    Conn::Slot slot;
    if (shed) {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      slot.ready = true;
      slot.reply = make_error_reply("", "shed", "overloaded: request queue full");
    } else {
      conn.backlog.emplace_back(conn.next_seq, std::move(line));
      ++conn.admitted_unanswered;
      ++queued_;
      counters_.queue_depth.store(queued_, std::memory_order_relaxed);
    }
    conn.slots.push_back(std::move(slot));
    ++conn.next_seq;
  }
  lines.clear();
}

void NetServer::handle_readable(Conn& conn) {
  char buf[16384];
  std::vector<std::string> lines;
  while (!conn.dead && !conn.read_closed) {
    // Backpressure: a client that does not read its replies stops being
    // read from until the write backlog drains below the cap.
    if (conn.unsent() > options_.max_write_buffer) break;
    const int r = read_some(conn.fd, buf, sizeof(buf));
    if (r > 0) {
      conn.last_activity_ms = now_ms();
      if (!conn.in.append(buf, static_cast<std::size_t>(r), lines)) {
        admit_lines(conn, lines);
        if (conn.dead) return;
        // Oversized request line: no resynchronisation is possible
        // inside it, so answer once and stop reading.
        Conn::Slot slot;
        slot.ready = true;
        slot.reply = make_error_reply(
            "", "malformed", "request line exceeds the size limit");
        conn.slots.push_back(std::move(slot));
        ++conn.next_seq;
        conn.read_closed = true;
        break;
      }
      admit_lines(conn, lines);
      if (conn.dead) return;
      continue;
    }
    if (r == kIoEof) {
      conn.read_closed = true;
      // Half-close compatibility: a trailing line without a newline is
      // still a request.
      std::string tail;
      if (conn.in.take_partial(tail)) {
        lines.push_back(std::move(tail));
        admit_lines(conn, lines);
        if (conn.dead) return;
      }
      break;
    }
    if (r == kIoWouldBlock) break;
    force_close(conn, true);  // kIoPeerGone
    return;
  }
  dispatch(conn);
  flush(conn);
}

void NetServer::dispatch(Conn& conn) {
  if (conn.dead || conn.job_in_flight || conn.backlog.empty()) return;
  Job job;
  job.conn_id = conn.id;
  job.seqs.reserve(conn.backlog.size());
  job.lines.reserve(conn.backlog.size());
  for (auto& [seq, line] : conn.backlog) {
    job.seqs.push_back(seq);
    job.lines.push_back(std::move(line));
  }
  conn.backlog.clear();
  conn.job_in_flight = true;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_ready_.notify_one();
}

void NetServer::flush(Conn& conn) {
  if (conn.dead) return;
  while (!conn.slots.empty() && conn.slots.front().ready) {
    conn.out += conn.slots.front().reply;
    conn.out += '\n';
    conn.slots.pop_front();
    ++conn.front_seq;
    counters_.replies.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn.unsent() > 0 &&
      !fault::should_fire(fault::points::kServeNetStall)) {
    while (conn.unsent() > 0) {
      const int w =
          send_some(conn.fd, conn.out.data() + conn.out_off, conn.unsent());
      if (w > 0) {
        conn.out_off += static_cast<std::size_t>(w);
        conn.last_activity_ms = now_ms();
        continue;
      }
      if (w == kIoWouldBlock) break;
      force_close(conn, true);  // peer vanished mid-reply (EPIPE path)
      return;
    }
    if (conn.unsent() == 0) {
      conn.out.clear();
      conn.out_off = 0;
    }
  }
  if (conn.read_closed && !conn.work_pending()) {
    // Everything admitted was answered and written: orderly completion.
    close_conn(conn);
  }
}

void NetServer::deliver_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (auto& completion : done) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;
    if (it->second->dead) {
      // The peer is gone; drop the replies, but release the job so the
      // dead connection can be reclaimed (queued_ was already settled
      // when it closed).
      it->second->job_in_flight = false;
      continue;
    }
    Conn& conn = *it->second;
    conn.job_in_flight = false;
    conn.last_activity_ms = now_ms();
    for (std::size_t i = 0; i < completion.seqs.size(); ++i) {
      const std::uint64_t seq = completion.seqs[i];
      const std::size_t idx = static_cast<std::size_t>(seq - conn.front_seq);
      if (idx >= conn.slots.size()) continue;  // defensive; cannot happen
      conn.slots[idx].ready = true;
      conn.slots[idx].reply = std::move(completion.replies[i]);
      --conn.admitted_unanswered;
      --queued_;
    }
    counters_.queue_depth.store(queued_, std::memory_order_relaxed);
    dispatch(conn);
    flush(conn);
  }
}

void NetServer::close_conn(Conn& conn) {
  if (conn.dead) return;
  conn.dead = true;
  ::close(conn.fd);
  conn.fd = -1;
  queued_ -= conn.admitted_unanswered;
  conn.admitted_unanswered = 0;
  counters_.queue_depth.store(queued_, std::memory_order_relaxed);
  counters_.active_conns.fetch_sub(1, std::memory_order_relaxed);
}

void NetServer::force_close(Conn& conn, bool count_disconnect) {
  if (conn.dead) return;
  if (count_disconnect) {
    counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
  }
  close_conn(conn);
}

void NetServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ms_ = now_ms() + options_.drain_ms;
  for (const int fd : listeners_) ::close(fd);
  listeners_.clear();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  // No new requests during the drain; in-flight ones finish (or hit the
  // drain deadline) and their replies still go out.
  for (auto& [id, conn] : conns_) {
    if (!conn->dead) {
      conn->read_closed = true;
      flush(*conn);
    }
  }
}

void NetServer::finish_drain() {
  for (auto& [id, conn] : conns_) {
    if (conn->dead) continue;
    bool timed_out = false;
    for (auto& slot : conn->slots) {
      if (slot.ready) continue;
      slot.ready = true;
      slot.reply =
          make_error_reply("", "timeout", "server draining: request abandoned");
      timed_out = true;
    }
    for (auto& [seq, line] : conn->backlog) {
      (void)seq;
      (void)line;
      timed_out = true;
    }
    conn->backlog.clear();
    if (timed_out) {
      counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    flush(*conn);  // best effort; close regardless below
    if (!conn->dead) close_conn(*conn);
  }
}

bool NetServer::fully_drained() const {
  for (const auto& [id, conn] : conns_) {
    if (!conn->dead) return false;
  }
  return true;
}

int NetServer::run() {
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }

  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn_ids;
  bool stop_requested = false;
  while (true) {
    const std::int64_t now = now_ms();
    pfds.clear();
    pfd_conn_ids.clear();
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    const bool accept_cooled = now >= accept_cooldown_until_ms_;
    std::size_t listeners_polled = 0;
    if (!draining_ && accept_cooled) {
      for (const int fd : listeners_) pfds.push_back({fd, POLLIN, 0});
      listeners_polled = listeners_.size();
    }
    const std::size_t conn_base = pfds.size();
    for (auto& [id, conn] : conns_) {
      if (conn->dead) continue;
      short events = 0;
      if (!conn->read_closed &&
          conn->unsent() <= options_.max_write_buffer) {
        events |= POLLIN;
      }
      if (conn->unsent() > 0) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({conn->fd, events, 0});
      pfd_conn_ids.push_back(id);
    }

    // Wake at the earliest deadline: a connection timeout, the drain
    // deadline, or the end of an accept backoff.
    std::int64_t wake_at = -1;
    for (const auto& [id, conn] : conns_) {
      if (conn->dead) continue;
      const std::int64_t deadline =
          conn->last_activity_ms + options_.timeout_ms;
      if (wake_at < 0 || deadline < wake_at) wake_at = deadline;
    }
    if (draining_ && (wake_at < 0 || drain_deadline_ms_ < wake_at)) {
      wake_at = drain_deadline_ms_;
    }
    if (!accept_cooled &&
        (wake_at < 0 || accept_cooldown_until_ms_ < wake_at)) {
      wake_at = accept_cooldown_until_ms_;
    }
    const int timeout =
        wake_at < 0 ? -1
                    : static_cast<int>(std::max<std::int64_t>(0, wake_at - now));

    const int ready = ::poll(pfds.data(), pfds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      BF_FAIL("poll failed: " << std::strerror(errno));
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      int r = 0;
      while ((r = read_some(wake_read_fd_, buf, sizeof(buf))) > 0) {
        for (int i = 0; i < r; ++i) {
          if (buf[i] == kWakeStop) stop_requested = true;
        }
      }
    }
    for (std::size_t i = 0; i < listeners_polled; ++i) {
      if ((pfds[1 + i].revents & (POLLIN | POLLERR)) != 0) {
        accept_pending(pfds[1 + i].fd);
        if (draining_) break;  // a transient error may not drain; be safe
      }
    }
    deliver_completions();
    if (stop_requested) begin_drain();

    for (std::size_t i = 0; i < pfd_conn_ids.size(); ++i) {
      const auto it = conns_.find(pfd_conn_ids[i]);
      if (it == conns_.end() || it->second->dead) continue;
      Conn& conn = *it->second;
      const short revents = pfds[conn_base + i].revents;
      if ((revents & POLLOUT) != 0) flush(conn);
      if (conn.dead) continue;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_readable(conn);
      }
    }

    // Per-connection inactivity timeouts.
    const std::int64_t after = now_ms();
    for (auto& [id, conn] : conns_) {
      if (conn->dead) continue;
      if (after - conn->last_activity_ms >= options_.timeout_ms) {
        counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
        close_conn(*conn);
      }
    }
    if (draining_ && after >= drain_deadline_ms_) finish_drain();

    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->dead && !it->second->job_in_flight) {
        it = conns_.erase(it);
      } else if (it->second->dead) {
        ++it;  // wait for the worker's completion before reclaiming
      } else {
        ++it;
      }
    }

    if (draining_ && fully_drained() && conns_.empty()) break;
    if (options_.once && accepted_any_ && !draining_) {
      bool all_closed = true;
      for (const auto& [id, conn] : conns_) {
        if (!conn->dead) all_closed = false;
      }
      if (all_closed) begin_drain();
    }
  }

  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    workers_stop_ = true;
  }
  jobs_ready_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  return 0;
}

}  // namespace bf::serve
