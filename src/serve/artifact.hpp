// .bfmodel artifact bundles — the train-once / predict-many layer.
//
// A bundle serialises everything one problem-scaling prediction needs:
// the reduced random forest, the per-counter fallback chains, the
// DomainGuard training hull, guard thresholds, sanity envelopes and the
// architecture whose physical caps clamp predictions — plus provenance
// (who trained it, with which build) and a counter-name schema. The
// on-disk format is a three-line header
//
//   bfmodel <format_version>
//   bytes <payload_size>
//   checksum fnv1a64 <hex64>
//
// followed by exactly `payload_size` payload bytes. The checksum covers
// the payload, so truncation, bit rot and torn writes are all detected
// on load; writes go through bf::atomic_write_file so readers never see
// a partial bundle. A corrupt bundle is quarantined (renamed to
// "<path>.quarantined", the run-repository convention) and the load
// throws — the serving layer degrades to an error reply, never a crash.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/predictor.hpp"

namespace bf::serve {

/// Current writer version of the outer bundle format. Version 2 payloads
/// embed the forest in its frozen flat inference layout ("bf_model 2" /
/// "bf_flat_forest 1" records) instead of the pointer-tree dump; version 1
/// bundles still load — their forest is frozen on load, so either vintage
/// serves through the same flat hot path.
inline constexpr int kBundleFormatVersion = 2;

/// File suffix of model bundles ("reduce1.bfmodel").
inline constexpr const char* kBundleSuffix = ".bfmodel";

struct BundleMeta {
  /// Model name (registry display key); sanitised to one token.
  std::string name;
  /// Workload and architecture the sweep was collected on.
  std::string workload;
  std::string arch;
  /// Build identity of the exporter (bf::version_string()).
  std::string provenance;
  /// Rows of the training sweep.
  std::size_t trained_rows = 0;
  /// Counter-name schema: the reduced model's predictor columns, in
  /// order. Validated against the embedded forest on load.
  std::vector<std::string> schema;
};

struct ModelBundle {
  BundleMeta meta;
  core::ProblemScalingPredictor predictor;
};

/// Serialise a bundle to its full file content (header + payload).
std::string bundle_to_string(const ModelBundle& bundle);

/// Parse and validate bundle file content. `origin` names the source in
/// diagnostics. Throws bf::Error on any validation failure (magic,
/// version, checksum, truncation, schema mismatch).
ModelBundle bundle_from_string(const std::string& content,
                               const std::string& origin);

/// Write a bundle atomically (temp file + rename).
void save_bundle(const std::string& path, const ModelBundle& bundle);

/// Read, verify and parse a bundle. Corrupt bundles are quarantined to
/// "<path>.quarantined" before the error is thrown, so the next load
/// attempt fails fast on a missing file instead of re-parsing garbage.
/// The fault point serve.artifact.bitrot flips one payload byte between
/// disk and the parser to prove that path works.
ModelBundle load_bundle(const std::string& path);

/// Convenience: assemble meta + predictor and save.
void export_model(const std::string& path, const std::string& name,
                  const std::string& workload, const std::string& arch,
                  std::size_t trained_rows,
                  const core::ProblemScalingPredictor& predictor);

}  // namespace bf::serve
