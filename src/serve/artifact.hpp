// .bfmodel artifact bundles — the train-once / predict-many layer.
//
// A bundle serialises everything one problem-scaling prediction needs:
// the reduced random forest, the per-counter fallback chains, the
// DomainGuard training hull, guard thresholds, sanity envelopes and the
// architecture whose physical caps clamp predictions — plus provenance
// (who trained it, with which build) and a counter-name schema. The
// on-disk format is a three-line header
//
//   bfmodel <format_version>
//   bytes <payload_size>
//   checksum fnv1a64 <hex64>
//
// followed by exactly `payload_size` payload bytes. The checksum covers
// the payload, so truncation, bit rot and torn writes are all detected
// on load; writes go through bf::atomic_write_file so readers never see
// a partial bundle. A corrupt bundle is quarantined (renamed to
// "<path>.quarantined", the run-repository convention) and the load
// throws — the serving layer degrades to an error reply, never a crash.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "power/predictor.hpp"

namespace bf::serve {

/// Current writer version of the outer bundle format. Version 2 payloads
/// embed the forest in its frozen flat inference layout ("bf_model 2" /
/// "bf_flat_forest 1" records) instead of the pointer-tree dump; version 1
/// bundles still load — their forest is frozen on load, so either vintage
/// serves through the same flat hot path. Version 3 adds an *optional*
/// trailing power record (a bf::power::PowerPredictor trained on the same
/// sweep); v1/v2 bundles — and v3 bundles exported without --power — load
/// with no power predictor and predict times bit-identically.
inline constexpr int kBundleFormatVersion = 3;

/// File suffix of model bundles ("reduce1.bfmodel").
inline constexpr const char* kBundleSuffix = ".bfmodel";

/// One golden-probe canary point: a problem size and the guarded
/// prediction the exporter's in-memory predictor produced for it. Since
/// bundle round-trips are bit-identical, a healthy reload reproduces
/// these outputs exactly; a torn, stale-schema or otherwise damaged
/// bundle that still parses will not.
struct GoldenProbe {
  double size = 0.0;
  double predicted_ms = 0.0;
};

struct BundleMeta {
  /// Model name (registry display key); sanitised to one token.
  std::string name;
  /// Workload and architecture the sweep was collected on.
  std::string workload;
  std::string arch;
  /// Build identity of the exporter (bf::version_string()).
  std::string provenance;
  /// Rows of the training sweep.
  std::size_t trained_rows = 0;
  /// Counter-name schema: the reduced model's predictor columns, in
  /// order. Validated against the embedded forest on load.
  std::vector<std::string> schema;
  /// Golden-probe record written at export time (additive, v2-compatible:
  /// bundles written before this record existed load with no probes and
  /// are canary-checked against hull-synthesized sizes instead).
  std::vector<GoldenProbe> probes;
};

struct ModelBundle {
  BundleMeta meta;
  core::ProblemScalingPredictor predictor;
  /// Power response predictor (v3 optional record): present only when the
  /// exporter embedded one; replies then carry power_w/energy_j fields.
  std::optional<bf::power::PowerPredictor> power;
};

/// A bundle plus the on-disk identity the hot-reload layer supervises:
/// payload checksum, outer format version and the stat snapshot used
/// for cheap staleness detection.
struct BundleFile {
  ModelBundle bundle;
  std::string checksum;    ///< fnv1a64 hex of the payload
  int format_version = 0;  ///< outer "bfmodel" header version
  std::uint64_t size_bytes = 0;
  std::int64_t mtime_ns = 0;
};

/// Stat a bundle file without reading it (the staleness fast path).
/// Returns false when the file does not exist.
bool stat_bundle(const std::string& path, std::uint64_t* size_bytes,
                 std::int64_t* mtime_ns);

/// Serialise a bundle to its full file content (header + payload).
std::string bundle_to_string(const ModelBundle& bundle);

/// Parse and validate bundle file content. `origin` names the source in
/// diagnostics. Throws bf::Error on any validation failure (magic,
/// version, checksum, truncation, schema mismatch).
ModelBundle bundle_from_string(const std::string& content,
                               const std::string& origin);

/// Write a bundle atomically (temp file + rename).
void save_bundle(const std::string& path, const ModelBundle& bundle);

/// Read, verify and parse a bundle. Corrupt bundles are quarantined to
/// "<path>.quarantined" before the error is thrown, so the next load
/// attempt fails fast on a missing file instead of re-parsing garbage.
/// The fault point serve.artifact.bitrot flips one payload byte between
/// disk and the parser to prove that path works.
ModelBundle load_bundle(const std::string& path);

/// load_bundle plus the identity record the registry's reload
/// supervision needs (checksum, format version, stat snapshot).
BundleFile load_bundle_file(const std::string& path);

/// Move a rejected bundle to "<path>.quarantined" (the load path does
/// this automatically on parse failure; the reload path calls it for
/// bundles that parse but fail canary validation).
void quarantine_bundle(const std::string& path);

/// Golden-probe canary validation: every probe prediction must be
/// finite, non-negative, guard-gradeable, and within `rtol` relative
/// tolerance of the bundle's own recorded output. Bundles without a
/// probe record are checked for finiteness on sizes synthesized from
/// the training hull. The fault point serve.reload.canary_fail forces a
/// failure deterministically. Returns true when the canary passes;
/// otherwise fills `why` with the first violation.
bool validate_canary(const ModelBundle& bundle, double rtol,
                     std::string* why);

/// Convenience: assemble meta + predictor and save. `probe_count` > 0
/// records that many golden probes (log-spaced across the training
/// hull) into the bundle for reload-time canary validation. A non-null
/// `power` predictor is embedded as the v3 optional power record.
void export_model(const std::string& path, const std::string& name,
                  const std::string& workload, const std::string& arch,
                  std::size_t trained_rows,
                  const core::ProblemScalingPredictor& predictor,
                  std::size_t probe_count = 5,
                  const bf::power::PowerPredictor* power = nullptr);

}  // namespace bf::serve
