// The bf_serve request broker: newline-delimited JSON in, newline-
// delimited JSON out.
//
// Requests:
//   {"cmd":"predict","model":"<name>","size":<n>,"id":<any>}   (cmd
//     defaults to "predict" when omitted)
//   {"cmd":"stats"}
//
// A predict reply carries the guarded prediction: predicted time, the
// per-tree interval, the confidence grade and the request's service
// latency. Every failure — unknown model, corrupt bundle, malformed
// JSON — degrades to an {"ok":false,"error":...} reply on that line;
// the server itself never dies on bad input and the cache stays
// consistent. Batches are grouped per model (one registry resolution
// per distinct model) and fanned across the thread pool, with replies
// emitted in input order.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/registry.hpp"

namespace bf::serve {

struct ServerOptions {
  std::string model_dir = ".";
  std::size_t cache_capacity = 8;
  /// Worker threads for batch fan-out; 0 uses the process-global pool.
  std::size_t threads = 0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);

  /// Serve one request line; always returns exactly one reply line
  /// (without the trailing newline).
  std::string handle_line(const std::string& line);

  /// Serve a batch of request lines; replies are positionally aligned
  /// with the inputs. Predict requests are grouped per model and run
  /// concurrently on the pool.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  ModelRegistry& registry() { return registry_; }

 private:
  struct Request;

  Request parse_request(const std::string& line) const;
  std::string serve_request(Request& req);
  std::string stats_reply() const;

  ModelRegistry registry_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
};

}  // namespace bf::serve
