// The bf_serve request broker: newline-delimited JSON in, newline-
// delimited JSON out.
//
// Requests:
//   {"cmd":"predict","model":"<name>","size":<n>,"id":<any>}   (cmd
//     defaults to "predict" when omitted)
//   {"cmd":"stats"}
//   {"cmd":"reload","model":"<name>"}   force a supervised hot reload
//   {"cmd":"pin","model":"<name>"}      freeze the current generation
//   {"cmd":"unpin","model":"<name>"}
//
// A predict reply carries the guarded prediction: predicted time, the
// model generation it was computed against, the per-tree interval, the
// confidence grade and the request's service latency. Every failure —
// unknown model, corrupt bundle, malformed JSON — degrades to an
// {"ok":false,"code":...,"error":...} reply on that line; the server
// itself never dies on bad input and the cache stays consistent.
// Batches are grouped per model (one registry resolution per distinct
// model), identical (model, size) rows are computed once per batch
// (coalescing), and the work is fanned across the thread pool with
// replies emitted in input order.
//
// Hot reload: admin verbs and the optional staleness watcher (a
// Server-owned thread polling ModelRegistry::poll_stale every
// reload_watch_ms) both run off the I/O thread — verbs execute on the
// worker handling the batch, the watcher on its own thread. In-flight
// batches pin their generation with a shared_ptr, so a promotion mid-
// batch never tears a reply.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/net.hpp"
#include "serve/registry.hpp"

namespace bf::serve {

/// Render the canonical failure reply:
///   {"id":<id_json>,"ok":false,"code":"<code>","error":"<what>"}
/// (the id field is omitted when id_json is empty). Stable codes:
///   "malformed"          — the request line was not a valid request
///   "model_unavailable"  — the named model could not be loaded
///   "predict_failed"     — the model loaded but prediction threw
///   "reload_disabled"    — admin verb refused (--no-reload)
///   "shed"               — refused by admission control (net layer)
///   "timeout"            — abandoned by a deadline (net layer)
std::string make_error_reply(const std::string& id_json,
                             const std::string& code,
                             const std::string& what);

struct ServerOptions {
  std::string model_dir = ".";
  std::size_t cache_capacity = 8;
  /// Worker threads for batch fan-out; 0 uses the process-global pool.
  std::size_t threads = 0;
  /// Reload supervision (canary tolerance, failure backoff).
  ReloadPolicy reload;
  /// Staleness watcher period; 0 disables the watcher thread (reloads
  /// then only happen through the admin verb).
  std::uint64_t reload_watch_ms = 0;
  /// Master switch for the reload/pin/unpin admin verbs and the
  /// watcher (bf_serve --no-reload clears it).
  bool allow_reload = true;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  /// Serve one request line; always returns exactly one reply line
  /// (without the trailing newline).
  std::string handle_line(const std::string& line);

  /// Serve a batch of request lines; replies are positionally aligned
  /// with the inputs. Predict requests are grouped per model and run
  /// concurrently on the pool.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  ModelRegistry& registry() { return registry_; }

  /// Let `{"cmd":"stats"}` replies include the connection layer's
  /// counters. The pointed-to counters must outlive the server (the
  /// NetServer owns them and owns this server's lifetime in bf_serve).
  void attach_net(const NetCounters* counters) { net_ = counters; }

  /// Duplicate (model, size) rows answered from one computation.
  std::uint64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

 private:
  struct Request;
  struct Computed;

  Request parse_request(const std::string& line) const;
  std::string render_reply(const Request& req, const Computed& result) const;
  std::string stats_reply() const;
  /// Execute one reload/pin/unpin verb and render its reply.
  std::string admin_reply(const Request& req);
  /// Body of the staleness watcher thread.
  void watch_loop();

  ModelRegistry registry_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  const NetCounters* net_ = nullptr;
  std::atomic<std::uint64_t> coalesced_{0};
  bool allow_reload_ = true;
  std::uint64_t watch_ms_ = 0;
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool stopping_ = false;
  std::thread watcher_;
};

}  // namespace bf::serve
