#include "serve/artifact.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "common/version.hpp"
#include "guard/guard.hpp"
#include "profiling/sweep.hpp"

namespace bf::serve {
namespace {

/// Collapse whitespace to '_' so meta fields stay single tokens.
std::string tokenize_field(const std::string& s) {
  std::string out = s.empty() ? std::string("-") : s;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

/// Move a corrupt bundle out of the registry's way. Rename is atomic;
/// when it fails (cross-device, permissions) fall back to removal so a
/// poisoned file cannot be retried forever.
void quarantine(const std::string& path) {
  const std::string target = path + ".quarantined";
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    std::remove(path.c_str());
  }
}

std::string payload_to_string(const ModelBundle& bundle) {
  std::ostringstream os;
  os << "bf_bundle_meta 1\n";
  os << "name " << tokenize_field(bundle.meta.name) << "\n";
  os << "workload " << tokenize_field(bundle.meta.workload) << "\n";
  os << "arch " << tokenize_field(bundle.meta.arch) << "\n";
  // Provenance is free text (version strings contain spaces); it is the
  // one rest-of-line field in the format.
  os << "provenance " << bundle.meta.provenance << "\n";
  os << "trained_rows " << bundle.meta.trained_rows << "\n";
  os << "schema " << bundle.meta.schema.size();
  for (const auto& name : bundle.meta.schema) os << ' ' << name;
  os << "\n";
  if (!bundle.meta.probes.empty()) {
    // Golden-probe record: additive, written only when present, so v2
    // bundles without probes stay byte-identical to the previous writer.
    os.precision(17);
    os << "probes " << bundle.meta.probes.size();
    for (const auto& p : bundle.meta.probes) {
      os << ' ' << p.size << ' ' << p.predicted_ms;
    }
    os << "\n";
  }
  bundle.predictor.save(os);
  if (bundle.power.has_value()) {
    // Optional power record (the v3 addition): written only when present,
    // so bundles exported without --power stay byte-identical to the v2
    // writer's payload.
    os << "power\n";
    bundle.power->save(os);
  }
  return os.str();
}

ModelBundle payload_from_string(const std::string& payload,
                                const std::string& origin) {
  std::istringstream is(payload);
  const int format_version = read_format_version(is, "bf_bundle_meta", 1);
  (void)format_version;
  ModelBundle bundle;
  std::string tag;
  is >> tag >> bundle.meta.name;
  BF_CHECK_MSG(is && tag == "name", origin << ": bad bundle meta (name)");
  is >> tag >> bundle.meta.workload;
  BF_CHECK_MSG(is && tag == "workload",
               origin << ": bad bundle meta (workload)");
  is >> tag >> bundle.meta.arch;
  BF_CHECK_MSG(is && tag == "arch", origin << ": bad bundle meta (arch)");
  is >> tag;
  BF_CHECK_MSG(is && tag == "provenance",
               origin << ": bad bundle meta (provenance)");
  std::getline(is, bundle.meta.provenance);
  if (!bundle.meta.provenance.empty() &&
      bundle.meta.provenance.front() == ' ') {
    bundle.meta.provenance.erase(0, 1);
  }
  is >> tag >> bundle.meta.trained_rows;
  BF_CHECK_MSG(is && tag == "trained_rows",
               origin << ": bad bundle meta (trained_rows)");
  std::size_t n_schema = 0;
  is >> tag >> n_schema;
  BF_CHECK_MSG(is && tag == "schema" && n_schema <= 10'000,
               origin << ": bad bundle meta (schema)");
  bundle.meta.schema.resize(n_schema);
  for (auto& name : bundle.meta.schema) {
    is >> name;
    BF_CHECK_MSG(is, origin << ": truncated bundle schema");
  }
  // Optional golden-probe record (older bundles stop at the schema line;
  // peek the tag and rewind when the predictor record starts directly).
  const std::istringstream::pos_type before_probes = is.tellg();
  if (is >> tag && tag == "probes") {
    std::size_t n_probes = 0;
    is >> n_probes;
    BF_CHECK_MSG(is && n_probes <= 10'000,
                 origin << ": bad bundle meta (probes)");
    bundle.meta.probes.resize(n_probes);
    for (auto& p : bundle.meta.probes) {
      is >> p.size >> p.predicted_ms;
      BF_CHECK_MSG(is, origin << ": truncated bundle probes");
    }
  } else {
    is.clear();
    is.seekg(before_probes);
  }
  bundle.predictor = core::ProblemScalingPredictor::load(is);
  // The schema must describe the model it travels with: retained
  // counters drive the counter chains and the reduced forest inputs.
  BF_CHECK_MSG(bundle.meta.schema == bundle.predictor.retained(),
               origin << ": bundle schema does not match embedded model");
  // Optional trailing power record (v1/v2 bundles and powerless v3
  // bundles end at the predictor; peek the tag and rewind otherwise).
  const std::istringstream::pos_type before_power = is.tellg();
  if (is >> tag && tag == "power") {
    bundle.power = bf::power::PowerPredictor::load(is);
  } else {
    is.clear();
    is.seekg(before_power);
  }
  return bundle;
}

/// Full parse of bundle file content, keeping the on-disk identity
/// (checksum, format version) the reload layer supervises. The stat
/// fields of the returned BundleFile are left zero; load_bundle_file
/// fills them from the filesystem.
BundleFile bundle_file_from_string(const std::string& content,
                                   const std::string& origin) {
  std::istringstream is(content);
  const int format_version =
      read_format_version(is, "bfmodel", kBundleFormatVersion);
  std::string tag;
  std::size_t payload_size = 0;
  is >> tag >> payload_size;
  BF_CHECK_MSG(is && tag == "bytes",
               origin << ": bad bundle header (bytes)");
  std::string algo;
  std::string want_hex;
  is >> tag >> algo >> want_hex;
  BF_CHECK_MSG(is && tag == "checksum" && algo == "fnv1a64" &&
                   want_hex.size() == 16,
               origin << ": bad bundle header (checksum)");
  // Exactly one newline separates the header from the payload; anything
  // else would shift the byte count and is corruption.
  BF_CHECK_MSG(is.get() == '\n', origin << ": bad bundle header framing");
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  BF_CHECK_MSG(is.gcount() == static_cast<std::streamsize>(payload_size),
               origin << ": truncated bundle payload (want " << payload_size
                      << " bytes, got " << is.gcount() << ")");
  const std::string got_hex = to_hex64(fnv1a64(payload));
  BF_CHECK_MSG(got_hex == want_hex,
               origin << ": bundle checksum mismatch (stored " << want_hex
                      << ", computed " << got_hex << ")");
  BundleFile file;
  file.bundle = payload_from_string(payload, origin);
  file.checksum = got_hex;
  file.format_version = format_version;
  return file;
}

/// Shared read path of load_bundle / load_bundle_file: read, inject the
/// bitrot fault, parse; quarantine the file on any parse failure.
BundleFile read_bundle_file(const std::string& path) {
  auto content = read_file(path);
  BF_CHECK_MSG(content.has_value(), "cannot open model bundle " << path);
  if (fault::should_fire(fault::points::kServeArtifactBitrot) &&
      !content->empty()) {
    // Flip one bit mid-file — deep enough to land in the payload — to
    // emulate storage rot between the writer and this reader.
    (*content)[content->size() / 2] ^= 0x01;
  }
  try {
    BundleFile file = bundle_file_from_string(*content, path);
    // A staged replacement bundle that parses cleanly can still be
    // declared corrupt by the reload chaos point (torn-replacement
    // emulation); it takes the same quarantine path as real damage.
    BF_CHECK_MSG(!fault::should_fire(fault::points::kServeReloadCorrupt),
                 path << ": injected reload corruption");
    file.size_bytes = static_cast<std::uint64_t>(content->size());
    return file;
  } catch (const Error&) {
    quarantine(path);
    throw;
  }
}

}  // namespace

std::string bundle_to_string(const ModelBundle& bundle) {
  const std::string payload = payload_to_string(bundle);
  std::ostringstream os;
  os << "bfmodel " << kBundleFormatVersion << "\n";
  os << "bytes " << payload.size() << "\n";
  os << "checksum fnv1a64 " << to_hex64(fnv1a64(payload)) << "\n";
  os << payload;
  return os.str();
}

ModelBundle bundle_from_string(const std::string& content,
                               const std::string& origin) {
  return bundle_file_from_string(content, origin).bundle;
}

void save_bundle(const std::string& path, const ModelBundle& bundle) {
  atomic_write_file(path, bundle_to_string(bundle));
}

void quarantine_bundle(const std::string& path) { quarantine(path); }

bool stat_bundle(const std::string& path, std::uint64_t* size_bytes,
                 std::int64_t* mtime_ns) {
  std::error_code ec;
  const auto status = std::filesystem::status(path, ec);
  if (ec || !std::filesystem::is_regular_file(status)) return false;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return false;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return false;
  if (size_bytes != nullptr) *size_bytes = static_cast<std::uint64_t>(size);
  if (mtime_ns != nullptr) {
    *mtime_ns = static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            mtime.time_since_epoch())
            .count());
  }
  return true;
}

ModelBundle load_bundle(const std::string& path) {
  return read_bundle_file(path).bundle;
}

BundleFile load_bundle_file(const std::string& path) {
  BundleFile file = read_bundle_file(path);
  // The stat snapshot is taken after the successful read: a writer that
  // lands between read and stat makes the snapshot *newer* than the
  // loaded content, so the watcher re-detects the change — staleness
  // detection errs toward an extra reload, never a missed one.
  std::uint64_t size_bytes = 0;
  std::int64_t mtime_ns = 0;
  if (stat_bundle(path, &size_bytes, &mtime_ns)) {
    file.size_bytes = size_bytes;
    file.mtime_ns = mtime_ns;
  }
  return file;
}

bool validate_canary(const ModelBundle& bundle, double rtol,
                     std::string* why) {
  const auto fail = [why](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  if (fault::should_fire(fault::points::kServeReloadCanaryFail)) {
    return fail("injected canary failure");
  }
  std::vector<GoldenProbe> probes = bundle.meta.probes;
  const bool recorded = !probes.empty();
  if (!recorded) {
    // Pre-probe bundle: synthesize sizes from the training hull and
    // check the predictions are well-formed (there is no recorded
    // output to compare against).
    const auto* range = bundle.predictor.hull().range(profiling::kSizeColumn);
    if (range == nullptr) return true;  // hull-less legacy bundle
    const double lo = std::max(range->lo, 1.0);
    const double hi = std::max(range->hi, lo);
    constexpr int kSynthesized = 3;
    for (int i = 0; i < kSynthesized; ++i) {
      const double t =
          kSynthesized == 1 ? 0.0 : static_cast<double>(i) / (kSynthesized - 1);
      probes.push_back({std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo))),
                        0.0});
    }
  }
  for (const auto& p : probes) {
    guard::PredictionGuardRecord pred;
    try {
      pred = bundle.predictor.predict_guarded(p.size);
    } catch (const std::exception& e) {
      std::ostringstream os;
      os << "canary probe size=" << p.size << " threw: " << e.what();
      return fail(os.str());
    }
    if (!std::isfinite(pred.value) || pred.value < 0.0) {
      std::ostringstream os;
      os << "canary probe size=" << p.size << " produced non-finite or "
         << "negative prediction " << pred.value;
      return fail(os.str());
    }
    const char grade = guard::grade_letter(pred.grade);
    if (grade != 'A' && grade != 'B' && grade != 'C') {
      std::ostringstream os;
      os << "canary probe size=" << p.size << " is not guard-gradeable"
         << " (grade " << grade << ")";
      return fail(os.str());
    }
    if (recorded) {
      const double tol = rtol * std::max(std::abs(p.predicted_ms), 1e-12);
      if (std::abs(pred.value - p.predicted_ms) > tol) {
        std::ostringstream os;
        os.precision(17);
        os << "canary probe size=" << p.size << " predicted " << pred.value
           << " but the bundle recorded " << p.predicted_ms << " (rtol "
           << rtol << ")";
        return fail(os.str());
      }
    }
  }
  return true;
}

void export_model(const std::string& path, const std::string& name,
                  const std::string& workload, const std::string& arch,
                  std::size_t trained_rows,
                  const core::ProblemScalingPredictor& predictor,
                  std::size_t probe_count,
                  const bf::power::PowerPredictor* power) {
  ModelBundle bundle;
  if (power != nullptr) bundle.power = *power;
  bundle.meta.name = name;
  bundle.meta.workload = workload;
  bundle.meta.arch = arch;
  bundle.meta.provenance = version_string();
  bundle.meta.trained_rows = trained_rows;
  bundle.meta.schema = predictor.retained();
  bundle.predictor = predictor;
  // Record golden probes: log-spaced sizes across the training hull,
  // answered by the exporter's own predictor. Round-trips are
  // bit-identical, so a healthy reload reproduces these outputs exactly.
  const auto* range = predictor.hull().range(profiling::kSizeColumn);
  if (probe_count > 0 && range != nullptr) {
    const double lo = std::max(range->lo, 1.0);
    const double hi = std::max(range->hi, lo);
    bundle.meta.probes.reserve(probe_count);
    for (std::size_t i = 0; i < probe_count; ++i) {
      const double t = probe_count == 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(probe_count - 1);
      const double size =
          std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo)));
      bundle.meta.probes.push_back(
          {size, predictor.predict_guarded(size).value});
    }
  }
  save_bundle(path, bundle);
}

}  // namespace bf::serve
