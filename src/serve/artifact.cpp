#include "serve/artifact.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "common/version.hpp"

namespace bf::serve {
namespace {

/// Collapse whitespace to '_' so meta fields stay single tokens.
std::string tokenize_field(const std::string& s) {
  std::string out = s.empty() ? std::string("-") : s;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

/// Move a corrupt bundle out of the registry's way. Rename is atomic;
/// when it fails (cross-device, permissions) fall back to removal so a
/// poisoned file cannot be retried forever.
void quarantine(const std::string& path) {
  const std::string target = path + ".quarantined";
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    std::remove(path.c_str());
  }
}

std::string payload_to_string(const ModelBundle& bundle) {
  std::ostringstream os;
  os << "bf_bundle_meta 1\n";
  os << "name " << tokenize_field(bundle.meta.name) << "\n";
  os << "workload " << tokenize_field(bundle.meta.workload) << "\n";
  os << "arch " << tokenize_field(bundle.meta.arch) << "\n";
  // Provenance is free text (version strings contain spaces); it is the
  // one rest-of-line field in the format.
  os << "provenance " << bundle.meta.provenance << "\n";
  os << "trained_rows " << bundle.meta.trained_rows << "\n";
  os << "schema " << bundle.meta.schema.size();
  for (const auto& name : bundle.meta.schema) os << ' ' << name;
  os << "\n";
  bundle.predictor.save(os);
  return os.str();
}

ModelBundle payload_from_string(const std::string& payload,
                                const std::string& origin) {
  std::istringstream is(payload);
  const int format_version = read_format_version(is, "bf_bundle_meta", 1);
  (void)format_version;
  ModelBundle bundle;
  std::string tag;
  is >> tag >> bundle.meta.name;
  BF_CHECK_MSG(is && tag == "name", origin << ": bad bundle meta (name)");
  is >> tag >> bundle.meta.workload;
  BF_CHECK_MSG(is && tag == "workload",
               origin << ": bad bundle meta (workload)");
  is >> tag >> bundle.meta.arch;
  BF_CHECK_MSG(is && tag == "arch", origin << ": bad bundle meta (arch)");
  is >> tag;
  BF_CHECK_MSG(is && tag == "provenance",
               origin << ": bad bundle meta (provenance)");
  std::getline(is, bundle.meta.provenance);
  if (!bundle.meta.provenance.empty() &&
      bundle.meta.provenance.front() == ' ') {
    bundle.meta.provenance.erase(0, 1);
  }
  is >> tag >> bundle.meta.trained_rows;
  BF_CHECK_MSG(is && tag == "trained_rows",
               origin << ": bad bundle meta (trained_rows)");
  std::size_t n_schema = 0;
  is >> tag >> n_schema;
  BF_CHECK_MSG(is && tag == "schema" && n_schema <= 10'000,
               origin << ": bad bundle meta (schema)");
  bundle.meta.schema.resize(n_schema);
  for (auto& name : bundle.meta.schema) {
    is >> name;
    BF_CHECK_MSG(is, origin << ": truncated bundle schema");
  }
  bundle.predictor = core::ProblemScalingPredictor::load(is);
  // The schema must describe the model it travels with: retained
  // counters drive the counter chains and the reduced forest inputs.
  BF_CHECK_MSG(bundle.meta.schema == bundle.predictor.retained(),
               origin << ": bundle schema does not match embedded model");
  return bundle;
}

}  // namespace

std::string bundle_to_string(const ModelBundle& bundle) {
  const std::string payload = payload_to_string(bundle);
  std::ostringstream os;
  os << "bfmodel " << kBundleFormatVersion << "\n";
  os << "bytes " << payload.size() << "\n";
  os << "checksum fnv1a64 " << to_hex64(fnv1a64(payload)) << "\n";
  os << payload;
  return os.str();
}

ModelBundle bundle_from_string(const std::string& content,
                               const std::string& origin) {
  std::istringstream is(content);
  const int format_version =
      read_format_version(is, "bfmodel", kBundleFormatVersion);
  (void)format_version;
  std::string tag;
  std::size_t payload_size = 0;
  is >> tag >> payload_size;
  BF_CHECK_MSG(is && tag == "bytes",
               origin << ": bad bundle header (bytes)");
  std::string algo;
  std::string want_hex;
  is >> tag >> algo >> want_hex;
  BF_CHECK_MSG(is && tag == "checksum" && algo == "fnv1a64" &&
                   want_hex.size() == 16,
               origin << ": bad bundle header (checksum)");
  // Exactly one newline separates the header from the payload; anything
  // else would shift the byte count and is corruption.
  BF_CHECK_MSG(is.get() == '\n', origin << ": bad bundle header framing");
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  BF_CHECK_MSG(is.gcount() == static_cast<std::streamsize>(payload_size),
               origin << ": truncated bundle payload (want " << payload_size
                      << " bytes, got " << is.gcount() << ")");
  const std::string got_hex = to_hex64(fnv1a64(payload));
  BF_CHECK_MSG(got_hex == want_hex,
               origin << ": bundle checksum mismatch (stored " << want_hex
                      << ", computed " << got_hex << ")");
  return payload_from_string(payload, origin);
}

void save_bundle(const std::string& path, const ModelBundle& bundle) {
  atomic_write_file(path, bundle_to_string(bundle));
}

ModelBundle load_bundle(const std::string& path) {
  auto content = read_file(path);
  BF_CHECK_MSG(content.has_value(), "cannot open model bundle " << path);
  if (fault::should_fire(fault::points::kServeArtifactBitrot) &&
      !content->empty()) {
    // Flip one bit mid-file — deep enough to land in the payload — to
    // emulate storage rot between the writer and this reader.
    (*content)[content->size() / 2] ^= 0x01;
  }
  try {
    return bundle_from_string(*content, path);
  } catch (const Error&) {
    quarantine(path);
    throw;
  }
}

void export_model(const std::string& path, const std::string& name,
                  const std::string& workload, const std::string& arch,
                  std::size_t trained_rows,
                  const core::ProblemScalingPredictor& predictor) {
  ModelBundle bundle;
  bundle.meta.name = name;
  bundle.meta.workload = workload;
  bundle.meta.arch = arch;
  bundle.meta.provenance = version_string();
  bundle.meta.trained_rows = trained_rows;
  bundle.meta.schema = predictor.retained();
  bundle.predictor = predictor;
  save_bundle(path, bundle);
}

}  // namespace bf::serve
