file(REMOVE_RECURSE
  "../bench/bench_ext_cpu"
  "../bench/bench_ext_cpu.pdb"
  "CMakeFiles/bench_ext_cpu.dir/bench_ext_cpu.cpp.o"
  "CMakeFiles/bench_ext_cpu.dir/bench_ext_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
