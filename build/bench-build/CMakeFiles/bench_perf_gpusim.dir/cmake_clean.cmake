file(REMOVE_RECURSE
  "../bench/bench_perf_gpusim"
  "../bench/bench_perf_gpusim.pdb"
  "CMakeFiles/bench_perf_gpusim.dir/bench_perf_gpusim.cpp.o"
  "CMakeFiles/bench_perf_gpusim.dir/bench_perf_gpusim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
