# Empty dependencies file for bench_perf_gpusim.
# This may be replaced when dependencies are built.
