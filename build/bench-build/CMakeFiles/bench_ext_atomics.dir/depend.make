# Empty dependencies file for bench_ext_atomics.
# This may be replaced when dependencies are built.
