file(REMOVE_RECURSE
  "../bench/bench_ext_atomics"
  "../bench/bench_ext_atomics.pdb"
  "CMakeFiles/bench_ext_atomics.dir/bench_ext_atomics.cpp.o"
  "CMakeFiles/bench_ext_atomics.dir/bench_ext_atomics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
