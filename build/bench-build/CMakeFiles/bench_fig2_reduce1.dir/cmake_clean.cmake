file(REMOVE_RECURSE
  "../bench/bench_fig2_reduce1"
  "../bench/bench_fig2_reduce1.pdb"
  "CMakeFiles/bench_fig2_reduce1.dir/bench_fig2_reduce1.cpp.o"
  "CMakeFiles/bench_fig2_reduce1.dir/bench_fig2_reduce1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_reduce1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
