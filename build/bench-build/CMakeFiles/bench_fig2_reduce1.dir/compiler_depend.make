# Empty compiler generated dependencies file for bench_fig2_reduce1.
# This may be replaced when dependencies are built.
