file(REMOVE_RECURSE
  "../bench/bench_ext_intervals"
  "../bench/bench_ext_intervals.pdb"
  "CMakeFiles/bench_ext_intervals.dir/bench_ext_intervals.cpp.o"
  "CMakeFiles/bench_ext_intervals.dir/bench_ext_intervals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
