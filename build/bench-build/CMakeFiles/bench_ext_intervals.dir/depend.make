# Empty dependencies file for bench_ext_intervals.
# This may be replaced when dependencies are built.
