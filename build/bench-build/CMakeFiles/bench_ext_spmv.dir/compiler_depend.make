# Empty compiler generated dependencies file for bench_ext_spmv.
# This may be replaced when dependencies are built.
