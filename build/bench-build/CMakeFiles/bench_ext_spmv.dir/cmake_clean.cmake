file(REMOVE_RECURSE
  "../bench/bench_ext_spmv"
  "../bench/bench_ext_spmv.pdb"
  "CMakeFiles/bench_ext_spmv.dir/bench_ext_spmv.cpp.o"
  "CMakeFiles/bench_ext_spmv.dir/bench_ext_spmv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
