# Empty dependencies file for bench_ablate_cache_config.
# This may be replaced when dependencies are built.
