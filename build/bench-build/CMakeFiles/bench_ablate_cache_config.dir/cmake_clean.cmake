file(REMOVE_RECURSE
  "../bench/bench_ablate_cache_config"
  "../bench/bench_ablate_cache_config.pdb"
  "CMakeFiles/bench_ablate_cache_config.dir/bench_ablate_cache_config.cpp.o"
  "CMakeFiles/bench_ablate_cache_config.dir/bench_ablate_cache_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_cache_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
