# Empty compiler generated dependencies file for bench_ablate_rf_params.
# This may be replaced when dependencies are built.
