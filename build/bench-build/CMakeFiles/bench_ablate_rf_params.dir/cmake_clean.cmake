file(REMOVE_RECURSE
  "../bench/bench_ablate_rf_params"
  "../bench/bench_ablate_rf_params.pdb"
  "CMakeFiles/bench_ablate_rf_params.dir/bench_ablate_rf_params.cpp.o"
  "CMakeFiles/bench_ablate_rf_params.dir/bench_ablate_rf_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_rf_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
