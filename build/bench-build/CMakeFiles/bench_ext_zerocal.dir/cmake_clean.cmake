file(REMOVE_RECURSE
  "../bench/bench_ext_zerocal"
  "../bench/bench_ext_zerocal.pdb"
  "CMakeFiles/bench_ext_zerocal.dir/bench_ext_zerocal.cpp.o"
  "CMakeFiles/bench_ext_zerocal.dir/bench_ext_zerocal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_zerocal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
