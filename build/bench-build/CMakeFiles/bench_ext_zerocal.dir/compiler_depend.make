# Empty compiler generated dependencies file for bench_ext_zerocal.
# This may be replaced when dependencies are built.
