file(REMOVE_RECURSE
  "../bench/bench_perf_ml"
  "../bench/bench_perf_ml.pdb"
  "CMakeFiles/bench_perf_ml.dir/bench_perf_ml.cpp.o"
  "CMakeFiles/bench_perf_ml.dir/bench_perf_ml.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
