# Empty compiler generated dependencies file for bench_perf_ml.
# This may be replaced when dependencies are built.
