# Empty dependencies file for bench_fig4_reduce6.
# This may be replaced when dependencies are built.
