file(REMOVE_RECURSE
  "../bench/bench_fig7_mm_hwscale"
  "../bench/bench_fig7_mm_hwscale.pdb"
  "CMakeFiles/bench_fig7_mm_hwscale.dir/bench_fig7_mm_hwscale.cpp.o"
  "CMakeFiles/bench_fig7_mm_hwscale.dir/bench_fig7_mm_hwscale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mm_hwscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
