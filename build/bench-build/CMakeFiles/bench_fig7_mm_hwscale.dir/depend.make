# Empty dependencies file for bench_fig7_mm_hwscale.
# This may be replaced when dependencies are built.
