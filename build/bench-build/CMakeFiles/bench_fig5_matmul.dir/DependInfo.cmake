
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_matmul.cpp" "bench-build/CMakeFiles/bench_fig5_matmul.dir/bench_fig5_matmul.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig5_matmul.dir/bench_fig5_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpusim/CMakeFiles/bf_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/bf_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/bf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
