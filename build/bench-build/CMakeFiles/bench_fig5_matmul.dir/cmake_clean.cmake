file(REMOVE_RECURSE
  "../bench/bench_fig5_matmul"
  "../bench/bench_fig5_matmul.pdb"
  "CMakeFiles/bench_fig5_matmul.dir/bench_fig5_matmul.cpp.o"
  "CMakeFiles/bench_fig5_matmul.dir/bench_fig5_matmul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
