file(REMOVE_RECURSE
  "../bench/bench_ablate_pca_first"
  "../bench/bench_ablate_pca_first.pdb"
  "CMakeFiles/bench_ablate_pca_first.dir/bench_ablate_pca_first.cpp.o"
  "CMakeFiles/bench_ablate_pca_first.dir/bench_ablate_pca_first.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_pca_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
