# Empty dependencies file for bench_ablate_pca_first.
# This may be replaced when dependencies are built.
