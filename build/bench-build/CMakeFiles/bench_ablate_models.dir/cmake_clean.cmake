file(REMOVE_RECURSE
  "../bench/bench_ablate_models"
  "../bench/bench_ablate_models.pdb"
  "CMakeFiles/bench_ablate_models.dir/bench_ablate_models.cpp.o"
  "CMakeFiles/bench_ablate_models.dir/bench_ablate_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
