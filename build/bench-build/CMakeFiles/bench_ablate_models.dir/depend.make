# Empty dependencies file for bench_ablate_models.
# This may be replaced when dependencies are built.
