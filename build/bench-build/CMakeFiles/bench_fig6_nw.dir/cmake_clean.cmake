file(REMOVE_RECURSE
  "../bench/bench_fig6_nw"
  "../bench/bench_fig6_nw.pdb"
  "CMakeFiles/bench_fig6_nw.dir/bench_fig6_nw.cpp.o"
  "CMakeFiles/bench_fig6_nw.dir/bench_fig6_nw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
