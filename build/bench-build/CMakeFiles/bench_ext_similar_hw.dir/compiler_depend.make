# Empty compiler generated dependencies file for bench_ext_similar_hw.
# This may be replaced when dependencies are built.
