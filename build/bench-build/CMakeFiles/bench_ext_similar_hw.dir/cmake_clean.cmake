file(REMOVE_RECURSE
  "../bench/bench_ext_similar_hw"
  "../bench/bench_ext_similar_hw.pdb"
  "CMakeFiles/bench_ext_similar_hw.dir/bench_ext_similar_hw.cpp.o"
  "CMakeFiles/bench_ext_similar_hw.dir/bench_ext_similar_hw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_similar_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
