# Empty dependencies file for bench_table2_hw.
# This may be replaced when dependencies are built.
