file(REMOVE_RECURSE
  "../bench/bench_table2_hw"
  "../bench/bench_table2_hw.pdb"
  "CMakeFiles/bench_table2_hw.dir/bench_table2_hw.cpp.o"
  "CMakeFiles/bench_table2_hw.dir/bench_table2_hw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
