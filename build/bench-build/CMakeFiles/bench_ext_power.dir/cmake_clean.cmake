file(REMOVE_RECURSE
  "../bench/bench_ext_power"
  "../bench/bench_ext_power.pdb"
  "CMakeFiles/bench_ext_power.dir/bench_ext_power.cpp.o"
  "CMakeFiles/bench_ext_power.dir/bench_ext_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
