file(REMOVE_RECURSE
  "../bench/bench_table1_counters"
  "../bench/bench_table1_counters.pdb"
  "CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cpp.o"
  "CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
