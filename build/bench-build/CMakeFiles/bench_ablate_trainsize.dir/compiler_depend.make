# Empty compiler generated dependencies file for bench_ablate_trainsize.
# This may be replaced when dependencies are built.
