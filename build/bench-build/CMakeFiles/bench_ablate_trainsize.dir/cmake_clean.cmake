file(REMOVE_RECURSE
  "../bench/bench_ablate_trainsize"
  "../bench/bench_ablate_trainsize.pdb"
  "CMakeFiles/bench_ablate_trainsize.dir/bench_ablate_trainsize.cpp.o"
  "CMakeFiles/bench_ablate_trainsize.dir/bench_ablate_trainsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_trainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
