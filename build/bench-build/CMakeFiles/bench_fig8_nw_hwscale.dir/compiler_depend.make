# Empty compiler generated dependencies file for bench_fig8_nw_hwscale.
# This may be replaced when dependencies are built.
