file(REMOVE_RECURSE
  "../bench/bench_fig3_reduce2"
  "../bench/bench_fig3_reduce2.pdb"
  "CMakeFiles/bench_fig3_reduce2.dir/bench_fig3_reduce2.cpp.o"
  "CMakeFiles/bench_fig3_reduce2.dir/bench_fig3_reduce2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reduce2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
