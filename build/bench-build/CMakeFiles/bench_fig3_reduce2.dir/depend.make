# Empty dependencies file for bench_fig3_reduce2.
# This may be replaced when dependencies are built.
