# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bf_analyze_cli "/root/repo/build/tools/bf_analyze" "--list")
set_tests_properties(bf_analyze_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;3;add_test;/root/repo/tools/CMakeLists.txt;0;")
