file(REMOVE_RECURSE
  "CMakeFiles/bf_analyze.dir/bf_analyze.cpp.o"
  "CMakeFiles/bf_analyze.dir/bf_analyze.cpp.o.d"
  "bf_analyze"
  "bf_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
