# Empty dependencies file for bf_analyze.
# This may be replaced when dependencies are built.
